//! The paper's motivational example (Fig. 3): the adpcmdecode hot basic block.
//!
//! Run with `cargo run --release --example adpcm_motivation`.
//!
//! The example shows how the best instruction found by the exact identification
//! algorithm changes with the microarchitectural constraints, reproducing the discussion
//! of Sections 4 and 8. Both the exact algorithm and the MaxMISO baseline are fetched
//! from the engine registry and driven through the same `Identifier` interface:
//!
//! * with 2 read ports / 1 write port the algorithm finds the small approximate
//!   16×4-bit multiplication (M1 in the figure);
//! * with 3 read ports it also absorbs the following accumulate/saturate logic (M2);
//! * with more write ports the iterative selection additionally picks the *disconnected*
//!   step-size update (M3), something single-output methods cannot do;
//! * MaxMISO with 2 read ports finds nothing useful because M1 is buried inside the
//!   larger 3-input MaxMISO.

use ise::core::engine::{select_program, DriverOptions};
use ise::core::Constraints;
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::workloads::adpcm;

fn main() {
    let block = adpcm::decode_kernel();
    let program = adpcm::decode_program();
    let registry = ise::baselines::full_registry();
    let exact = registry.create("single-cut").expect("bundled algorithm");
    let maxmiso = registry.create("maxmiso").expect("bundled algorithm");
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();

    println!(
        "adpcmdecode inner loop: {} operations, {} live-in values, {} live-out values\n",
        block.node_count(),
        block.input_count(),
        block.output_count()
    );

    println!("== Best single instruction vs. port constraints (exact search) ==");
    for (nin, nout) in [(2, 1), (3, 1), (4, 1), (4, 2), (6, 3)] {
        let constraints = Constraints::new(nin, nout);
        let outcome = exact.identify(&block, &constraints, &model);
        match outcome.best {
            Some(best) => println!(
                "  {constraints:<18} -> {:>2} ops, {} in / {} out, {:>4.0} cycles saved per sample",
                best.evaluation.nodes,
                best.evaluation.inputs,
                best.evaluation.outputs,
                best.evaluation.merit
            ),
            None => println!("  {constraints:<18} -> nothing profitable"),
        }
    }

    println!("\n== MaxMISO on the same block ==");
    for (nin, nout) in [(2, 1), (3, 1), (4, 1)] {
        let constraints = Constraints::new(nin, nout);
        let outcome = maxmiso.identify(&block, &constraints, &model);
        let best_nodes = outcome
            .candidates
            .iter()
            .map(|c| c.evaluation.nodes)
            .max()
            .unwrap_or(0);
        println!(
            "  {constraints:<18} -> {} feasible MaxMISOs (largest: {} ops)",
            outcome.candidates.len(),
            best_nodes
        );
    }

    println!("\n== Whole-application selection, up to 16 instructions ==");
    for (nin, nout) in [(2, 1), (4, 2), (8, 4)] {
        let constraints = Constraints::new(nin, nout);
        let iterative = select_program(
            &program,
            exact.as_ref(),
            constraints,
            &model,
            DriverOptions::new(16),
        );
        let report = iterative.speedup_report(&program, &software);
        let greedy = select_program(
            &program,
            maxmiso.as_ref(),
            constraints,
            &model,
            DriverOptions::new(16),
        );
        let greedy_report = greedy.speedup_report(&program, &software);
        println!(
            "  {constraints:<18} -> Iterative: x{:.2} with {} instructions ({} ops max, area {:.2} MACs); MaxMISO: x{:.2}",
            report.speedup,
            iterative.len(),
            iterative
                .chosen
                .iter()
                .map(|c| c.identified.evaluation.nodes)
                .max()
                .unwrap_or(0),
            report.total_area,
            greedy_report.speedup,
        );
    }
}
