//! The paper's motivational example (Fig. 3): the adpcmdecode hot basic block.
//!
//! Run with `cargo run --release --example adpcm_motivation`.
//!
//! The example shows how the best instruction found by the exact identification algorithm
//! changes with the microarchitectural constraints, reproducing the discussion of
//! Sections 4 and 8:
//!
//! * with 2 read ports / 1 write port the algorithm finds the small approximate
//!   16×4-bit multiplication (M1 in the figure);
//! * with 3 read ports it also absorbs the following accumulate/saturate logic (M2);
//! * with more write ports the iterative selection additionally picks the *disconnected*
//!   step-size update (M3), something single-output methods cannot do;
//! * MaxMISO with 2 read ports finds nothing useful because M1 is buried inside the
//!   larger 3-input MaxMISO.

use ise::baselines::{select_greedy, IdentificationAlgorithm, MaxMiso};
use ise::core::{identify_single_cut, select_iterative, Constraints, SelectionOptions};
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::workloads::adpcm;

fn main() {
    let block = adpcm::decode_kernel();
    let program = adpcm::decode_program();
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();

    println!(
        "adpcmdecode inner loop: {} operations, {} live-in values, {} live-out values\n",
        block.node_count(),
        block.input_count(),
        block.output_count()
    );

    println!("== Best single instruction vs. port constraints (exact search) ==");
    for (nin, nout) in [(2, 1), (3, 1), (4, 1), (4, 2), (6, 3)] {
        let constraints = Constraints::new(nin, nout);
        let outcome = identify_single_cut(&block, constraints, &model);
        match outcome.best {
            Some(best) => println!(
                "  {constraints:<18} -> {:>2} ops, {} in / {} out, {:>4.0} cycles saved per sample",
                best.evaluation.nodes,
                best.evaluation.inputs,
                best.evaluation.outputs,
                best.evaluation.merit
            ),
            None => println!("  {constraints:<18} -> nothing profitable"),
        }
    }

    println!("\n== MaxMISO on the same block ==");
    let maxmiso = MaxMiso::new();
    for (nin, nout) in [(2, 1), (3, 1), (4, 1)] {
        let constraints = Constraints::new(nin, nout);
        let candidates = maxmiso.candidates(&block, constraints, &model);
        let best_nodes = candidates
            .iter()
            .map(|c| c.evaluation.nodes)
            .max()
            .unwrap_or(0);
        println!(
            "  {constraints:<18} -> {} feasible MaxMISOs (largest: {} ops)",
            candidates.len(),
            best_nodes
        );
    }

    println!("\n== Whole-application selection, up to 16 instructions ==");
    for (nin, nout) in [(2, 1), (4, 2), (8, 4)] {
        let constraints = Constraints::new(nin, nout);
        let iterative = select_iterative(
            &program,
            constraints,
            &model,
            SelectionOptions::new(16),
        );
        let report = iterative.speedup_report(&program, &software);
        let greedy = select_greedy(&program, &maxmiso, constraints, &model, 16);
        let greedy_report = greedy.speedup_report(&program, &software);
        println!(
            "  {constraints:<18} -> Iterative: x{:.2} with {} instructions ({} ops max, area {:.2} MACs); MaxMISO: x{:.2}",
            report.speedup,
            iterative.len(),
            iterative
                .chosen
                .iter()
                .map(|c| c.identified.evaluation.nodes)
                .max()
                .unwrap_or(0),
            report.total_area,
            greedy_report.speedup,
        );
    }
}
