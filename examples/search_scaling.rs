//! Search-space scaling (a console version of the Fig. 8 experiment).
//!
//! Run with `cargo run --release --example search_scaling`.
//!
//! Prints, for basic blocks of growing size (bundled kernels and synthetic random
//! blocks), the number of cuts considered by the exact identification algorithm with
//! `Nout = 2` and unbounded `Nin`, next to the N², N³ and N⁴ guide lines of the paper's
//! figure. The algorithm is fetched from the engine registry with a per-invocation
//! exploration budget. The pruned search stays within a polynomial envelope on every
//! practical block even though the worst case is exponential.

use ise::core::engine::IdentifierConfig;
use ise::core::Constraints;
use ise::hw::DefaultCostModel;
use ise::workloads::random::{random_dfg, RandomDfgConfig};
use ise::workloads::suite;

fn main() {
    let identifier = ise::baselines::full_registry()
        .create_configured(
            "single-cut",
            &IdentifierConfig::default().with_exploration_budget(Some(5_000_000)),
        )
        .expect("bundled algorithm");
    let model = DefaultCostModel::new();
    let mut blocks = Vec::new();
    for program in suite::mediabench_like() {
        for block in program.blocks() {
            if block.node_count() >= 4 {
                blocks.push((block.clone(), "kernel"));
            }
        }
    }
    for nodes in [10usize, 20, 30, 40, 60, 80, 100] {
        blocks.push((random_dfg(&RandomDfgConfig::with_nodes(nodes), 7), "random"));
    }
    blocks.sort_by_key(|(b, _)| b.node_count());

    println!(
        "{:<28} {:>6} {:>8} {:>14} {:>12} {:>14} {:>16}",
        "block", "origin", "nodes", "cuts considered", "N^2", "N^3", "N^4"
    );
    for (block, origin) in &blocks {
        let constraints = Constraints::new(usize::MAX >> 1, 2);
        let stats = identifier.identify(block, &constraints, &model).stats;
        let n = block.node_count() as u64;
        println!(
            "{:<28} {:>6} {:>8} {:>14} {:>12} {:>14} {:>16}{}",
            block.name(),
            origin,
            n,
            stats.cuts_considered,
            n.pow(2),
            n.pow(3),
            n.saturating_pow(4),
            if stats.budget_exhausted {
                "  (budget hit)"
            } else {
                ""
            }
        );
    }
}
