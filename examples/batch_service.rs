//! Batch service: fan a matrix of identification jobs out across algorithms and
//! workloads, in parallel, with deterministic ordered results.
//!
//! Run with `cargo run --release --example batch_service`.
//!
//! The same requests can be written to a JSON file and executed out of process with
//! `cargo run -p ise-cli -- batch <file>` — the responses are byte-identical.

use ise::core::{Constraints, DriverOptions, IdentifierConfig};
use ise::{Algorithm, BatchService, IseError, IseRequest, ProgramSource};

fn main() -> Result<(), IseError> {
    // One request per (workload, algorithm) pair: the exact single-cut search
    // against the two prior-art baselines, on three bundled codecs.
    let mut requests = Vec::new();
    for workload in ["adpcmdecode", "gsm", "g721"] {
        for algorithm in [
            Algorithm::SingleCut,
            Algorithm::Clubbing,
            Algorithm::MaxMiso,
        ] {
            requests.push(
                IseRequest::new(algorithm, ProgramSource::Workload(workload.into()))
                    .with_constraints(Constraints::new(4, 2))
                    .with_config(IdentifierConfig::default().with_exploration_budget(Some(200_000)))
                    .with_options(DriverOptions::new(4)),
            );
        }
    }

    // The requests are data: this is exactly what `ise-cli batch` reads from a file.
    println!(
        "first request as JSON:\n{}\n",
        ise::api::to_json_pretty(&requests[0])
    );

    let outcomes = BatchService::new().run(&requests);

    println!(
        "{:<14} {:<12} {:>6} {:>10} {:>9}",
        "workload", "algorithm", "instrs", "speedup", "area"
    );
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let response = outcome.as_ref().map_err(Clone::clone)?;
        println!(
            "{:<14} {:<12} {:>6} {:>9.3}x {:>9.3}",
            response.program,
            response.algorithm,
            response.selection.len(),
            response.report.speedup,
            response.report.total_area,
        );
        debug_assert_eq!(request.program.name(), response.program);
    }

    // A bad request does not poison the batch: it fails in place, as a value.
    let mut with_bad = requests;
    with_bad.push(IseRequest::named(
        "not-an-algorithm",
        ProgramSource::Workload("gsm".into()),
    ));
    let outcomes = BatchService::new().run(&with_bad);
    let last = outcomes.last().expect("one outcome per request");
    println!(
        "\nbad request degrades into an error response:\n  {}",
        last.as_ref().expect_err("unknown algorithm must fail")
    );
    Ok(())
}
