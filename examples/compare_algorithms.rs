//! Algorithm comparison across the bundled benchmark suite (a console version of the
//! Fig. 11 experiment).
//!
//! Run with `cargo run --release --example compare_algorithms`.
//!
//! For every bundled application and a small sweep of register-file port constraints,
//! the example prints the estimated application speed-up of the paper's exact
//! single-cut algorithm and of the two prior-art baselines, with up to 16 special
//! instructions each. Every algorithm is fetched from the engine registry by name and
//! driven by the same parallel program driver — comparing another registered algorithm
//! means adding its name to `ALGORITHMS`.

use ise::core::engine::{select_program, DriverOptions, IdentifierConfig};
use ise::core::Constraints;
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::workloads::suite;

/// Registry names of the compared algorithms, in column order.
const ALGORITHMS: [&str; 3] = ["single-cut", "clubbing", "maxmiso"];

fn main() {
    let registry = ise::baselines::full_registry();
    let config = IdentifierConfig::default().with_exploration_budget(Some(2_000_000));
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    let constraints_sweep = [
        Constraints::new(2, 1),
        Constraints::new(4, 2),
        Constraints::new(8, 4),
    ];

    print!("{:<14} {:>10}", "benchmark", "Nin/Nout");
    for name in ALGORITHMS {
        print!(" {name:>12}");
    }
    println!();
    for program in suite::mediabench_like() {
        for constraints in constraints_sweep {
            print!(
                "{:<14} {:>7}/{:<2}",
                program.name(),
                constraints.max_inputs,
                constraints.max_outputs
            );
            for name in ALGORITHMS {
                let identifier = registry
                    .create_configured(name, &config)
                    .expect("registered algorithm");
                let speedup = select_program(
                    &program,
                    identifier.as_ref(),
                    constraints,
                    &model,
                    DriverOptions::new(16),
                )
                .speedup_report(&program, &software)
                .speedup;
                print!(" {speedup:>11.3}x");
            }
            println!();
        }
    }
    println!("\n(larger is better; the single-cut column is the paper's contribution)");
}
