//! Algorithm comparison across the bundled benchmark suite (a console version of the
//! Fig. 11 experiment).
//!
//! Run with `cargo run --release --example compare_algorithms`.
//!
//! For every bundled application and a small sweep of register-file port constraints,
//! the example prints the estimated application speed-up obtained by the paper's
//! Iterative algorithm and by the two prior-art baselines (Clubbing and MaxMISO), with up
//! to 16 special instructions each.

use ise::baselines::{select_greedy, Clubbing, MaxMiso};
use ise::core::{select_iterative, Constraints, SelectionOptions};
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::workloads::suite;

fn main() {
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    let constraints_sweep = [
        Constraints::new(2, 1),
        Constraints::new(4, 2),
        Constraints::new(8, 4),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "benchmark", "Nin/Nout", "Iterative", "Clubbing", "MaxMISO"
    );
    for program in suite::mediabench_like() {
        for constraints in constraints_sweep {
            let iterative = select_iterative(
                &program,
                constraints,
                &model,
                SelectionOptions::new(16).with_exploration_budget(2_000_000),
            )
            .speedup_report(&program, &software)
            .speedup;
            let clubbing = select_greedy(&program, &Clubbing::new(), constraints, &model, 16)
                .speedup_report(&program, &software)
                .speedup;
            let maxmiso = select_greedy(&program, &MaxMiso::new(), constraints, &model, 16)
                .speedup_report(&program, &software)
                .speedup;
            println!(
                "{:<14} {:>7}/{:<2} {:>11.3}x {:>11.3}x {:>11.3}x",
                program.name(),
                constraints.max_inputs,
                constraints.max_outputs,
                iterative,
                clubbing,
                maxmiso
            );
        }
    }
    println!("\n(larger is better; the Iterative column is the paper's contribution)");
}
