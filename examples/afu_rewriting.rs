//! End-to-end ISE flow: select instructions, collapse them into AFU nodes, and validate
//! the rewritten program with the reference interpreter.
//!
//! Run with `cargo run --release --example afu_rewriting`.
//!
//! This is the flow a retargetable tool-chain would follow after the identification step
//! of the paper: each selected cut is extracted into an AFU specification (the datapath
//! to be synthesised) and the basic block is rewritten to invoke the new instruction.
//! Selection goes through the engine registry and the parallel program driver.

use std::collections::BTreeMap;

use ise::core::collapse::collapse_into_program;
use ise::core::engine::{select_program, DriverOptions};
use ise::core::Constraints;
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::ir::interp::Evaluator;
use ise::workloads::gsm;

fn main() {
    let mut program = gsm::program();
    let identifier = ise::baselines::full_registry()
        .create("single-cut")
        .expect("bundled algorithm");
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    let constraints = Constraints::new(4, 2);

    let baseline_cycles = software.program_dynamic_cycles(&program);
    let selection = select_program(
        &program,
        identifier.as_ref(),
        constraints,
        &model,
        DriverOptions::new(4),
    );
    let report = selection.speedup_report(&program, &software);
    println!(
        "gsm: baseline {baseline_cycles} cycles, {} instructions selected, estimated speed-up x{:.2}\n",
        selection.len(),
        report.speedup
    );

    // Reference execution of the short-term filter block before rewriting.
    let inputs: BTreeMap<String, i32> = [
        ("d".to_string(), 1200),
        ("u".to_string(), -300),
        ("rp".to_string(), 9000),
    ]
    .into();
    let before = Evaluator::new()
        .eval_block(program.block(0), &inputs)
        .expect("reference execution")
        .outputs;

    // Collapse selected cuts into AFU instructions, rewriting the blocks in place.
    // Collapsing renumbers the nodes of the rewritten block, so cuts identified on the
    // original graph are only valid for the first rewrite of each block; collapse one
    // instruction per block here (re-running identification on the rewritten block would
    // pick up the remaining ones).
    let mut rewritten_blocks = std::collections::BTreeSet::new();
    for (i, chosen) in selection.chosen.iter().enumerate() {
        if !rewritten_blocks.insert(chosen.block_index) {
            continue;
        }
        let name = format!("ise{i}");
        let afu_id = collapse_into_program(
            &mut program,
            chosen.block_index,
            &chosen.identified.cut,
            &name,
        );
        let spec = &program.afus()[afu_id as usize];
        println!(
            "instruction {name}: block `{}`, {} operations collapsed, {} read ports, {} write ports",
            program.block(chosen.block_index).name(),
            spec.graph.node_count(),
            spec.input_count(),
            spec.output_count()
        );
    }

    // The rewritten program must behave identically; the interpreter executes the AFU
    // nodes through their extracted specifications.
    let after = Evaluator::with_afus(program.afus().to_vec())
        .eval_block(program.block(0), &inputs)
        .expect("rewritten execution")
        .outputs;
    assert_eq!(before, after, "collapsing must preserve semantics");
    println!(
        "\nrewritten filter block now has {} operations (was {}), outputs identical: {:?}",
        program.block(0).node_count(),
        gsm::short_term_filter_kernel().node_count(),
        after
    );
}
