//! Quickstart: identify instruction-set extensions for a small saturating-MAC kernel.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example builds a one-block program with the dataflow-graph builder, configures
//! an identification [`Session`](ise::Session) for the paper's exact single-cut
//! algorithm, runs it under a few different register-file port constraints, and prints
//! the chosen instruction, its port usage and the estimated speed-up. Every step is
//! fallible — a typo'd algorithm name or malformed program comes back as an
//! [`ise::IseError`] value, never a panic.

use ise::core::Constraints;
use ise::ir::dot::{to_dot, DotOptions};
use ise::ir::{DfgBuilder, Program};
use ise::{Algorithm, IseError, SessionBuilder};

fn main() -> Result<(), IseError> {
    // out = saturate16(acc + x * y), plus an overflow flag.
    let mut b = DfgBuilder::new("saturating_mac");
    b.exec_count(1000);
    let x = b.input("x");
    let y = b.input("y");
    let acc = b.input("acc");
    let prod = b.mul(x, y);
    let sum = b.add(prod, acc);
    let too_big = b.gt(sum, b.imm(32767));
    let clipped_hi = b.select(too_big, b.imm(32767), sum);
    let too_small = b.lt(clipped_hi, b.imm(-32768));
    let saturated = b.select(too_small, b.imm(-32768), clipped_hi);
    let overflowed = b.ne(saturated, sum);
    b.output("acc", saturated);
    b.output("overflow", overflowed);
    let block = b.finish();

    println!("Basic block ({} operations):\n{block}", block.node_count());
    println!(
        "registered identification algorithms: {:?}\n",
        ise::api::algorithm_names()
    );

    let mut program = Program::new("quickstart");
    program.add_block(block);

    for (nin, nout) in [(2, 1), (3, 1), (3, 2), (4, 2)] {
        let session = SessionBuilder::new()
            .algorithm(Algorithm::SingleCut)
            .constraints(Constraints::new(nin, nout))
            .max_instructions(1)
            .build()?;
        let response = session.run(&program)?;
        match response.selection.chosen.first() {
            Some(chosen) => {
                println!(
                    "{}: instruction with {} ops, {} inputs, {} outputs, \
                     saves {:.0} cycles/execution (speed-up {:.2}x, {} cuts considered)",
                    response.constraints,
                    chosen.identified.evaluation.nodes,
                    chosen.identified.evaluation.inputs,
                    chosen.identified.evaluation.outputs,
                    chosen.identified.evaluation.merit,
                    response.report.speedup,
                    response.selection.cuts_considered,
                );
            }
            None => println!("{}: no profitable instruction found", response.constraints),
        }
    }

    // Export the graph with the best (4,2) cut highlighted, ready for Graphviz.
    let session = SessionBuilder::new()
        .constraints(Constraints::new(4, 2))
        .max_instructions(1)
        .build()?;
    let response = session.run(&program)?;
    if let Some(chosen) = response.selection.chosen.first() {
        let dot = to_dot(
            program.block(chosen.block_index),
            &DotOptions::new()
                .title("saturating MAC — best cut under Nin=4, Nout=2")
                .highlight(chosen.identified.cut.iter()),
        );
        println!("\nGraphviz rendering of the selected instruction:\n{dot}");
    }

    // The same job as data: serialise the response and read it back.
    let wire = ise::api::to_json(&response);
    let back: ise::IseResponse = ise::api::from_json(&wire)?;
    assert_eq!(ise::api::to_json(&back), wire);
    println!(
        "response JSON is {} bytes and round-trips byte-identically",
        wire.len()
    );
    Ok(())
}
