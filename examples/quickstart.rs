//! Quickstart: identify instruction-set extensions for a small saturating-MAC kernel.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example builds a basic block with the dataflow-graph builder, fetches the exact
//! single-cut identification algorithm of Atasu/Pozzi/Ienne from the engine registry,
//! runs it under a few different register-file port constraints, and prints the chosen
//! instruction, its port usage and the estimated cycle saving.

use ise::core::Constraints;
use ise::hw::DefaultCostModel;
use ise::ir::dot::{to_dot, DotOptions};
use ise::ir::DfgBuilder;

fn main() {
    // out = saturate16(acc + x * y), plus an overflow flag.
    let mut b = DfgBuilder::new("saturating_mac");
    let x = b.input("x");
    let y = b.input("y");
    let acc = b.input("acc");
    let prod = b.mul(x, y);
    let sum = b.add(prod, acc);
    let too_big = b.gt(sum, b.imm(32767));
    let clipped_hi = b.select(too_big, b.imm(32767), sum);
    let too_small = b.lt(clipped_hi, b.imm(-32768));
    let saturated = b.select(too_small, b.imm(-32768), clipped_hi);
    let overflowed = b.ne(saturated, sum);
    b.output("acc", saturated);
    b.output("overflow", overflowed);
    let block = b.finish();

    println!("Basic block ({} operations):\n{block}", block.node_count());

    let registry = ise::full_registry();
    println!(
        "registered identification algorithms: {:?}\n",
        registry.names()
    );
    let identifier = registry.create("single-cut").expect("bundled algorithm");

    let model = DefaultCostModel::new();
    for (nin, nout) in [(2, 1), (3, 1), (3, 2), (4, 2)] {
        let constraints = Constraints::new(nin, nout);
        let outcome = identifier.identify(&block, &constraints, &model);
        match outcome.best {
            Some(best) => {
                println!(
                    "{constraints}: instruction with {} ops, {} inputs, {} outputs, \
                     saves {:.0} cycles/execution ({} cuts considered)",
                    best.evaluation.nodes,
                    best.evaluation.inputs,
                    best.evaluation.outputs,
                    best.evaluation.merit,
                    outcome.stats.cuts_considered,
                );
            }
            None => println!("{constraints}: no profitable instruction found"),
        }
    }

    // Export the graph with the best (4,2) cut highlighted, ready for Graphviz.
    let outcome = identifier.identify(&block, &Constraints::new(4, 2), &model);
    if let Some(best) = outcome.best {
        let dot = to_dot(
            &block,
            &DotOptions::new()
                .title("saturating MAC — best cut under Nin=4, Nout=2")
                .highlight(best.cut.iter()),
        );
        println!("\nGraphviz rendering of the selected instruction:\n{dot}");
    }
}
