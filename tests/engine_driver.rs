//! Acceptance tests for the unified engine: every bundled algorithm is reachable
//! through the registry by name, and the `rayon`-parallel program driver produces
//! byte-identical selections to the sequential path on the real workloads.

use ise::core::engine::{select_program, DriverOptions, IdentifierConfig};
use ise::core::{select_iterative, Constraints, SelectionOptions};
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::workloads::{adpcm, gsm};

/// Registry names of all six bundled identification algorithms.
const ALL_SIX: [&str; 6] = [
    "single-cut",
    "multicut",
    "exhaustive",
    "clubbing",
    "maxmiso",
    "single-node",
];

#[test]
fn all_six_algorithms_are_reachable_by_name() {
    let registry = ise::baselines::full_registry();
    for name in ALL_SIX {
        let identifier = registry
            .create(name)
            .unwrap_or_else(|e| panic!("{name} must be registered: {e}"));
        assert_eq!(identifier.name(), name);
    }
}

#[test]
fn parallel_driver_is_byte_identical_to_sequential_on_adpcm_and_gsm() {
    let registry = ise::baselines::full_registry();
    let model = DefaultCostModel::new();
    // A modest budget keeps the exact algorithms fast on the big adpcm blocks; the
    // multicut slots stay at the default. The exhaustive oracle skips oversized blocks
    // identically on both paths.
    let config = IdentifierConfig::default().with_exploration_budget(Some(200_000));
    for program in [adpcm::decode_program(), gsm::program()] {
        for name in ALL_SIX {
            let identifier = registry
                .create_configured(name, &config)
                .expect("registered");
            let constraints = Constraints::new(4, 2);
            let parallel = select_program(
                &program,
                identifier.as_ref(),
                constraints,
                &model,
                DriverOptions::new(8),
            );
            let sequential = select_program(
                &program,
                identifier.as_ref(),
                constraints,
                &model,
                DriverOptions::new(8).sequential(),
            );
            assert_eq!(
                parallel,
                sequential,
                "{name} on {} diverged between parallel and sequential",
                program.name()
            );
        }
    }
}

#[test]
fn engine_single_cut_driver_reproduces_the_legacy_iterative_selection() {
    let registry = ise::baselines::full_registry();
    let model = DefaultCostModel::new();
    let identifier = registry.create("single-cut").expect("registered");
    for program in [adpcm::decode_program(), gsm::program()] {
        for constraints in [Constraints::new(2, 1), Constraints::new(4, 2)] {
            let legacy = select_iterative(&program, constraints, &model, SelectionOptions::new(8));
            let engine = select_program(
                &program,
                identifier.as_ref(),
                constraints,
                &model,
                DriverOptions::new(8),
            );
            assert_eq!(legacy, engine, "{} under {constraints}", program.name());
        }
    }
}

#[test]
fn every_registered_algorithm_yields_a_valid_selection_on_gsm() {
    let registry = ise::baselines::full_registry();
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    let program = gsm::program();
    let constraints = Constraints::new(4, 2);
    for name in registry.names() {
        let identifier = registry.create(name).expect("registered");
        let selection = select_program(
            &program,
            identifier.as_ref(),
            constraints,
            &model,
            DriverOptions::new(8),
        );
        assert!(selection.len() <= 8, "{name}");
        let report = selection.speedup_report(&program, &software);
        assert!(report.speedup >= 1.0, "{name}");
        for chosen in &selection.chosen {
            let block = program.block(chosen.block_index);
            assert!(chosen.identified.evaluation.inputs <= 4, "{name}");
            assert!(chosen.identified.evaluation.outputs <= 2, "{name}");
            assert!(
                ise::core::cut::is_convex(block, &chosen.identified.cut),
                "{name}"
            );
            assert!(
                ise::core::cut::is_afu_legal(block, &chosen.identified.cut),
                "{name}"
            );
        }
    }
}
