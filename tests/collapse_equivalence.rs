//! Semantic equivalence of cut collapsing: for every instruction a selection chooses,
//! rewriting the program so the cut becomes one AFU instruction must not change what
//! the program computes. The IR interpreter is the judge, on seeded inputs, across the
//! bundled kernel families (ADPCM, GSM, G.721, crypto, DSP).

use std::collections::BTreeMap;

use ise_core::collapse::collapse_selection;
use ise_core::engine::SingleCut;
use ise_core::{select_program, Constraints, DriverOptions};
use ise_hw::DefaultCostModel;
use ise_ir::interp::Evaluator;
use ise_ir::Program;
use ise_workloads::{adpcm, crypto, dsp, g721, gsm, suite};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The evaluated programs: one representative per bundled kernel family.
fn programs() -> Vec<Program> {
    vec![
        adpcm::decode_program(),
        gsm::program(),
        g721::program(),
        crypto::crc_program(),
        crypto::des_program(),
        dsp::epic_program(),
    ]
}

/// Seeded input bindings for one block: every block input gets a deterministic,
/// moderately sized value (small enough that multiplies stay far from overflow
/// surprises mattering — wrapping semantics are identical either way anyway).
fn seeded_bindings(block: &ise_ir::Dfg, seed: u64) -> BTreeMap<String, i32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    block
        .iter_inputs()
        .map(|(_, input)| (input.name.clone(), rng.gen_range(-512..512)))
        .collect()
}

/// Evaluates one block with the bundled lookup tables preloaded and the program's AFU
/// library registered; returns the block outputs and the final data memory.
fn eval(
    program: &Program,
    block_index: usize,
    bindings: &BTreeMap<String, i32>,
) -> (BTreeMap<String, i32>, ise_ir::interp::Memory) {
    let mut evaluator = Evaluator::with_afus(program.afus().to_vec());
    evaluator.memory = suite::evaluator_with_tables().memory;
    let result = evaluator
        .eval_block(program.block(block_index), bindings)
        .unwrap_or_else(|e| panic!("{} block {block_index}: {e}", program.name()));
    (result.outputs, evaluator.memory)
}

/// Selects instructions for `program` with the exact single-cut search.
fn selection_for(program: &Program) -> ise_core::SelectionResult {
    let model = DefaultCostModel::new();
    let identifier = SingleCut::new().with_exploration_budget(Some(50_000));
    select_program(
        program,
        &identifier,
        Constraints::new(4, 2),
        &model,
        DriverOptions::new(8),
    )
}

/// Collapsing the whole selection — several disjoint cuts per block, re-anchored
/// through the collapse node maps — preserves every block's input/output behaviour and
/// memory effects on seeded inputs.
#[test]
fn collapsed_selection_is_interp_equivalent() {
    for program in programs() {
        let selection = selection_for(&program);
        assert!(
            !selection.is_empty(),
            "{}: the exact search finds instructions on every bundled kernel",
            program.name()
        );
        let mut collapsed = program.clone();
        let afu_ids =
            collapse_selection(&mut collapsed, &selection).expect("bundled selections collapse");
        assert_eq!(afu_ids.len(), selection.len());
        assert_eq!(collapsed.afus().len(), selection.len());
        collapsed
            .validate()
            .unwrap_or_else(|e| panic!("{}: rewritten program invalid: {e}", program.name()));

        for block_index in 0..program.block_count() {
            for trial in 0..3u64 {
                let seed = trial * 7919 + block_index as u64;
                let bindings = seeded_bindings(program.block(block_index), seed);
                let (expected_out, expected_mem) = eval(&program, block_index, &bindings);
                let (actual_out, actual_mem) = eval(&collapsed, block_index, &bindings);
                assert_eq!(
                    expected_out,
                    actual_out,
                    "{} block {block_index}, trial {trial}: outputs diverged",
                    program.name()
                );
                assert_eq!(
                    expected_mem,
                    actual_mem,
                    "{} block {block_index}, trial {trial}: memory effects diverged",
                    program.name()
                );
            }
        }
    }
}

/// Every chosen cut also collapses correctly *in isolation* (a fresh program copy per
/// cut), pinning blame to a single cut should the combined test ever fail.
#[test]
fn each_chosen_cut_is_individually_interp_equivalent() {
    for program in programs() {
        let selection = selection_for(&program);
        for (step, chosen) in selection.chosen.iter().enumerate() {
            let mut collapsed = program.clone();
            let single = ise_core::SelectionResult {
                chosen: vec![chosen.clone()],
                total_weighted_saving: 0.0,
                identifier_calls: 0,
                cuts_considered: 0,
            };
            collapse_selection(&mut collapsed, &single).expect("a chosen cut collapses");
            let block_index = chosen.block_index;
            let bindings = seeded_bindings(program.block(block_index), step as u64);
            let (expected_out, expected_mem) = eval(&program, block_index, &bindings);
            let (actual_out, actual_mem) = eval(&collapsed, block_index, &bindings);
            assert_eq!(
                expected_out,
                actual_out,
                "{} step {step}: outputs diverged",
                program.name()
            );
            assert_eq!(expected_mem, actual_mem);
        }
    }
}
