//! Integration test reproducing the behaviour of Fig. 10: optimal selection of several
//! cuts across several basic blocks, with the bounded number of identifier invocations.

use ise::core::{
    identify_multiple_cuts, select_iterative, select_optimal, Constraints, SelectionOptions,
};
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::ir::{DfgBuilder, Program};

/// Three basic blocks with clearly different amounts of extractable parallelism, in the
/// spirit of the BB1/BB2/BB3 example of Fig. 10.
fn three_block_program() -> Program {
    let mut p = Program::new("fig10");

    // BB1: two independent MAC chains — two good cuts.
    let mut b = DfgBuilder::new("bb1");
    b.exec_count(100);
    let a = b.input("a");
    let c = b.input("c");
    let d = b.input("d");
    let m1 = b.mul(a, c);
    let s1 = b.add(m1, d);
    let m2 = b.mul(c, d);
    let s2 = b.add(m2, a);
    b.output("o1", s1);
    b.output("o2", s2);
    p.add_block(b.finish());

    // BB2: one deep saturation chain — one good cut.
    let mut b = DfgBuilder::new("bb2");
    b.exec_count(100);
    let v = b.input("v");
    let w = b.input("w");
    let m = b.mul(v, w);
    let s = b.add(m, v);
    let g = b.gt(s, b.imm(255));
    let sat = b.select(g, b.imm(255), s);
    b.output("o", sat);
    p.add_block(b.finish());

    // BB3: a single one-cycle operation — nothing worth extracting (a one-cycle
    // instruction replaced by another one-cycle instruction saves nothing).
    let mut b = DfgBuilder::new("bb3");
    b.exec_count(100);
    let x = b.input("x");
    let y = b.input("y");
    let t = b.xor(x, y);
    b.output("o", t);
    p.add_block(b.finish());

    p
}

#[test]
fn optimal_selection_uses_at_most_ninstr_plus_nbb_minus_one_identifier_calls() {
    let p = three_block_program();
    let model = DefaultCostModel::new();
    for ninstr in [1usize, 2, 3, 4] {
        let result = select_optimal(
            &p,
            Constraints::new(3, 1),
            &model,
            SelectionOptions::new(ninstr),
        );
        assert!(
            result.identifier_calls <= (ninstr + p.block_count() - 1) as u64,
            "Ninstr={ninstr}: {} calls",
            result.identifier_calls
        );
        assert!(result.len() <= ninstr);
    }
}

#[test]
fn optimal_selection_distributes_cuts_by_marginal_improvement() {
    let p = three_block_program();
    let model = DefaultCostModel::new();
    let result = select_optimal(&p, Constraints::new(3, 1), &model, SelectionOptions::new(3));
    // The logic-only block must never receive an instruction; the two MAC-like blocks
    // share the three slots.
    assert!(result.chosen.iter().all(|c| c.block_index != 2));
    assert!(result.chosen.iter().any(|c| c.block_index == 0));
    assert!(result.chosen.iter().any(|c| c.block_index == 1));
    // The multi-cut identifier on BB1 with two cuts must be at least as good as its best
    // single cut (the monotonicity the selection relies on).
    let one = identify_multiple_cuts(p.block(0), Constraints::new(3, 1), &model, 1);
    let two = identify_multiple_cuts(p.block(0), Constraints::new(3, 1), &model, 2);
    assert!(two.total_merit >= one.total_merit);
}

#[test]
fn optimal_never_loses_to_iterative_and_both_report_consistent_speedups() {
    let p = three_block_program();
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    for constraints in [
        Constraints::new(2, 1),
        Constraints::new(3, 1),
        Constraints::new(4, 2),
    ] {
        for ninstr in [1usize, 2, 4] {
            let optimal = select_optimal(&p, constraints, &model, SelectionOptions::new(ninstr));
            let iterative =
                select_iterative(&p, constraints, &model, SelectionOptions::new(ninstr));
            assert!(
                optimal.total_weighted_saving >= iterative.total_weighted_saving - 1e-9,
                "{constraints}, Ninstr={ninstr}"
            );
            let report = optimal.speedup_report(&p, &software);
            assert!(report.speedup >= 1.0);
            assert!(report.saved_cycles <= report.baseline_cycles);
        }
    }
}

#[test]
fn selections_are_disjoint_within_each_block() {
    let p = three_block_program();
    let model = DefaultCostModel::new();
    let result = select_optimal(&p, Constraints::new(2, 1), &model, SelectionOptions::new(4));
    for i in 0..result.chosen.len() {
        for j in i + 1..result.chosen.len() {
            if result.chosen[i].block_index == result.chosen[j].block_index {
                assert!(!result.chosen[i]
                    .identified
                    .cut
                    .intersects(&result.chosen[j].identified.cut));
            }
        }
    }
}
