//! End-to-end integration tests: benchmark kernels through identification, selection,
//! collapsing and interpretation, across all workspace crates.

use std::collections::BTreeMap;

use ise::baselines::{select_greedy, Clubbing, MaxMiso};
use ise::core::collapse::collapse_into_program;
use ise::core::{identify_single_cut, select_iterative, Constraints, SelectionOptions};
use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
use ise::ir::interp::Evaluator;
use ise::passes::{eliminate_dead_code, fold_constants};
use ise::workloads::{adpcm, suite};

#[test]
fn the_motivational_example_behaves_as_described_in_the_paper() {
    let block = adpcm::decode_kernel();
    let model = DefaultCostModel::new();

    // With 2 read / 1 write port the exact algorithm already finds a multi-operation
    // instruction (the approximate 16x4-bit multiply M1 of Fig. 3).
    let m1 = identify_single_cut(&block, Constraints::new(2, 1), &model)
        .best
        .expect("a 2-input instruction exists");
    assert!(m1.evaluation.nodes >= 4);
    assert!(m1.evaluation.inputs <= 2);
    assert_eq!(m1.evaluation.outputs, 1);

    // With 3 read ports the instruction grows (it can absorb the accumulation as in M2).
    let m2 = identify_single_cut(&block, Constraints::new(3, 1), &model)
        .best
        .expect("a 3-input instruction exists");
    assert!(m2.evaluation.merit >= m1.evaluation.merit);
    assert!(m2.evaluation.inputs <= 3);

    // More write ports never hurt and eventually enable disconnected instructions.
    let wide = identify_single_cut(&block, Constraints::new(4, 3), &model)
        .best
        .expect("a multi-output instruction exists");
    assert!(wide.evaluation.merit >= m2.evaluation.merit);

    // MaxMISO with 2 read ports cannot find M1: it is buried inside a larger MaxMISO.
    let program = adpcm::decode_program();
    let maxmiso = select_greedy(
        &program,
        &MaxMiso::new(),
        Constraints::new(2, 1),
        &model,
        16,
    );
    let iterative = select_iterative(
        &program,
        Constraints::new(2, 1),
        &model,
        SelectionOptions::new(16),
    );
    assert!(iterative.total_weighted_saving > maxmiso.total_weighted_saving);
}

#[test]
fn every_bundled_benchmark_gains_from_instruction_set_extension() {
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    for program in suite::mediabench_like() {
        let selection = select_iterative(
            &program,
            Constraints::new(4, 2),
            &model,
            SelectionOptions::new(16).with_exploration_budget(500_000),
        );
        let report = selection.speedup_report(&program, &software);
        assert!(
            report.speedup > 1.0,
            "{} should speed up, got {:.3}",
            program.name(),
            report.speedup
        );
        // Every selected instruction respects the constraints and legality.
        for chosen in &selection.chosen {
            let block = program.block(chosen.block_index);
            assert!(chosen.identified.evaluation.inputs <= 4);
            assert!(chosen.identified.evaluation.outputs <= 2);
            assert!(ise::core::cut::is_convex(block, &chosen.identified.cut));
            assert!(ise::core::cut::is_afu_legal(block, &chosen.identified.cut));
        }
    }
}

#[test]
fn looser_port_constraints_never_reduce_the_estimated_speedup() {
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    let sweep = [
        Constraints::new(2, 1),
        Constraints::new(3, 1),
        Constraints::new(4, 1),
        Constraints::new(4, 2),
        Constraints::new(4, 3),
        Constraints::new(6, 3),
        Constraints::new(8, 4),
    ];
    for program in suite::fig11_benchmarks() {
        let mut last = 0.0;
        for constraints in sweep {
            let report = select_iterative(
                &program,
                constraints,
                &model,
                SelectionOptions::new(16).with_exploration_budget(500_000),
            )
            .speedup_report(&program, &software);
            assert!(
                report.speedup + 1e-9 >= last,
                "{}: speed-up dropped from {last:.3} to {:.3} at {constraints}",
                program.name(),
                report.speedup
            );
            last = report.speedup;
        }
    }
}

#[test]
fn exact_algorithms_dominate_both_baselines_on_the_fig11_trio() {
    let model = DefaultCostModel::new();
    let software = SoftwareLatencyModel::new();
    for program in suite::fig11_benchmarks() {
        for constraints in [
            Constraints::new(2, 1),
            Constraints::new(4, 2),
            Constraints::new(8, 4),
        ] {
            let iterative = select_iterative(
                &program,
                constraints,
                &model,
                SelectionOptions::new(16).with_exploration_budget(500_000),
            )
            .speedup_report(&program, &software)
            .speedup;
            let clubbing = select_greedy(&program, &Clubbing::new(), constraints, &model, 16)
                .speedup_report(&program, &software)
                .speedup;
            let maxmiso = select_greedy(&program, &MaxMiso::new(), constraints, &model, 16)
                .speedup_report(&program, &software)
                .speedup;
            assert!(
                iterative + 1e-9 >= clubbing && iterative + 1e-9 >= maxmiso,
                "{} under {constraints}: iterative {iterative:.3} vs clubbing {clubbing:.3} / maxmiso {maxmiso:.3}",
                program.name()
            );
        }
    }
}

#[test]
fn collapsing_selected_instructions_preserves_adpcm_decoder_behaviour() {
    let mut program = adpcm::decode_program();
    let model = DefaultCostModel::new();
    let selection = select_iterative(
        &program,
        Constraints::new(4, 2),
        &model,
        SelectionOptions::new(4),
    );
    assert!(!selection.is_empty());

    // Decode a short stream of 4-bit codes with the original program.
    let decode = |program: &ise::ir::Program, afus: Vec<ise::ir::AfuSpec>| -> Vec<i32> {
        let kernel_index = 1; // block 0 is the unpack block, block 1 the decoder kernel
        let mut evaluator = Evaluator::with_afus(afus);
        evaluator
            .memory
            .load_table(adpcm::STEP_TABLE_BASE as i32, &adpcm::STEP_SIZE_TABLE);
        evaluator
            .memory
            .load_table(adpcm::INDEX_TABLE_BASE as i32, &adpcm::INDEX_TABLE);
        let mut index = 0;
        let mut valpred = 0;
        let mut step = 7;
        let mut samples = Vec::new();
        for (i, delta) in [7, 3, 12, 0, 15, 8, 1, 6, 9, 4].into_iter().enumerate() {
            let inputs: BTreeMap<String, i32> = [
                ("delta".to_string(), delta),
                ("index".to_string(), index),
                ("valpred".to_string(), valpred),
                ("step".to_string(), step),
                ("outp".to_string(), 0x600 + i as i32),
            ]
            .into();
            let out = evaluator
                .eval_block(program.block(kernel_index), &inputs)
                .expect("kernel execution")
                .outputs;
            index = out["index"];
            valpred = out["valpred"];
            step = out["step"];
            samples.push(valpred);
        }
        samples
    };

    let before = decode(&program, Vec::new());
    // Collapse only the cuts of the decoder kernel (block index 1).
    for (i, chosen) in selection.chosen.iter().enumerate() {
        if chosen.block_index == 1 {
            collapse_into_program(&mut program, 1, &chosen.identified.cut, &format!("ise{i}"));
            break; // collapse the first (largest-saving) cut; node ids shift afterwards
        }
    }
    assert!(!program.afus().is_empty());
    let after = decode(&program, program.afus().to_vec());
    assert_eq!(before, after, "ISE rewriting changed the decoded samples");
}

#[test]
fn cleanup_passes_preserve_kernel_semantics() {
    // Constant folding plus DCE on a kernel with foldable address arithmetic must not
    // change its outputs.
    let mut block = adpcm::decode_kernel();
    let folded = fold_constants(&mut block);
    let removed = eliminate_dead_code(&mut block);
    let reference = adpcm::decode_kernel();
    assert!(block.validate().is_ok());
    let _ = (folded, removed);

    let run = |dfg: &ise::ir::Dfg| -> BTreeMap<String, i32> {
        let mut evaluator = Evaluator::new();
        evaluator
            .memory
            .load_table(adpcm::STEP_TABLE_BASE as i32, &adpcm::STEP_SIZE_TABLE);
        evaluator
            .memory
            .load_table(adpcm::INDEX_TABLE_BASE as i32, &adpcm::INDEX_TABLE);
        let inputs: BTreeMap<String, i32> = [
            ("delta".to_string(), 11),
            ("index".to_string(), 30),
            ("valpred".to_string(), -1200),
            ("step".to_string(), 130),
            ("outp".to_string(), 0x700),
        ]
        .into();
        evaluator
            .eval_block(dfg, &inputs)
            .expect("execution")
            .outputs
    };
    assert_eq!(run(&reference), run(&block));
}
