//! Seeded edge-case tests for the CutPool / SweepPlanner subsystem: degenerate blocks,
//! uncovered query pairs, exploration-budget interaction, and determinism across every
//! parallelism knob.

use ise_core::engine::SingleCut;
use ise_core::{select_program, Constraints, DriverOptions, SweepPlanner};
use ise_hw::DefaultCostModel;
use ise_ir::{Dfg, DfgBuilder, Program};
use ise_workloads::random;

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde::json::to_string(value)
}

/// A program holding a completely empty block, a single-node block and a normal block.
fn degenerate_program() -> Program {
    let mut p = Program::new("degenerate");
    p.add_block(Dfg::new("empty"));

    let mut b = DfgBuilder::new("single");
    b.exec_count(10);
    let x = b.input("x");
    let y = b.input("y");
    let v = b.mul(x, y);
    b.output("o", v);
    p.add_block(b.finish());

    let mut b = DfgBuilder::new("normal");
    b.exec_count(500);
    let x = b.input("x");
    let y = b.input("y");
    let acc = b.input("acc");
    let m = b.mul(x, y);
    let s = b.add(m, acc);
    let n = b.mul(s, y);
    b.output("acc", n);
    p.add_block(b.finish());
    p
}

#[test]
fn empty_and_single_node_blocks_sweep_exactly() {
    let p = degenerate_program();
    let model = DefaultCostModel::new();
    let pairs = Constraints::paper_sweep();
    let options = DriverOptions::new(8);
    let mut planner = SweepPlanner::new(&p, &model, options, &pairs);
    let pooled = planner.run_single_cut(&pairs);
    for (pair, pooled) in pairs.iter().zip(&pooled) {
        let direct = select_program(&p, &SingleCut::new(), *pair, &model, options);
        assert_eq!(to_json(pooled), to_json(&direct), "{pair}");
    }
    assert_eq!(planner.stats().exhausted_fills, 0);
}

/// Fill constraints *tighter* than a queried pair: the pair is not covered and must be
/// answered by the direct fallback — still byte-identically.
#[test]
fn tighter_fill_constraints_fall_back_to_direct() {
    let p = degenerate_program();
    let model = DefaultCostModel::new();
    let pairs = vec![Constraints::new(2, 1), Constraints::new(8, 4)];
    let options = DriverOptions::new(8);
    let mut planner = SweepPlanner::new(&p, &model, options, &pairs)
        .with_fill_constraints(Constraints::new(2, 1));
    let pooled = planner.run_single_cut(&pairs);
    for (pair, pooled) in pairs.iter().zip(&pooled) {
        let direct = select_program(&p, &SingleCut::new(), *pair, &model, options);
        assert_eq!(to_json(pooled), to_json(&direct), "{pair}");
    }
    // The covered (2, 1) pair used pools; the uncovered (8, 4) pair went direct.
    let stats = planner.stats();
    assert!(stats.pool_answers > 0);
    assert!(stats.direct_calls > 0);
}

/// Budget-group mixing: pairs with a node-count budget must never be answered from a
/// pool filled without one (and vice versa), yet both groups pool within themselves.
#[test]
fn budgeted_and_unbudgeted_pairs_use_separate_pools() {
    let p = degenerate_program();
    let model = DefaultCostModel::new();
    let pairs = vec![
        Constraints::new(4, 2),
        Constraints::new(8, 4),
        Constraints::new(4, 2).with_max_nodes(2),
        Constraints::new(8, 4).with_max_nodes(2),
    ];
    let options = DriverOptions::new(8);
    let mut planner = SweepPlanner::new(&p, &model, options, &pairs);
    let pooled = planner.run_single_cut(&pairs);
    for (pair, pooled) in pairs.iter().zip(&pooled) {
        let direct = select_program(&p, &SingleCut::new(), *pair, &model, options);
        assert_eq!(to_json(pooled), to_json(&direct), "{pair}");
    }
    assert_eq!(planner.stats().direct_calls, 0, "all pairs covered");
}

/// Exploration-budget interaction: a budget small enough to exhaust the fills forces
/// the direct fallback, whose truncated results the planner must reproduce exactly; a
/// generous budget pools as usual.
#[test]
fn exploration_budget_interaction() {
    let model = DefaultCostModel::new();
    let mut program = Program::new("budgeted");
    let mut dfg = random::wide_dfg(18, 0xBEEF);
    dfg.set_exec_count(100);
    program.add_block(dfg);
    let pairs = Constraints::paper_sweep();
    let options = DriverOptions::new(4);

    for budget in [Some(5u64), Some(200), Some(1_000_000), None] {
        let mut planner =
            SweepPlanner::new(&program, &model, options, &pairs).with_exploration_budget(budget);
        let pooled = planner.run_single_cut(&pairs);
        let identifier = SingleCut::new().with_exploration_budget(budget);
        for (pair, pooled) in pairs.iter().zip(&pooled) {
            let direct = select_program(&program, &identifier, *pair, &model, options);
            assert_eq!(
                to_json(pooled),
                to_json(&direct),
                "budget {budget:?}, {pair}"
            );
        }
        if budget == Some(5) {
            // Everything exhausts: the planner must not have served a single pool answer.
            assert_eq!(planner.stats().pool_answers, 0, "budget {budget:?}");
            assert!(planner.stats().exhausted_fills > 0);
        }
    }
}

/// Pool determinism across every parallelism knob: block-level fan-out on/off and
/// intra-block subtree splitting produce byte-identical sweep results.
#[test]
fn pool_determinism_across_parallelism_knobs() {
    let model = DefaultCostModel::new();
    let mut program = Program::new("knobs");
    for (i, nodes) in [14usize, 12, 16].into_iter().enumerate() {
        let config = random::RandomDfgConfig {
            nodes,
            ..random::RandomDfgConfig::default()
        };
        let mut dfg = random::random_dfg(&config, 0x5EED + i as u64);
        dfg.set_exec_count(1000 / (i as u64 + 1));
        program.add_block(dfg);
    }
    let pairs = Constraints::paper_sweep();

    let reference_options = DriverOptions::new(8).sequential();
    let mut reference_planner = SweepPlanner::new(&program, &model, reference_options, &pairs);
    let reference = reference_planner.run_single_cut(&pairs);

    for parallel in [false, true] {
        for levels in [0usize, 3, 6] {
            let options = DriverOptions::new(8)
                .with_parallel(parallel)
                .with_intra_block_levels(levels);
            let mut planner = SweepPlanner::new(&program, &model, options, &pairs);
            let results = planner.run_single_cut(&pairs);
            assert_eq!(
                to_json(&results),
                to_json(&reference),
                "parallel={parallel}, intra_block_levels={levels}"
            );
        }
    }
}
