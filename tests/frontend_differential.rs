//! Differential test: the textual LLVM IR front-end and the hand-built workload
//! construction must drive identification to the same answer.
//!
//! `crates/frontend/fixtures/crc32-flat.ll` is a line-for-line transliteration of
//! `ise_workloads::crypto::crc32_kernel` (four unrolled table-less CRC-32 bit
//! steps). Lowering it and pinning the execution frequency must produce a
//! selection — chosen cuts, savings, speed-up report — identical to the
//! in-memory original under every bundled algorithm.
//!
//! The `identifier_calls`/`cuts_considered` effort counters are *not* compared:
//! the canonical search order tie-breaks on immediate values, and the `.ll` file
//! carries LLVM's signed rendering of the CRC polynomial (`-306674912`) where
//! the hand-built kernel holds the unsigned `3988292384` — the same 32-bit
//! constant, a different `i64`, hence a different (equally exhaustive) visit
//! order over the same cut space.

use ise::api::{Algorithm, SessionBuilder};
use ise::core::Constraints;

const CRC_EXEC_COUNT: u64 = 80_000;

fn lowered_crc() -> ise::ir::Program {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/frontend/fixtures/crc32-flat.ll"
    );
    let text = std::fs::read_to_string(path).expect("bundled fixture exists");
    let mut program = ise::frontend::parse_and_lower("crc32", &text).expect("fixture parses");
    assert_eq!(program.blocks().len(), 1, "crc32-flat is a single block");
    // The .ll carries no profile data (exec_count defaults to 1); pin it to the
    // hand-built kernel's frequency so reports are comparable like for like.
    program.blocks_mut()[0].set_exec_count(CRC_EXEC_COUNT);
    program
}

#[test]
fn lowered_crc32_matches_hand_built_kernel_across_algorithms() {
    let lowered = lowered_crc();
    let reference = ise::workloads::crypto::crc_program();
    for algorithm in [
        Algorithm::SingleCut,
        Algorithm::MultiCut,
        Algorithm::MaxMiso,
        Algorithm::Clubbing,
    ] {
        for (nin, nout) in [(2, 1), (4, 2), (8, 4)] {
            let session = SessionBuilder::new()
                .algorithm(algorithm)
                .constraints(Constraints::new(nin, nout))
                .build()
                .expect("session builds");
            let a = session.run(&lowered).expect("lowered program runs");
            let b = session.run(&reference).expect("reference program runs");
            assert_eq!(
                ise::api::to_json(&a.selection.chosen),
                ise::api::to_json(&b.selection.chosen),
                "{algorithm} ({nin},{nout}): chosen cuts diverged"
            );
            assert_eq!(
                a.selection.total_weighted_saving, b.selection.total_weighted_saving,
                "{algorithm} ({nin},{nout}): savings diverged"
            );
            assert_eq!(
                ise::api::to_json(&a.report),
                ise::api::to_json(&b.report),
                "{algorithm} ({nin},{nout}): speed-up reports diverged"
            );
        }
    }
}

#[test]
fn lowered_crc32_graph_is_node_for_node_identical() {
    let lowered = lowered_crc();
    let reference = ise::workloads::crypto::crc_program();
    let a = &lowered.blocks()[0];
    let b = &reference.blocks()[0];
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.input_count(), b.input_count());
    assert_eq!(a.output_count(), b.output_count());
    assert_eq!(a.exec_count(), b.exec_count());
    for ((_, x), (_, y)) in a.iter_nodes().zip(b.iter_nodes()) {
        assert_eq!(x.opcode, y.opcode);
        // Operand structure matches; immediates agree as 32-bit constants (the
        // .ll renders the polynomial signed, the builder unsigned).
        assert_eq!(x.operands.len(), y.operands.len());
        for (p, q) in x.operands.iter().zip(&y.operands) {
            match (p, q) {
                (ise::ir::Operand::Imm(v), ise::ir::Operand::Imm(w)) => {
                    assert_eq!(*v as u32, *w as u32, "immediates differ as 32-bit values");
                }
                _ => assert_eq!(p, q),
            }
        }
    }
}
