//! Property tests for the canonical structural form (`ise_core::structural`): the
//! foundation of corpus-scale deduplication.
//!
//! The contract under test, over seeded random graphs:
//!
//! 1. **Isomorphism invariance** — re-instantiating a graph with a shuffled (but
//!    topological) insertion order and a permuted input-port order must not change its
//!    [`StructuralKey`];
//! 2. **Relabeling soundness** — when two blocks share a key, answering one from a
//!    Pareto fill computed on the other (what [`ise_core::run_corpus`] does) must be
//!    byte-identical — selections *and* effort statistics — to searching it directly;
//! 3. **Distinctness** — structurally different graphs get different keys (grounded in
//!    byte comparison: hash equality alone is never trusted, so a hash collision is a
//!    counted diagnostic, not a correctness event).

use ise_core::{run_corpus, Constraints, CorpusOptions, DriverOptions, StructuralForm};
use ise_hw::DefaultCostModel;
use ise_ir::Program;
use ise_workloads::corpus::shuffled_isomorph;
use ise_workloads::random::{random_dfg, RandomDfgConfig};

#[test]
fn canonical_keys_are_invariant_under_insertion_and_port_reordering() {
    for seed in 0..40u64 {
        let config = RandomDfgConfig {
            nodes: 10 + (seed as usize % 15),
            ..RandomDfgConfig::default()
        };
        let template = random_dfg(&config, seed);
        let template_form = StructuralForm::of(&template);
        for variant in 0..3u64 {
            let shuffled = shuffled_isomorph(&template, "variant", seed * 31 + variant);
            let shuffled_form = StructuralForm::of(&shuffled);
            assert_eq!(
                template_form.key(),
                shuffled_form.key(),
                "seed {seed} variant {variant}: isomorphic graphs must share a key"
            );
            assert!(
                !template_form.key().collides_with(shuffled_form.key()),
                "equal keys are byte-equal, never a hash accident"
            );
        }
    }
}

#[test]
fn distinct_structures_get_distinct_keys() {
    // Any two graphs from different seeds of this generator differ structurally with
    // overwhelming probability; the keys must separate every pair. (If two seeds ever
    // did produce isomorphic graphs the assertion message would identify them — the
    // fix would be to change the seeds, not the hasher.)
    let mut keys = Vec::new();
    for seed in 0..30u64 {
        let dfg = random_dfg(&RandomDfgConfig::default(), seed);
        keys.push((seed, StructuralForm::of(&dfg).key().clone()));
    }
    for (i, (seed_a, a)) in keys.iter().enumerate() {
        for (seed_b, b) in &keys[i + 1..] {
            assert_ne!(a, b, "seeds {seed_a} and {seed_b} must not share a key");
        }
    }
}

#[test]
fn flipping_one_opcode_changes_the_key() {
    use ise_ir::DfgBuilder;
    let build = |second_is_sub: bool| {
        let mut b = DfgBuilder::new("pair");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        let s = if second_is_sub {
            b.sub(m, y)
        } else {
            b.add(m, y)
        };
        b.output("o", s);
        b.finish()
    };
    let add_key = StructuralForm::of(&build(false)).key().clone();
    let sub_key = StructuralForm::of(&build(true)).key().clone();
    assert_ne!(add_key, sub_key);
}

/// The end-to-end soundness property: answers translated out of a shared canonical
/// fill are byte-identical — selections, merits, `identifier_calls`,
/// `cuts_considered` — to direct searches, across random isomorphic corpora.
#[test]
fn translated_answers_are_byte_identical_to_direct_searches() {
    let model = DefaultCostModel::new();
    for seed in 0..8u64 {
        let config = RandomDfgConfig {
            nodes: 12 + (seed as usize % 8),
            memory_fraction: 0.05,
            ..RandomDfgConfig::default()
        };
        let template = random_dfg(&config, 1000 + seed);
        // A corpus of one-block programs, all isomorphic to the template (the first
        // is the template itself, so the fill happens in "foreign" coordinates for
        // every later program).
        let programs: Vec<Program> = (0..4u64)
            .map(|i| {
                let mut program = Program::new(format!("iso_{seed}_{i}"));
                let block = if i == 0 {
                    template.clone()
                } else {
                    shuffled_isomorph(&template, format!("b{i}"), seed * 101 + i)
                };
                program.add_block(block);
                program
            })
            .collect();
        for constraints in [Constraints::new(3, 1), Constraints::new(4, 2)] {
            let options =
                CorpusOptions::new(constraints).with_driver(DriverOptions::new(4).sequential());
            let deduped = run_corpus(&programs, &model, &options);
            let reference = run_corpus(&programs, &model, &options.with_dedup(false));
            assert_eq!(
                ise_api::to_json(&deduped.selections),
                ise_api::to_json(&reference.selections),
                "seed {seed} {constraints}: translated answers must match direct searches"
            );
            assert_eq!(deduped.stats.key_collisions, 0);
            assert!(
                deduped.stats.pool_answers > 0,
                "seed {seed}: isomorphic corpus must share fills"
            );
            assert!(
                deduped.stats.physical_cuts_considered <= reference.stats.physical_cuts_considered,
                "seed {seed}: sharing never enumerates more than the reference"
            );
        }
    }
}
