//! Seeded property suite pitting the word-packed [`IncrementalCutState`] against the
//! retained reference implementations: the `Vec<bool>`-based
//! [`ReferenceCutState`] (the pre-bitset kernel state, kept as an executable
//! specification) and the from-scratch evaluators of `ise::core::cut`
//! (`evaluate`, `is_convex`).
//!
//! The walks below follow the kernel's decision discipline — nodes decided in the
//! consumers-first order of the [`BlockContext`], undone in LIFO order — on random wide
//! DAGs up to 200 nodes, with exclusion masks and multicut slot interleavings. Like
//! `tests/properties.rs`, the cases are deterministic seeded loops (the offline
//! environment has no `proptest`); any failure reproduces exactly from the printed
//! case parameters.

use ise::core::cut::{self, CutSet};
use ise::core::kernel::reference::ReferenceCutState;
use ise::core::kernel::{BlockContext, BoundCheck, IncrementalCutState};
use ise::core::{
    identify_single_cut_reference, Constraints, MultiCutSearch, SearchStats, SingleCutSearch,
};
use ise::hw::DefaultCostModel;
use ise::ir::{Dfg, NodeId};
use ise::workloads::random::wide_dfg;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A random subset of the block's nodes, used as an exclusion mask.
fn random_exclusions(dfg: &Dfg, rng: &mut u64) -> CutSet {
    let picked = dfg
        .node_ids()
        .filter(|_| xorshift(rng).is_multiple_of(5))
        .collect::<Vec<_>>();
    CutSet::from_nodes(dfg, picked)
}

fn assert_states_agree(inc: &IncrementalCutState, reference: &ReferenceCutState, context: &str) {
    assert_eq!(inc.len(), reference.len(), "{context}: len");
    assert_eq!(inc.inputs(), reference.inputs(), "{context}: inputs");
    assert_eq!(inc.outputs(), reference.outputs(), "{context}: outputs");
    assert_eq!(inc.software(), reference.software(), "{context}: software");
    assert!(
        (inc.critical_path() - reference.critical_path()).abs() < 1e-9,
        "{context}: critical path"
    );
    assert!(
        (inc.area() - reference.area()).abs() < 1e-9,
        "{context}: area"
    );
    assert!(
        (inc.merit() - reference.merit()).abs() < 1e-9,
        "{context}: merit"
    );
}

/// One decision of the randomized walk, so the unwind can replay it in LIFO order.
enum Decision {
    Added,
    Outside,
}

/// Drives both state implementations through the same randomized, walk-disciplined
/// decision/undo sequence and checks every observable quantity after every mutation —
/// including the from-scratch `cut::evaluate` / `cut::is_convex` on the materialized
/// member set at checkpoints.
#[test]
fn bitset_state_matches_the_reference_on_random_wide_dags() {
    let model = DefaultCostModel::new();
    for (case, &nodes) in [16usize, 48, 96, 200].iter().enumerate() {
        for seed in 0..3u64 {
            let dfg = wide_dfg(nodes, 0xB17 ^ (seed << 8) ^ case as u64);
            let mut rng = 0x9E3779B97F4A7C15u64 ^ (seed << 4) ^ nodes as u64;
            let mut ctx = BlockContext::new(&dfg, Constraints::new(8, 4), &model);
            // Odd cases run under a random exclusion mask.
            if case % 2 == 1 {
                ctx.block_nodes(&random_exclusions(&dfg, &mut rng));
            }
            let mut inc = IncrementalCutState::new(&ctx);
            let mut reference = ReferenceCutState::new(&ctx);
            let mut decisions: Vec<Decision> = Vec::new();
            let mut members: Vec<NodeId> = Vec::new();
            for step in 0..4 * ctx.depth() {
                let level = decisions.len();
                let backtrack =
                    level == ctx.depth() || (level > 0 && xorshift(&mut rng).is_multiple_of(4));
                let context = format!("nodes {nodes}, seed {seed}, step {step}");
                if backtrack {
                    if let Decision::Added = decisions.pop().expect("level > 0") {
                        members.pop();
                    }
                    inc.undo_last(&ctx);
                    reference.undo_last(&ctx);
                    assert_states_agree(&inc, &reference, &context);
                    continue;
                }
                let node = ctx.node_at(level);
                let want_add = !ctx.is_blocked(node) && !xorshift(&mut rng).is_multiple_of(3);
                let mut added = false;
                if want_add {
                    let probe = inc.probe_add(&ctx, node);
                    let ref_probe = reference.probe_add(&ctx, node);
                    assert_eq!(probe.outputs, ref_probe.outputs, "{context}: probed OUT");
                    assert_eq!(
                        probe.convex, ref_probe.convex,
                        "{context}: probed convexity"
                    );
                    let mut inc_stats = SearchStats::default();
                    let mut ref_stats = SearchStats::default();
                    added = inc.try_add(&ctx, node, BoundCheck::disabled(), &mut inc_stats);
                    let ref_added = reference.try_add(&ctx, node, &mut ref_stats);
                    assert_eq!(added, ref_added, "{context}: try_add outcome");
                    assert_eq!(inc_stats, ref_stats, "{context}: try_add stats");
                }
                if added {
                    decisions.push(Decision::Added);
                    members.push(node);
                } else {
                    // Blocked, declined or pruned: the node is decided outside.
                    inc.mark_outside(&ctx, node);
                    reference.mark_outside(&ctx, node);
                    decisions.push(Decision::Outside);
                }
                assert_states_agree(&inc, &reference, &context);
                assert!(inc.contains(node) == reference.contains(node));
                // Periodically cross-check against the from-scratch evaluators.
                if step % 7 == 0 && !members.is_empty() {
                    let cut_set = CutSet::from_nodes(&dfg, members.iter().copied());
                    assert!(cut::is_convex(&dfg, &cut_set), "{context}: convexity");
                    let eval = cut::evaluate(&dfg, &cut_set, &model);
                    assert_eq!(inc.inputs(), eval.inputs, "{context}: evaluate IN");
                    assert_eq!(inc.outputs(), eval.outputs, "{context}: evaluate OUT");
                    assert_eq!(inc.software(), eval.software_cycles);
                    assert!((inc.merit() - eval.merit).abs() < 1e-9);
                }
            }
            // Unwind completely: both states must return to empty.
            while !decisions.is_empty() {
                decisions.pop();
                inc.undo_last(&ctx);
                reference.undo_last(&ctx);
            }
            assert!(inc.is_empty() && reference.is_empty());
            assert_eq!(inc.inputs(), 0);
            assert_eq!(inc.outputs(), 0);
        }
    }
}

/// Deep snapshot/restore across the whole 200-node tree, twice: the second descent
/// trips the `longest_path` stale-entry debug assertion if the first unwind left any
/// entry behind (the regression of the documented `kernel.rs` hazard, at scale).
#[test]
fn deep_restores_leave_no_stale_state_behind() {
    let model = DefaultCostModel::new();
    let dfg = wide_dfg(200, 0xDEE9);
    let ctx = BlockContext::new(&dfg, Constraints::new(8, 4), &model);
    let mut inc = IncrementalCutState::new(&ctx);
    let mut reference = ReferenceCutState::new(&ctx);
    for round in 0..2 {
        let mut applied = 0usize;
        for level in 0..ctx.depth() {
            let node = ctx.node_at(level);
            let mut sink = SearchStats::default();
            let added =
                !ctx.is_blocked(node) && inc.try_add(&ctx, node, BoundCheck::disabled(), &mut sink);
            if added {
                let mut ref_sink = SearchStats::default();
                assert!(reference.try_add(&ctx, node, &mut ref_sink));
            } else {
                inc.mark_outside(&ctx, node);
                reference.mark_outside(&ctx, node);
            }
            applied += 1;
        }
        assert_states_agree(&inc, &reference, &format!("round {round}, full depth"));
        for _ in 0..applied {
            inc.undo_last(&ctx);
            reference.undo_last(&ctx);
        }
        assert!(inc.is_empty() && reference.is_empty());
    }
}

/// The bitset search (default static bound, sequential and parallel) returns the same
/// selection as the retained reference search, and the opt-in incumbent-bound mode
/// returns the same selection as the default mode while never considering more cuts.
#[test]
fn search_selections_match_the_reference_search() {
    let model = DefaultCostModel::new();
    for seed in 0..6u64 {
        let nodes = 10 + (seed as usize) * 3;
        let dfg = wide_dfg(nodes, 0x5EA ^ seed);
        for constraints in [
            Constraints::new(2, 1),
            Constraints::new(4, 2),
            Constraints::new(8, 4),
        ] {
            let reference = identify_single_cut_reference(&dfg, constraints, &model);
            let bitset = SingleCutSearch::new(&dfg, constraints, &model).run();
            assert_eq!(
                bitset.best, reference.best,
                "selection, seed {seed}, {constraints}"
            );
            assert_eq!(bitset.stats.best_updates, reference.stats.best_updates);
            // The static bound can only relabel or remove attempts, never add any.
            assert!(bitset.stats.cuts_considered <= reference.stats.cuts_considered);
            let bounded = SingleCutSearch::new(&dfg, constraints, &model)
                .with_incumbent_bound()
                .run();
            assert_eq!(
                bounded.best, bitset.best,
                "incumbent bound, seed {seed}, {constraints}"
            );
            assert!(bounded.stats.cuts_considered <= bitset.stats.cuts_considered);
        }
    }
}

/// Multicut slot interleavings: two incremental states driven side by side with the
/// reference pair through the `(M+1)`-ary discipline (assign to one slot, mark outside
/// the other), plus the incumbent-bound tuple equality on random DAGs.
#[test]
fn multicut_interleavings_track_the_reference_pair() {
    let model = DefaultCostModel::new();
    for seed in 0..4u64 {
        let dfg = wide_dfg(32, 0x3C ^ (seed << 3));
        let ctx = BlockContext::new(&dfg, Constraints::new(8, 4), &model);
        let mut rng = 0xABCD ^ seed;
        let mut inc = [
            IncrementalCutState::new(&ctx),
            IncrementalCutState::new(&ctx),
        ];
        let mut reference = [ReferenceCutState::new(&ctx), ReferenceCutState::new(&ctx)];
        let mut applied = 0usize;
        for level in 0..ctx.depth() {
            let node = ctx.node_at(level);
            let slot = (xorshift(&mut rng) % 3) as usize; // 2 = software branch
            let mut assigned = None;
            if slot < 2 && !ctx.is_blocked(node) {
                let mut inc_stats = SearchStats::default();
                let mut ref_stats = SearchStats::default();
                let ok = inc[slot].try_add(&ctx, node, BoundCheck::disabled(), &mut inc_stats);
                let ref_ok = reference[slot].try_add(&ctx, node, &mut ref_stats);
                assert_eq!(ok, ref_ok, "seed {seed}, level {level}: try_add");
                assert_eq!(inc_stats, ref_stats);
                if ok {
                    assigned = Some(slot);
                }
            }
            for s in 0..2 {
                if Some(s) != assigned {
                    inc[s].mark_outside(&ctx, node);
                    reference[s].mark_outside(&ctx, node);
                }
            }
            applied += 1;
            for s in 0..2 {
                assert_states_agree(
                    &inc[s],
                    &reference[s],
                    &format!("seed {seed}, level {level}, slot {s}"),
                );
            }
        }
        for _ in 0..applied {
            for s in (0..2).rev() {
                inc[s].undo_last(&ctx);
                reference[s].undo_last(&ctx);
            }
        }
        assert!(inc.iter().all(IncrementalCutState::is_empty));
        assert!(reference.iter().all(ReferenceCutState::is_empty));
    }
    // The incumbent-bound multicut returns the same tuple as the default mode.
    for seed in 0..3u64 {
        let dfg = wide_dfg(14, 0x77 ^ seed);
        for m in [2usize, 3] {
            let default = MultiCutSearch::new(&dfg, Constraints::new(4, 2), &model, m).run();
            let bounded = MultiCutSearch::new(&dfg, Constraints::new(4, 2), &model, m)
                .with_incumbent_bound()
                .run();
            assert_eq!(default.cuts, bounded.cuts, "seed {seed}, M={m}");
            assert!(bounded.stats.cuts_considered <= default.stats.cuts_considered);
        }
    }
}
