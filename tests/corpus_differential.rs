//! Differential proof of the corpus driver's exactness: for every bundled kernel and
//! for duplicate-heavy synthetic corpora, the deduplicated corpus run
//! (`ise_core::run_corpus` with structural sharing on) is **byte-identical** — once
//! serialised, including the `identifier_calls`/`cuts_considered` effort accounting —
//! to the dedup-off reference, which itself is the plain per-program
//! [`select_program`](ise_core::select_program) driver.
//!
//! Mirrors `tests/sweep_differential.rs`, one abstraction level up: the sweep
//! differential proves pool answers match per-pair searches inside one program; this
//! one proves canonical-coordinate fills translated across *programs* match per-block
//! searches across a whole corpus.

use ise_core::engine::SingleCut;
use ise_core::{run_corpus, select_program, Constraints, CorpusOptions, DriverOptions};
use ise_hw::DefaultCostModel;
use ise_workloads::corpus::{duplicate_heavy, CorpusConfig};
use ise_workloads::suite;

fn assert_corpus_exact(programs: &[ise_ir::Program], options: &CorpusOptions, label: &str) {
    let model = DefaultCostModel::new();
    let deduped = run_corpus(programs, &model, options);
    let reference = run_corpus(programs, &model, &options.with_dedup(false));
    assert_eq!(
        ise_api::to_json(&deduped.selections),
        ise_api::to_json(&reference.selections),
        "{label}: dedup-on selections must be byte-identical to dedup-off"
    );
    // The reference path is itself provably the plain per-program driver: check one
    // program explicitly so the whole chain (corpus → reference → select_program) is
    // pinned by this test alone.
    let direct = select_program(
        &programs[0],
        &SingleCut::new().with_exploration_budget(options.exploration_budget),
        options.constraints,
        &model,
        options.driver.sequential(),
    );
    assert_eq!(
        ise_api::to_json(&reference.selections[0]),
        ise_api::to_json(&direct),
        "{label}: the reference path is the plain program driver"
    );
    assert_eq!(
        deduped.stats.logical_identifier_calls, reference.stats.logical_identifier_calls,
        "{label}: the logical effort accounting is mode-independent"
    );
    assert_eq!(
        deduped.stats.logical_cuts_considered, reference.stats.logical_cuts_considered,
        "{label}: the logical enumeration accounting is mode-independent"
    );
    assert_eq!(deduped.stats.key_collisions, 0, "{label}");
}

/// Every bundled kernel, analysed together as one corpus under the paper's central
/// constraint pairs.
#[test]
fn bundled_kernels_corpus_is_exact() {
    let programs = suite::mediabench_like();
    assert!(programs.len() >= 5);
    for constraints in [Constraints::new(2, 1), Constraints::new(4, 2)] {
        let options = CorpusOptions::new(constraints)
            .with_driver(DriverOptions::new(6).sequential())
            .with_exploration_budget(Some(200_000));
        assert_corpus_exact(&programs, &options, "mediabench");
    }
}

/// The seeded duplicate-heavy synthetic corpus: many isomorphic instances of a few
/// templates. This is where dedup pays — the test also pins the hit-rate floor the
/// benchmark gate (`BENCH_corpus.json`) relies on.
#[test]
fn duplicate_heavy_corpus_is_exact_and_shares_most_fills() {
    let corpus = duplicate_heavy(&CorpusConfig::default(), 7);
    let options =
        CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4).sequential());
    assert_corpus_exact(&corpus, &options, "duplicate-heavy");

    let model = DefaultCostModel::new();
    let outcome = run_corpus(&corpus, &model, &options);
    assert!(
        outcome.stats.pool_answers > 0 && outcome.stats.dedup_hit_rate() > 0.5,
        "a duplicate-heavy corpus must answer most logical calls from shared fills: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.physical_cuts_considered * 2 <= outcome.stats.logical_cuts_considered,
        "dedup must at least halve the enumeration work here: {:?}",
        outcome.stats
    );
}

/// The parallel sharded path returns the same bytes as the sequential one, whatever
/// the scheduler does (single-CPU containers included: the shim still exercises the
/// atomic-cursor scheduling structure).
#[test]
fn sharded_and_sequential_corpus_runs_are_byte_identical() {
    let corpus = duplicate_heavy(
        &CorpusConfig {
            programs: 5,
            blocks_per_program: 4,
            ..CorpusConfig::default()
        },
        13,
    );
    let model = DefaultCostModel::new();
    let sequential =
        CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4).sequential());
    let parallel = CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4));
    let a = run_corpus(&corpus, &model, &sequential);
    let b = run_corpus(&corpus, &model, &parallel);
    assert_eq!(
        ise_api::to_json(&a.selections),
        ise_api::to_json(&b.selections)
    );
    assert_eq!(
        a.stats, b.stats,
        "effort accounting is schedule-independent"
    );
    // Shard telemetry accounts for every program exactly once (it is telemetry, not
    // part of the deterministic payload).
    let sharded_items: usize = b.shards.iter().map(|s| s.items).sum();
    assert_eq!(sharded_items, corpus.len());
}
