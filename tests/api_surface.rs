//! Acceptance tests for the Session/BatchService front-end: JSON round-trips are
//! byte-identical, batches are deterministic and ordered, and every malformed
//! input degrades into an `IseError` instead of a panic.

use ise::core::{Constraints, DriverOptions, IdentifierConfig};
use ise::hw::speedup::SpeedupReport;
use ise::ir::Program;
use ise::workloads::{adpcm, gsm, suite};
use ise::{Algorithm, BatchService, IseError, IseRequest, ProgramSource, Session, SessionBuilder};

/// A program serialised to JSON and read back must drive the identification stack
/// to a byte-identical selection (and itself re-serialise byte-identically).
#[test]
fn program_json_round_trip_yields_byte_identical_selection() {
    let program = adpcm::decode_program();
    let wire = ise::api::to_json(&program);
    let reloaded = ise::api::program_from_json(&wire).expect("bundled program is valid");
    assert_eq!(ise::api::to_json(&reloaded), wire, "program JSON is stable");

    let session = SessionBuilder::new()
        .algorithm(Algorithm::SingleCut)
        .constraints(Constraints::new(4, 2))
        .exploration_budget(200_000)
        .max_instructions(4)
        .build()
        .expect("valid configuration");
    let original = session.run(&program).expect("valid program");
    let roundtripped = session.run(&reloaded).expect("reloaded program is valid");
    assert_eq!(
        ise::api::to_json(&original.selection),
        ise::api::to_json(&roundtripped.selection),
        "selections must be byte-identical across the serialisation boundary"
    );
    assert_eq!(original, roundtripped);
}

/// Requests, responses and speed-up reports all round-trip through JSON.
#[test]
fn request_and_report_round_trip_through_json() {
    let request = IseRequest::new(Algorithm::MultiCut, ProgramSource::Workload("gsm".into()))
        .with_constraints(Constraints::new(3, 1).with_max_nodes(6))
        .with_config(IdentifierConfig::default().with_exploration_budget(Some(50_000)))
        .with_options(DriverOptions::new(2).sequential());
    let wire = ise::api::to_json(&request);
    let back: IseRequest = ise::api::from_json(&wire).expect("request round trip");
    assert_eq!(back, request);

    let response = Session::execute(&request).expect("bundled workload");
    let report_wire = ise::api::to_json(&response.report);
    let report: SpeedupReport = ise::api::from_json(&report_wire).expect("report round trip");
    assert_eq!(report, response.report);
    assert_eq!(ise::api::to_json(&report), report_wire);
}

/// The parallel batch service returns outcomes in request order, each identical to
/// a direct sequential `Session::run` of the same request.
#[test]
fn batch_service_is_ordered_and_deterministic_versus_session_run() {
    let mut requests = Vec::new();
    for workload in ["adpcmdecode", "gsm", "g721"] {
        for algorithm in [
            Algorithm::SingleCut,
            Algorithm::Clubbing,
            Algorithm::MaxMiso,
        ] {
            requests.push(
                IseRequest::new(algorithm, ProgramSource::Workload(workload.into()))
                    .with_constraints(Constraints::new(4, 2))
                    .with_config(IdentifierConfig::default().with_exploration_budget(Some(100_000)))
                    .with_options(DriverOptions::new(4)),
            );
        }
    }
    let outcomes = BatchService::new().run(&requests);
    assert_eq!(outcomes.len(), requests.len());
    for (request, outcome) in requests.iter().zip(&outcomes) {
        let batched = outcome.as_ref().expect("all requests are valid");
        // Ordered: each response matches its request's program and algorithm.
        assert_eq!(batched.program, request.program.name());
        assert_eq!(batched.algorithm, request.algorithm);
        // Deterministic: byte-identical to an in-process sequential run.
        let session = SessionBuilder::from_request(request)
            .sequential()
            .build()
            .expect("valid configuration");
        let program = request.program.resolve().expect("bundled workload");
        let direct = session.run(&program).expect("valid program");
        assert_eq!(ise::api::to_json(batched), ise::api::to_json(&direct));
    }
}

/// Unknown algorithm names fail with a self-diagnosing error listing the registry.
#[test]
fn unknown_algorithm_is_an_error_listing_the_registered_names() {
    let err = SessionBuilder::new()
        .algorithm_name("does-not-exist")
        .build()
        .expect_err("unknown algorithm must fail");
    let IseError::UnknownAlgorithm {
        requested,
        available,
    } = &err
    else {
        panic!("wrong error kind: {err}");
    };
    assert_eq!(requested, "does-not-exist");
    assert_eq!(available.len(), 6);
    for name in [
        "single-cut",
        "multicut",
        "exhaustive",
        "clubbing",
        "maxmiso",
        "single-node",
    ] {
        assert!(err.to_string().contains(name), "{err}");
    }
}

/// A structurally malformed program — here a forward (cyclic) operand reference
/// smuggled in through JSON — returns `Err`, it does not panic or hang.
#[test]
fn malformed_dfg_from_json_is_an_error_not_a_panic() {
    // A one-block program whose single node consumes the result of node 1 — which
    // does not exist — making the operand list forward-referencing.
    let bad_block = r#"{
        "name": "bb0",
        "nodes": [{"opcode": "Add", "operands": [{"Node": 1}, {"Imm": 2}], "name": null}],
        "inputs": [],
        "outputs": [{"name": "o", "source": {"Node": 0}}],
        "consumers": [[]],
        "input_consumers": [],
        "exec_count": 1
    }"#;
    let bad_program = format!(r#"{{"name": "bad", "blocks": [{bad_block}], "afus": []}}"#);

    let err = ise::api::program_from_json(&bad_program).expect_err("forward reference");
    assert!(matches!(err, IseError::InvalidProgram(_)), "{err}");

    // The same program carried inline in a request degrades into an error response.
    let parsed: Program = ise::api::from_json(&bad_program).expect("shape is valid JSON");
    let request = IseRequest::new(Algorithm::SingleCut, ProgramSource::Inline(parsed));
    let err = Session::execute(&request).expect_err("invalid inline program");
    assert!(matches!(err, IseError::InvalidProgram(_)), "{err}");

    // And a batch containing it keeps serving the other requests.
    let requests = vec![
        IseRequest::new(Algorithm::SingleCut, ProgramSource::Workload("gsm".into())),
        request,
    ];
    let outcomes = BatchService::new().run(&requests);
    assert!(outcomes[0].is_ok());
    assert!(outcomes[1].is_err());
}

/// Inline programs arriving over the wire are normalised (use-lists rebuilt,
/// structure validated) before any algorithm sees them, so an inline program and
/// the equivalent bundled workload select identically.
#[test]
fn inline_programs_are_normalised_before_identification() {
    let program = gsm::program();
    let wire = ise::api::to_json(&program);
    let reloaded: Program = ise::api::from_json(&wire).expect("valid JSON");
    let request = IseRequest::new(Algorithm::MaxMiso, ProgramSource::Inline(reloaded));
    let via_inline = Session::execute(&request).expect("normalised program runs");
    let via_workload = Session::execute(&IseRequest::new(
        Algorithm::MaxMiso,
        ProgramSource::Workload("gsm".into()),
    ))
    .expect("bundled workload runs");
    assert_eq!(
        ise::api::to_json(&via_inline.selection),
        ise::api::to_json(&via_workload.selection)
    );
}

/// Out-of-domain request parameters fail fast with `InvalidRequest`.
#[test]
fn out_of_domain_parameters_degrade_to_errors() {
    // Zero multicut slots would panic in `MultiCut::new` if it reached the factory.
    let err = SessionBuilder::new()
        .algorithm(Algorithm::MultiCut)
        .multicut_slots(0)
        .build()
        .expect_err("zero slots");
    assert!(matches!(err, IseError::InvalidRequest(_)), "{err}");

    // Unknown workloads list the bundled names.
    let err = ProgramSource::Workload("definitely-not-bundled".into())
        .resolve()
        .expect_err("unknown workload");
    let message = err.to_string();
    for name in suite::names() {
        assert!(message.contains(&name), "{message}");
    }
}
