//! Oracle cross-check through the engine: on random graphs the exact single-cut search
//! must find exactly the merit of the brute-force enumeration oracle, for several
//! `(Nin, Nout)` pairs, with both algorithms driven through the unified
//! [`Identifier`](ise::core::engine::Identifier) trait of the registry.

use ise::core::engine::IdentifierConfig;
use ise::core::Constraints;
use ise::hw::DefaultCostModel;
use ise::workloads::random::{random_dfg, RandomDfgConfig};

#[test]
fn single_cut_matches_the_exhaustive_oracle_on_random_graphs() {
    let registry = ise::baselines::full_registry();
    let fast = registry.create("single-cut").expect("registered");
    let oracle = registry.create("exhaustive").expect("registered");
    let model = DefaultCostModel::new();

    let pairs = [(2usize, 1usize), (3, 1), (3, 2), (4, 2), (8, 4)];
    for nodes in [4usize, 7, 10, 14] {
        for seed in 0..12 {
            let dfg = random_dfg(
                &RandomDfgConfig::with_nodes(nodes),
                1_000 * nodes as u64 + seed,
            );
            assert!(dfg.node_count() <= 14);
            for (nin, nout) in pairs {
                let constraints = Constraints::new(nin, nout);
                let fast_outcome = fast.identify(&dfg, &constraints, &model);
                let oracle_outcome = oracle.identify(&dfg, &constraints, &model);
                assert!(
                    !oracle_outcome.stats.budget_exhausted,
                    "oracle must fully enumerate {nodes}-node graphs"
                );
                assert!(
                    (fast_outcome.best_merit() - oracle_outcome.best_merit()).abs() < 1e-9,
                    "{} nodes, seed {seed}, {constraints}: search {} vs oracle {}",
                    dfg.node_count(),
                    fast_outcome.best_merit(),
                    oracle_outcome.best_merit()
                );
                // When a profitable cut exists, both report one and the search's cut
                // satisfies every constraint the oracle checks from scratch.
                if let Some(best) = &fast_outcome.best {
                    assert!(oracle_outcome.best.is_some());
                    assert!(best.evaluation.inputs <= nin);
                    assert!(best.evaluation.outputs <= nout);
                    assert!(best.evaluation.convex);
                }
            }
        }
    }
}

#[test]
fn oracle_node_limit_is_configurable_through_the_registry() {
    let registry = ise::baselines::full_registry();
    let model = DefaultCostModel::new();
    let dfg = random_dfg(&RandomDfgConfig::with_nodes(18), 42);
    let constraints = Constraints::new(4, 2);

    // Default limit (20 nodes): the graph is enumerated.
    let oracle = registry.create("exhaustive").expect("registered");
    let enumerated = oracle.identify(&dfg, &constraints, &model);
    assert!(!enumerated.stats.budget_exhausted);
    assert!(enumerated.stats.cuts_considered > 0);

    // Tight limit: the graph is skipped instead of hanging the driver.
    let config = IdentifierConfig {
        exhaustive_node_limit: 10,
        ..IdentifierConfig::default()
    };
    let capped = registry
        .create_configured("exhaustive", &config)
        .expect("registered");
    let skipped = capped.identify(&dfg, &constraints, &model);
    assert!(skipped.stats.budget_exhausted);
    assert!(skipped.best.is_none());
}
