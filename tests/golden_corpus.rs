//! Golden-file regression corpus: byte-for-byte comparison of checked-in experiment
//! artefacts, so any drift in the search, the selection, the pool or the serialisation
//! layer is caught at once.
//!
//! * `results/golden/fig11_quick.csv` — the CSV the `fig11 --quick` binary writes
//!   (pool-backed, the default mode);
//! * `results/golden/sweep_cli.json` — the envelope `ise-cli sweep requests/sweep_gsm.json`
//!   prints (proven byte-identical to the in-process API by `crates/cli/tests/cli_smoke.rs`);
//! * `results/golden/corpus_cli.json` — the envelope `ise-cli corpus requests/corpus_media.json`
//!   prints (same cross-process proof, and byte-identical with `--no-dedup`).
//!
//! Regeneration: when a change *intentionally* alters the artefacts, run
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_corpus
//! ```
//!
//! and commit the rewritten files together with the change that explains them.

use std::path::PathBuf;

use ise_api::{json, Session, SweepRequest};
use ise_bench::fig11::{self, Fig11Config};
use ise_bench::report;
use ise_workloads::suite;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Compares `actual` against the checked-in golden file, or rewrites the file when
/// `UPDATE_GOLDEN=1` is set.
fn assert_golden(relative: &str, actual: &str) {
    let path = repo_root().join(relative);
    if std::env::var_os("UPDATE_GOLDEN").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("golden files live in a directory"))
            .expect("create golden directory");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {relative}: {e}\n\
             (regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_corpus`)"
        )
    });
    assert_eq!(
        expected, actual,
        "{relative} drifted from the computed artefact \
         (regenerate with `UPDATE_GOLDEN=1 cargo test --test golden_corpus` if intended)"
    );
}

/// The `fig11 --quick` CSV, computed exactly as the binary computes it (pool-backed
/// default mode, adpcmdecode excluded from the quick run).
#[test]
fn fig11_quick_csv_matches_golden() {
    let config = Fig11Config::quick();
    let benchmarks: Vec<_> = suite::fig11_benchmarks()
        .into_iter()
        .filter(|p| p.name() != "adpcmdecode")
        .collect();
    let rows = fig11::run(&benchmarks, &config);
    assert_golden("results/golden/fig11_quick.csv", &report::fig11_csv(&rows));
}

/// The `ise-cli corpus requests/corpus_media.json` envelope, computed in-process —
/// with structural dedup on (the default CLI mode). The differential suite proves the
/// dedup-off bytes are identical, so this single golden pins both modes.
#[test]
fn corpus_cli_json_matches_golden() {
    let text = std::fs::read_to_string(repo_root().join("requests/corpus_media.json"))
        .expect("checked-in corpus request");
    let request: ise_api::CorpusRequest = ise_api::from_json(&text).expect("valid corpus request");
    let (response, _, _) = ise_api::BatchService::new()
        .run_corpus(&request)
        .expect("corpus executes");
    let envelope = json::Value::Object(vec![("response".to_string(), json::to_value(&response))]);
    let payload = format!("{}\n", json::to_string(&envelope));
    assert_golden("results/golden/corpus_cli.json", &payload);
}

/// The `ise-cli sweep requests/sweep_gsm.json` envelope, computed in-process.
#[test]
fn sweep_cli_json_matches_golden() {
    let text = std::fs::read_to_string(repo_root().join("requests/sweep_gsm.json"))
        .expect("checked-in sweep request");
    let request: SweepRequest = ise_api::from_json(&text).expect("valid sweep request");
    let (response, _) = Session::execute_sweep(&request).expect("sweep executes");
    let envelope = json::Value::Object(vec![("response".to_string(), json::to_value(&response))]);
    let payload = format!("{}\n", json::to_string(&envelope));
    assert_golden("results/golden/sweep_cli.json", &payload);
}
