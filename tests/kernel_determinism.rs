//! Seeded determinism property tests for the shared search kernel's intra-block
//! parallelism: splitting the decision tree into parallel subtree tasks must return
//! **byte-identical** results — the same cuts *and* the same `SearchStats`, including
//! `best_updates` — as the sequential walk, for all three kernel clients (single-cut,
//! multicut, exhaustive), with and without exclusions, at every split depth, and
//! through the whole `select_program` driver.
//!
//! Like `tests/properties.rs`, the cases are deterministic seeded loops (the offline
//! environment has no `proptest`); any failure reproduces exactly from the printed
//! case number.

use ise::core::engine::{Exhaustive, Identifier, MultiCut, SingleCut};
use ise::core::{Constraints, DriverOptions};
use ise::hw::DefaultCostModel;
use ise::ir::Program;
use ise::workloads::random::{random_dfg, wide_dfg, RandomDfgConfig};

/// Splits worth exercising: shallower and deeper than the typical tree, including a
/// depth the kernel must clamp.
const SPLITS: [usize; 3] = [1, 3, 6];

#[test]
fn single_cut_split_search_is_byte_identical_to_sequential() {
    let model = DefaultCostModel::new();
    let identifier = SingleCut::new();
    for case in 0..14u64 {
        // Alternate the default operation mix with the wide worst-case shape.
        let nodes = 8 + (case as usize % 11);
        let dfg = if case % 2 == 0 {
            random_dfg(&RandomDfgConfig::with_nodes(nodes), 0xDE ^ case)
        } else {
            wide_dfg(nodes, 0xA11 ^ case)
        };
        for constraints in [
            Constraints::new(2, 1),
            Constraints::new(4, 2),
            Constraints::new(8, 4),
        ] {
            let sequential = identifier.identify_split(&dfg, None, &constraints, &model, 0);
            for split in SPLITS {
                let parallel = identifier.identify_split(&dfg, None, &constraints, &model, split);
                assert_eq!(
                    sequential.stats, parallel.stats,
                    "case {case}, split {split}, {constraints}: stats diverged"
                );
                assert_eq!(
                    sequential, parallel,
                    "case {case}, split {split}, {constraints}: outcome diverged"
                );
            }
            // Exclusion-aware path: exclude the best cut, re-identify at every split.
            let Some(best) = &sequential.best else {
                continue;
            };
            let seq_excluded =
                identifier.identify_split(&dfg, Some(&best.cut), &constraints, &model, 0);
            for split in SPLITS {
                let par_excluded =
                    identifier.identify_split(&dfg, Some(&best.cut), &constraints, &model, split);
                assert_eq!(
                    seq_excluded, par_excluded,
                    "case {case}, split {split}, {constraints}: excluded outcome diverged"
                );
            }
        }
    }
}

#[test]
fn multicut_and_exhaustive_split_searches_are_byte_identical() {
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(4, 2);
    for case in 0..12u64 {
        let nodes = 6 + (case as usize % 6);
        let dfg = if case % 2 == 0 {
            random_dfg(&RandomDfgConfig::with_nodes(nodes), 0xBEEF ^ case)
        } else {
            wide_dfg(nodes, 0xF00 ^ case)
        };
        let clients: [Box<dyn Identifier>; 3] = [
            Box::new(MultiCut::new(2)),
            Box::new(MultiCut::new(3)),
            Box::new(Exhaustive::new()),
        ];
        for identifier in &clients {
            let sequential = identifier.identify_split(&dfg, None, &constraints, &model, 0);
            for split in SPLITS {
                let parallel = identifier.identify_split(&dfg, None, &constraints, &model, split);
                assert_eq!(
                    sequential.stats,
                    parallel.stats,
                    "case {case}, split {split}, {}: stats diverged",
                    identifier.name()
                );
                assert_eq!(
                    sequential,
                    parallel,
                    "case {case}, split {split}, {}: outcome diverged",
                    identifier.name()
                );
            }
        }
    }
}

/// Builds a few-large-blocks program: the shape where only intra-block parallelism can
/// spread the work.
fn wide_program(blocks: usize, nodes: usize, seed: u64) -> Program {
    ise::workloads::random::wide_dag_program(blocks, nodes, seed)
}

#[test]
fn select_program_is_byte_identical_across_both_parallelism_levels() {
    let model = DefaultCostModel::new();
    for (case, (blocks, nodes)) in [(2usize, 13usize), (3, 11)].into_iter().enumerate() {
        let program = wide_program(blocks, nodes, 0x5EED + case as u64);
        for identifier in [
            &SingleCut::new() as &dyn Identifier,
            &MultiCut::new(2),
            &Exhaustive::new(),
        ] {
            let constraints = Constraints::new(4, 2);
            // All four combinations of (block fan-out, intra-block split) must agree,
            // byte for byte once serialised.
            let reference = ise::core::engine::select_program(
                &program,
                identifier,
                constraints,
                &model,
                DriverOptions::new(4).sequential(),
            );
            let reference_wire = ise::api::to_json(&reference);
            for (parallel_blocks, intra_levels) in [(false, 3usize), (true, 0usize), (true, 3)] {
                let options = DriverOptions::new(4)
                    .with_parallel(parallel_blocks)
                    .with_intra_block_levels(intra_levels);
                let result = ise::core::engine::select_program(
                    &program,
                    identifier,
                    constraints,
                    &model,
                    options,
                );
                assert_eq!(
                    ise::api::to_json(&result),
                    reference_wire,
                    "case {case}, {}: blocks-parallel={parallel_blocks}, \
                     intra={intra_levels} diverged",
                    identifier.name()
                );
            }
        }
    }
}

/// An exploration budget is a global sequential cap: the kernel must ignore the split
/// hint and return exactly the sequential budgeted outcome.
#[test]
fn exploration_budget_forces_the_sequential_path() {
    let model = DefaultCostModel::new();
    let constraints = Constraints::new(4, 2);
    let dfg = wide_dfg(16, 0xB5D6E7);
    let identifier = SingleCut::new().with_exploration_budget(Some(50));
    let sequential = identifier.identify_split(&dfg, None, &constraints, &model, 0);
    assert!(sequential.stats.budget_exhausted);
    for split in SPLITS {
        let hinted = identifier.identify_split(&dfg, None, &constraints, &model, split);
        assert_eq!(
            sequential, hinted,
            "split {split} must not change a budgeted run"
        );
    }
}
