//! Property-based tests over randomly generated dataflow graphs.
//!
//! These tests tie the fast, incremental implementations used by the search algorithm to
//! the straightforward reference implementations, and check the structural invariants of
//! the identification, selection, collapsing and clean-up components on hundreds of
//! machine-generated graphs.
//!
//! The cases are generated with the deterministic seeded generator from
//! `ise_workloads::random` and plain loops instead of the `proptest` crate (unavailable
//! in the offline build environment); every failure therefore reproduces exactly from
//! the seed printed in the assertion message.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ise::baselines::{Clubbing, IdentificationAlgorithm, MaxMiso};
use ise::core::cut::{self, CutSet};
use ise::core::{exhaustive, identify_single_cut, Constraints};
use ise::hw::DefaultCostModel;
use ise::ir::interp::Evaluator;
use ise::ir::{topo, Dfg, NodeId};
use ise::passes::{eliminate_dead_code, fold_constants};
use ise::workloads::random::{random_dfg, RandomDfgConfig};

/// A small random graph (2–9 nodes), optionally memory-free, derived from `case`.
fn small_graph(case: u64) -> Dfg {
    let mut rng = SmallRng::seed_from_u64(0x51A1 ^ case);
    let config = RandomDfgConfig {
        nodes: rng.gen_range(2usize..10),
        inputs: 3,
        outputs: 2,
        memory_fraction: if rng.gen_bool(0.5) { 0.0 } else { 0.15 },
        ..RandomDfgConfig::default()
    };
    random_dfg(&config, rng.gen())
}

/// A medium random graph (5–39 nodes) derived from `case`.
fn medium_graph(case: u64) -> Dfg {
    let mut rng = SmallRng::seed_from_u64(0xced1 ^ case.rotate_left(17));
    random_dfg(
        &RandomDfgConfig::with_nodes(rng.gen_range(5usize..40)),
        rng.gen(),
    )
}

/// The pruned branch-and-bound search finds exactly the same best merit as brute-force
/// enumeration of all 2^N cuts, under several port configurations.
#[test]
fn search_matches_exhaustive_oracle() {
    let model = DefaultCostModel::new();
    for case in 0..48 {
        let dfg = small_graph(case);
        for constraints in [
            Constraints::new(2, 1),
            Constraints::new(3, 2),
            Constraints::new(8, 4),
        ] {
            let fast = identify_single_cut(&dfg, constraints, &model);
            let oracle = exhaustive::best_cut_exhaustive(&dfg, constraints, &model);
            let oracle_merit = oracle.best.as_ref().map_or(0.0, |b| b.evaluation.merit);
            assert!(
                (fast.best_merit() - oracle_merit).abs() < 1e-9,
                "case {case}, constraints {constraints}: fast {} vs oracle {}",
                fast.best_merit(),
                oracle_merit
            );
        }
    }
}

/// The incremental evaluation carried along the search equals the from-scratch reference
/// evaluation of the returned cut.
#[test]
fn incremental_evaluation_matches_reference() {
    let model = DefaultCostModel::new();
    for case in 0..48 {
        let dfg = medium_graph(case);
        let outcome = identify_single_cut(&dfg, Constraints::new(4, 2), &model);
        if let Some(best) = outcome.best {
            let reference = cut::evaluate(&dfg, &best.cut, &model);
            assert_eq!(best.evaluation.inputs, reference.inputs, "case {case}");
            assert_eq!(best.evaluation.outputs, reference.outputs, "case {case}");
            assert_eq!(
                best.evaluation.software_cycles, reference.software_cycles,
                "case {case}"
            );
            assert!(
                (best.evaluation.hardware_critical_path - reference.hardware_critical_path).abs()
                    < 1e-9,
                "case {case}"
            );
            assert!(
                (best.evaluation.merit - reference.merit).abs() < 1e-9,
                "case {case}"
            );
            assert!(reference.convex, "case {case}");
            assert!(cut::is_afu_legal(&dfg, &best.cut), "case {case}");
            assert!(best.evaluation.inputs <= 4, "case {case}");
            assert!(best.evaluation.outputs <= 2, "case {case}");
        }
    }
}

/// IN/OUT counts and convexity of arbitrary subsets are internally consistent with their
/// definitions.
#[test]
fn cut_measures_are_consistent() {
    for case in 0..48 {
        let dfg = medium_graph(case);
        let n = dfg.node_count();
        let mut rng = SmallRng::seed_from_u64(0x5e7 ^ case);
        let subset_len = rng.gen_range(0..n.max(1));
        let subset: Vec<usize> = (0..subset_len).map(|_| rng.gen_range(0..n)).collect();
        let cut_set = CutSet::from_nodes(&dfg, subset.iter().map(|&i| NodeId::new(i)));
        let inputs = cut::input_count(&dfg, &cut_set);
        let outputs = cut::output_count(&dfg, &cut_set);
        // Sources are distinct, so they can never exceed the total operand count.
        let operand_count: usize = cut_set.iter().map(|id| dfg.node(id).operands.len()).sum();
        assert!(inputs <= operand_count.max(1), "case {case}");
        assert!(outputs <= cut_set.len(), "case {case}");
        // A singleton (or empty) cut is always convex.
        if cut_set.len() <= 1 {
            assert!(cut::is_convex(&dfg, &cut_set), "case {case}");
        }
        // Convexity is monotone under taking the "downstream closure": adding every node
        // reachable between two members must restore convexity.
        if !cut::is_convex(&dfg, &cut_set) {
            let mut closure = cut_set.clone();
            for a in cut_set.iter() {
                for b in cut_set.iter() {
                    for mid in dfg.node_ids() {
                        if topo::reaches(&dfg, a, mid) && topo::reaches(&dfg, mid, b) {
                            closure.insert(mid);
                        }
                    }
                }
            }
            assert!(cut::is_convex(&dfg, &closure), "case {case}");
        }
    }
}

/// The consumers-first ordering used by the search is a valid reverse topological order
/// for every generated graph.
#[test]
fn consumers_first_order_is_valid() {
    for case in 0..48 {
        let dfg = medium_graph(case);
        let order = topo::consumers_first(&dfg);
        assert!(topo::is_consumers_first(&dfg, &order), "case {case}");
        let forward = topo::producers_first(&dfg);
        assert!(topo::is_producers_first(&dfg, &forward), "case {case}");
    }
}

/// MaxMISO produces a partition of the legal nodes into convex single-output subgraphs.
#[test]
fn maxmiso_partitions_legal_nodes() {
    for case in 0..48 {
        let dfg = medium_graph(case);
        let groups = MaxMiso::partition(&dfg);
        let mut covered = vec![false; dfg.node_count()];
        for group in &groups {
            assert!(!group.is_empty(), "case {case}");
            assert!(cut::is_convex(&dfg, group), "case {case}");
            assert!(cut::is_afu_legal(&dfg, group), "case {case}");
            // Every MaxMISO has a single output; groups rooted at dead code (a value that
            // is never consumed, which real compilers would have removed) have none.
            assert!(cut::output_count(&dfg, group) <= 1, "case {case}");
            for id in group.iter() {
                assert!(!covered[id.index()], "case {case}");
                covered[id.index()] = true;
            }
        }
        for (id, node) in dfg.iter_nodes() {
            let should_be_covered = !node.is_forbidden_in_afu()
                && (node.opcode.has_result()
                    && (dfg.is_output_source(id) || !dfg.consumers(id).is_empty())
                    || node.opcode.has_side_effect());
            if !node.is_forbidden_in_afu() && should_be_covered {
                assert!(covered[id.index()], "case {case}: node {id} not covered");
            }
        }
    }
}

/// Clubbing clusters always satisfy the port constraints they were built under.
#[test]
fn clubbing_clusters_respect_their_constraints() {
    let model = DefaultCostModel::new();
    for case in 0..48 {
        let dfg = medium_graph(case);
        let constraints = Constraints::new(3, 2);
        for cluster in Clubbing::cluster(&dfg, constraints) {
            assert!(cut::is_convex(&dfg, &cluster), "case {case}");
            assert!(cut::is_afu_legal(&dfg, &cluster), "case {case}");
            assert!(
                constraints.ports_ok(
                    cut::input_count(&dfg, &cluster),
                    cut::output_count(&dfg, &cluster)
                ),
                "case {case}"
            );
        }
        for candidate in Clubbing::new().candidates(&dfg, constraints, &model) {
            assert!(candidate.evaluation.merit > 0.0, "case {case}");
        }
    }
}

/// Collapsing the best identified cut into an AFU preserves the observable behaviour of
/// memory-free graphs under random input values.
#[test]
fn collapsing_preserves_semantics() {
    let model = DefaultCostModel::new();
    for case in 0..48 {
        let mut rng = SmallRng::seed_from_u64(0xc0 ^ case);
        let config = RandomDfgConfig {
            nodes: rng.gen_range(3usize..16),
            inputs: 3,
            outputs: 2,
            memory_fraction: 0.0,
            ..RandomDfgConfig::default()
        };
        let dfg = random_dfg(&config, rng.gen());
        let values: Vec<i32> = (0..3).map(|_| rng.gen_range(-1000i32..1000)).collect();
        let outcome = identify_single_cut(&dfg, Constraints::new(4, 2), &model);
        let Some(best) = outcome.best else { continue };
        let result = ise::core::collapse::collapse_cut(&dfg, &best.cut, 0, "prop_afu");
        assert!(result.rewritten.validate().is_ok(), "case {case}");
        assert!(result.afu_graph.validate().is_ok(), "case {case}");
        let spec = ise::ir::AfuSpec {
            id: 0,
            name: "prop_afu".into(),
            graph: result.afu_graph.clone(),
        };
        let bindings: BTreeMap<String, i32> = dfg
            .iter_inputs()
            .enumerate()
            .map(|(i, (_, var))| (var.name.clone(), values[i % values.len()]))
            .collect();
        let before = Evaluator::new().eval_block(&dfg, &bindings);
        let after = Evaluator::with_afus(vec![spec]).eval_block(&result.rewritten, &bindings);
        match (before, after) {
            (Ok(before), Ok(after)) => assert_eq!(before.outputs, after.outputs, "case {case}"),
            (Err(_), Err(_)) => {}
            (before, after) => {
                panic!("case {case}: one execution failed: before={before:?} after={after:?}")
            }
        }
    }
}

/// Constant folding followed by dead-code elimination preserves the observable behaviour
/// of memory-free graphs.
#[test]
fn cleanup_passes_preserve_semantics() {
    for case in 0..48 {
        let mut rng = SmallRng::seed_from_u64(0xd5e ^ case);
        let config = RandomDfgConfig {
            nodes: rng.gen_range(3usize..25),
            inputs: 3,
            outputs: 2,
            memory_fraction: 0.0,
            ..RandomDfgConfig::default()
        };
        let original = random_dfg(&config, rng.gen());
        let values: Vec<i32> = (0..3).map(|_| rng.gen_range(-500i32..500)).collect();
        let mut transformed = original.clone();
        fold_constants(&mut transformed);
        eliminate_dead_code(&mut transformed);
        assert!(transformed.validate().is_ok(), "case {case}");
        assert!(
            transformed.node_count() <= original.node_count(),
            "case {case}"
        );

        let bindings: BTreeMap<String, i32> = original
            .iter_inputs()
            .enumerate()
            .map(|(i, (_, var))| (var.name.clone(), values[i % values.len()]))
            .collect();
        let before = Evaluator::new().eval_block(&original, &bindings);
        let after = Evaluator::new().eval_block(&transformed, &bindings);
        match (before, after) {
            (Ok(before), Ok(after)) => assert_eq!(before.outputs, after.outputs, "case {case}"),
            (Err(_), Err(_)) => {}
            (before, after) => {
                panic!("case {case}: one execution failed: before={before:?} after={after:?}")
            }
        }
    }
}

/// Tightening a constraint can never increase the achievable merit.
#[test]
fn merit_is_monotone_in_the_constraints() {
    let model = DefaultCostModel::new();
    for case in 0..48 {
        let dfg = medium_graph(case);
        let tight = identify_single_cut(&dfg, Constraints::new(2, 1), &model).best_merit();
        let medium = identify_single_cut(&dfg, Constraints::new(4, 2), &model).best_merit();
        let loose = identify_single_cut(&dfg, Constraints::new(8, 4), &model).best_merit();
        assert!(tight <= medium + 1e-9, "case {case}");
        assert!(medium <= loose + 1e-9, "case {case}");
    }
}
