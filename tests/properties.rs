//! Property-based tests over randomly generated dataflow graphs.
//!
//! These tests tie the fast, incremental implementations used by the search algorithm to
//! the straightforward reference implementations, and check the structural invariants of
//! the identification, selection, collapsing and clean-up components on thousands of
//! machine-generated graphs.

use std::collections::BTreeMap;

use proptest::prelude::*;

use ise::baselines::{Clubbing, IdentificationAlgorithm, MaxMiso};
use ise::core::cut::{self, CutSet};
use ise::core::{exhaustive, identify_single_cut, Constraints};
use ise::hw::DefaultCostModel;
use ise::ir::interp::Evaluator;
use ise::ir::{topo, Dfg, NodeId};
use ise::passes::{eliminate_dead_code, fold_constants};
use ise::workloads::random::{random_dfg, RandomDfgConfig};

/// Strategy: a small random graph described by (node count, seed, memory-free flag).
fn small_graph() -> impl Strategy<Value = Dfg> {
    (2usize..10, any::<u64>(), proptest::bool::ANY).prop_map(|(nodes, seed, pure)| {
        let config = RandomDfgConfig {
            nodes,
            inputs: 3,
            outputs: 2,
            memory_fraction: if pure { 0.0 } else { 0.15 },
            ..RandomDfgConfig::default()
        };
        random_dfg(&config, seed)
    })
}

/// Strategy: a medium graph (up to ~40 nodes) for invariants that do not need the
/// exhaustive oracle.
fn medium_graph() -> impl Strategy<Value = Dfg> {
    (5usize..40, any::<u64>()).prop_map(|(nodes, seed)| {
        random_dfg(&RandomDfgConfig::with_nodes(nodes), seed)
    })
}

/// Strategy: an arbitrary subset of a graph's nodes.
fn graph_and_subset() -> impl Strategy<Value = (Dfg, Vec<usize>)> {
    medium_graph().prop_flat_map(|dfg| {
        let n = dfg.node_count();
        (Just(dfg), proptest::collection::vec(0..n, 0..n.max(1)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pruned branch-and-bound search finds exactly the same best merit as brute
    /// force enumeration of all 2^N cuts, under several port configurations.
    #[test]
    fn search_matches_exhaustive_oracle(dfg in small_graph()) {
        let model = DefaultCostModel::new();
        for constraints in [
            Constraints::new(2, 1),
            Constraints::new(3, 2),
            Constraints::new(8, 4),
        ] {
            let fast = identify_single_cut(&dfg, constraints, &model);
            let oracle = exhaustive::best_cut_exhaustive(&dfg, constraints, &model);
            let oracle_merit = oracle.best.as_ref().map_or(0.0, |b| b.evaluation.merit);
            prop_assert!(
                (fast.best_merit() - oracle_merit).abs() < 1e-9,
                "constraints {constraints}: fast {} vs oracle {}",
                fast.best_merit(),
                oracle_merit
            );
        }
    }

    /// The incremental evaluation carried along the search equals the from-scratch
    /// reference evaluation of the returned cut.
    #[test]
    fn incremental_evaluation_matches_reference(dfg in medium_graph()) {
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&dfg, Constraints::new(4, 2), &model);
        if let Some(best) = outcome.best {
            let reference = cut::evaluate(&dfg, &best.cut, &model);
            prop_assert_eq!(best.evaluation.inputs, reference.inputs);
            prop_assert_eq!(best.evaluation.outputs, reference.outputs);
            prop_assert_eq!(best.evaluation.software_cycles, reference.software_cycles);
            prop_assert!(
                (best.evaluation.hardware_critical_path - reference.hardware_critical_path).abs()
                    < 1e-9
            );
            prop_assert!((best.evaluation.merit - reference.merit).abs() < 1e-9);
            prop_assert!(reference.convex);
            prop_assert!(cut::is_afu_legal(&dfg, &best.cut));
            prop_assert!(best.evaluation.inputs <= 4);
            prop_assert!(best.evaluation.outputs <= 2);
        }
    }

    /// IN/OUT counts and convexity of arbitrary subsets are internally consistent with
    /// their definitions.
    #[test]
    fn cut_measures_are_consistent((dfg, subset) in graph_and_subset()) {
        let cut_set = CutSet::from_nodes(&dfg, subset.iter().map(|&i| NodeId::new(i)));
        let inputs = cut::input_count(&dfg, &cut_set);
        let outputs = cut::output_count(&dfg, &cut_set);
        // Sources are distinct, so they can never exceed the total operand count.
        let operand_count: usize = cut_set
            .iter()
            .map(|id| dfg.node(id).operands.len())
            .sum();
        prop_assert!(inputs <= operand_count.max(1));
        prop_assert!(outputs <= cut_set.len());
        // A singleton cut is always convex; the full legal node set loses convexity only
        // if a forbidden node sits between two legal nodes.
        if cut_set.len() <= 1 {
            prop_assert!(cut::is_convex(&dfg, &cut_set));
        }
        // Convexity is monotone under taking the "downstream closure": adding every node
        // reachable between two members must restore convexity.
        if !cut::is_convex(&dfg, &cut_set) {
            let mut closure = cut_set.clone();
            for a in cut_set.iter() {
                for b in cut_set.iter() {
                    for mid in dfg.node_ids() {
                        if topo::reaches(&dfg, a, mid) && topo::reaches(&dfg, mid, b) {
                            closure.insert(mid);
                        }
                    }
                }
            }
            prop_assert!(cut::is_convex(&dfg, &closure));
        }
    }

    /// The consumers-first ordering used by the search is a valid reverse topological
    /// order for every generated graph.
    #[test]
    fn consumers_first_order_is_valid(dfg in medium_graph()) {
        let order = topo::consumers_first(&dfg);
        prop_assert!(topo::is_consumers_first(&dfg, &order));
        let forward = topo::producers_first(&dfg);
        prop_assert!(topo::is_producers_first(&dfg, &forward));
    }

    /// MaxMISO produces a partition of the legal nodes into convex single-output
    /// subgraphs.
    #[test]
    fn maxmiso_partitions_legal_nodes(dfg in medium_graph()) {
        let groups = MaxMiso::partition(&dfg);
        let mut covered = vec![false; dfg.node_count()];
        for group in &groups {
            prop_assert!(!group.is_empty());
            prop_assert!(cut::is_convex(&dfg, group));
            prop_assert!(cut::is_afu_legal(&dfg, group));
            // Every MaxMISO has a single output; groups rooted at dead code (a value that
            // is never consumed, which real compilers would have removed) have none.
            prop_assert!(cut::output_count(&dfg, group) <= 1);
            for id in group.iter() {
                prop_assert!(!covered[id.index()]);
                covered[id.index()] = true;
            }
        }
        for (id, node) in dfg.iter_nodes() {
            let should_be_covered = !node.is_forbidden_in_afu()
                && (node.opcode.has_result()
                    && (dfg.is_output_source(id) || !dfg.consumers(id).is_empty())
                    || node.opcode.has_side_effect());
            if !node.is_forbidden_in_afu() && should_be_covered {
                prop_assert!(covered[id.index()], "node {id} not covered");
            }
        }
    }

    /// Clubbing clusters always satisfy the port constraints they were built under.
    #[test]
    fn clubbing_clusters_respect_their_constraints(dfg in medium_graph()) {
        let constraints = Constraints::new(3, 2);
        for cluster in Clubbing::cluster(&dfg, constraints) {
            prop_assert!(cut::is_convex(&dfg, &cluster));
            prop_assert!(cut::is_afu_legal(&dfg, &cluster));
            prop_assert!(constraints.ports_ok(
                cut::input_count(&dfg, &cluster),
                cut::output_count(&dfg, &cluster)
            ));
        }
        let model = DefaultCostModel::new();
        for candidate in Clubbing::new().candidates(&dfg, constraints, &model) {
            prop_assert!(candidate.evaluation.merit > 0.0);
        }
    }

    /// Collapsing the best identified cut into an AFU preserves the observable behaviour
    /// of memory-free graphs under random input values.
    #[test]
    fn collapsing_preserves_semantics(
        (nodes, seed) in (3usize..16, any::<u64>()),
        values in proptest::collection::vec(-1000i32..1000, 3),
    ) {
        let config = RandomDfgConfig {
            nodes,
            inputs: 3,
            outputs: 2,
            memory_fraction: 0.0,
            ..RandomDfgConfig::default()
        };
        let dfg = random_dfg(&config, seed);
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&dfg, Constraints::new(4, 2), &model);
        if let Some(best) = outcome.best {
            let result = ise::core::collapse::collapse_cut(&dfg, &best.cut, 0, "prop_afu");
            prop_assert!(result.rewritten.validate().is_ok());
            prop_assert!(result.afu_graph.validate().is_ok());
            let spec = ise::ir::AfuSpec { id: 0, name: "prop_afu".into(), graph: result.afu_graph.clone() };
            let bindings: BTreeMap<String, i32> = dfg
                .iter_inputs()
                .enumerate()
                .map(|(i, (_, var))| (var.name.clone(), values[i % values.len()]))
                .collect();
            let before = Evaluator::new().eval_block(&dfg, &bindings);
            let after = Evaluator::with_afus(vec![spec]).eval_block(&result.rewritten, &bindings);
            match (before, after) {
                (Ok(before), Ok(after)) => prop_assert_eq!(before.outputs, after.outputs),
                (Err(_), Err(_)) => {}
                (before, after) => prop_assert!(
                    false,
                    "one execution failed: before={before:?} after={after:?}"
                ),
            }
        }
    }

    /// Constant folding followed by dead-code elimination preserves the observable
    /// behaviour of memory-free graphs.
    #[test]
    fn cleanup_passes_preserve_semantics(
        (nodes, seed) in (3usize..25, any::<u64>()),
        values in proptest::collection::vec(-500i32..500, 3),
    ) {
        let config = RandomDfgConfig {
            nodes,
            inputs: 3,
            outputs: 2,
            memory_fraction: 0.0,
            ..RandomDfgConfig::default()
        };
        let original = random_dfg(&config, seed);
        let mut transformed = original.clone();
        fold_constants(&mut transformed);
        eliminate_dead_code(&mut transformed);
        prop_assert!(transformed.validate().is_ok());
        prop_assert!(transformed.node_count() <= original.node_count());

        let bindings: BTreeMap<String, i32> = original
            .iter_inputs()
            .enumerate()
            .map(|(i, (_, var))| (var.name.clone(), values[i % values.len()]))
            .collect();
        let before = Evaluator::new().eval_block(&original, &bindings);
        let after = Evaluator::new().eval_block(&transformed, &bindings);
        match (before, after) {
            (Ok(before), Ok(after)) => prop_assert_eq!(before.outputs, after.outputs),
            (Err(_), Err(_)) => {}
            (before, after) => prop_assert!(
                false,
                "one execution failed: before={before:?} after={after:?}"
            ),
        }
    }

    /// Tightening a constraint can never increase the achievable merit.
    #[test]
    fn merit_is_monotone_in_the_constraints(dfg in medium_graph()) {
        let model = DefaultCostModel::new();
        let tight = identify_single_cut(&dfg, Constraints::new(2, 1), &model).best_merit();
        let medium = identify_single_cut(&dfg, Constraints::new(4, 2), &model).best_merit();
        let loose = identify_single_cut(&dfg, Constraints::new(8, 4), &model).best_merit();
        prop_assert!(tight <= medium + 1e-9);
        prop_assert!(medium <= loose + 1e-9);
    }
}
