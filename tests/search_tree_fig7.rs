//! Integration test reproducing the behaviour of Figs. 4, 5 and 7 of the paper: the
//! search tree over the 4-node example graph, with output-port and convexity pruning.

use ise::core::cut;
use ise::core::{exhaustive, identify_single_cut, Constraints, CutSet};
use ise::hw::DefaultCostModel;
use ise::ir::{Dfg, DfgBuilder, NodeId};

/// The example graph of Fig. 4: a multiply feeding a shift and an add, both feeding a
/// final add (graph node indices here are in def-before-use order, the reverse of the
/// paper's topological numbering).
fn fig4_graph() -> Dfg {
    let mut b = DfgBuilder::new("fig4");
    let x = b.input("x");
    let y = b.input("y");
    let mul = b.mul(x, y);
    let shr = b.lshr(mul, b.imm(2));
    let add1 = b.add(mul, y);
    let add0 = b.add(shr, add1);
    b.output("out", add0);
    b.finish()
}

#[test]
fn the_fig4_cut_is_nonconvex_and_therefore_illegal() {
    let g = fig4_graph();
    // The highlighted subgraph of Fig. 4: the multiply plus the final add, with the two
    // intermediate operations excluded.
    let illegal = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(3)]);
    assert!(!cut::is_convex(&g, &illegal));
    // Including either intermediate node alone is not enough; including both restores
    // convexity (the only ways to regain feasibility discussed in Section 6.1).
    let with_shr = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(1), NodeId::new(3)]);
    let with_add1 = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(2), NodeId::new(3)]);
    let with_both = CutSet::from_nodes(&g, g.node_ids());
    assert!(!cut::is_convex(&g, &with_shr));
    assert!(!cut::is_convex(&g, &with_add1));
    assert!(cut::is_convex(&g, &with_both));
}

#[test]
fn pruning_skips_part_of_the_sixteen_cut_search_space() {
    let g = fig4_graph();
    let model = DefaultCostModel::new();
    // Fig. 7 uses Nout = 1 (and no input constraint).
    let outcome = identify_single_cut(&g, Constraints::new(8, 1), &model);
    let stats = outcome.stats;
    let total_nonempty_cuts = 15u64; // 2^4 - 1
    assert!(stats.cuts_considered < total_nonempty_cuts);
    assert!(stats.cuts_considered >= stats.feasible_cuts);
    assert_eq!(
        stats.cuts_considered,
        stats.feasible_cuts
            + stats.pruned_output
            + stats.pruned_convexity
            + stats.pruned_node_budget
            + stats.pruned_bound
    );
    // At least one subtree was eliminated outright (cuts never even considered).
    assert!(total_nonempty_cuts - stats.cuts_considered >= 1);
    // Both kinds of pruning fire on this example.
    assert!(stats.pruned_output > 0);
}

#[test]
fn pruned_search_agrees_with_exhaustive_enumeration_on_the_example() {
    let g = fig4_graph();
    let model = DefaultCostModel::new();
    for constraints in [
        Constraints::new(8, 1),
        Constraints::new(2, 1),
        Constraints::new(2, 2),
        Constraints::new(1, 1),
    ] {
        let fast = identify_single_cut(&g, constraints, &model);
        let oracle = exhaustive::best_cut_exhaustive(&g, constraints, &model);
        assert_eq!(
            fast.best_merit(),
            oracle.best.as_ref().map_or(0.0, |b| b.evaluation.merit),
            "under {constraints}"
        );
        // When both find a cut, the cut itself must satisfy every constraint.
        if let Some(best) = fast.best {
            assert!(best.evaluation.inputs <= constraints.max_inputs);
            assert!(best.evaluation.outputs <= constraints.max_outputs);
            assert!(best.evaluation.convex);
            assert!(cut::is_afu_legal(&g, &best.cut));
        }
    }
}

#[test]
fn feasible_cut_count_matches_the_oracle_for_nout_one() {
    let g = fig4_graph();
    let model = DefaultCostModel::new();
    // Count all cuts that satisfy Nout = 1 + convexity (any number of inputs) by brute
    // force, and check the search's feasible counter does not exceed it (the search only
    // visits a subset of the distinct cuts thanks to subtree elimination).
    let constraints = Constraints::new(8, 1);
    let oracle = exhaustive::best_cut_exhaustive(&g, constraints, &model);
    let fast = identify_single_cut(&g, constraints, &model);
    assert!(fast.stats.feasible_cuts <= oracle.stats.feasible_cuts);
    assert!(oracle.stats.feasible_cuts > 0);
}
