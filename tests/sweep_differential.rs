//! The CutPool exactness harness: pool-backed sweeps must be **byte-identical** —
//! serialised [`SelectionResult`] and [`SpeedupReport`], including the
//! `identifier_calls` / `cuts_considered` accounting — to direct per-pair runs, across
//! every bundled kernel and seeded random DAGs, with exclusion-heavy iterative rounds.
//!
//! This is the test the whole subsystem is built against: the pool is a pure
//! memoisation layer, and any observable divergence is a bug by definition.

use ise_core::engine::SingleCut;
use ise_core::{
    select_optimal, select_program, Constraints, DriverOptions, SelectionOptions, SelectionResult,
    SweepPlanner,
};
use ise_hw::{DefaultCostModel, SoftwareLatencyModel};
use ise_ir::Program;
use ise_workloads::{random, suite};

fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde::json::to_string(value)
}

/// Asserts one pool-backed selection equals its direct reference, bytes and all.
fn assert_identical(
    program: &Program,
    pair: &Constraints,
    pooled: &SelectionResult,
    direct: &SelectionResult,
) {
    assert_eq!(
        pooled.identifier_calls,
        direct.identifier_calls,
        "{}: identifier_calls accounting diverged under {pair}",
        program.name()
    );
    assert_eq!(
        to_json(pooled),
        to_json(direct),
        "{}: serialised SelectionResult diverged under {pair}",
        program.name()
    );
    let software = SoftwareLatencyModel::new();
    assert_eq!(
        to_json(&pooled.speedup_report(program, &software)),
        to_json(&direct.speedup_report(program, &software)),
        "{}: serialised SpeedupReport diverged under {pair}",
        program.name()
    );
}

/// Every bundled kernel, the full paper sweep, iterative selection with the default
/// figure exploration budget (so the largest blocks exercise the exhausted-fill
/// fallback while small blocks are genuinely pooled).
#[test]
fn bundled_kernels_pool_vs_direct_iterative() {
    let model = DefaultCostModel::new();
    let pairs = Constraints::paper_sweep();
    let budget = Some(20_000);
    let options = DriverOptions::new(8);
    let mut pooled_physical = 0;
    let mut pooled_logical = 0;
    for program in suite::mediabench_like() {
        let mut planner =
            SweepPlanner::new(&program, &model, options, &pairs).with_exploration_budget(budget);
        let pooled = planner.run_single_cut(&pairs);
        let identifier = SingleCut::new().with_exploration_budget(budget);
        for (pair, pooled) in pairs.iter().zip(&pooled) {
            let direct = select_program(&program, &identifier, *pair, &model, options);
            assert_identical(&program, pair, pooled, &direct);
        }
        let stats = planner.stats();
        pooled_physical += stats.physical_identifier_calls();
        pooled_logical += stats.logical_identifier_calls;
    }
    // Across the suite, memoisation must have saved real enumeration work.
    assert!(
        pooled_physical < pooled_logical,
        "pool saved nothing: {pooled_physical} physical vs {pooled_logical} logical calls"
    );
}

/// Seeded random DAG programs, unbudgeted, with an exclusion-heavy instruction budget
/// (16 instructions force many iterative rounds, i.e. many distinct exclusion states).
#[test]
fn random_dags_pool_vs_direct_with_heavy_exclusions() {
    let model = DefaultCostModel::new();
    let pairs = Constraints::paper_sweep();
    let options = DriverOptions::new(16);
    for seed in 0..6u64 {
        let mut program = Program::new(format!("rand{seed}"));
        for block in 0..3u64 {
            let config = random::RandomDfgConfig {
                nodes: 12 + (seed as usize % 3) * 2,
                ..random::RandomDfgConfig::default()
            };
            let mut dfg = random::random_dfg(&config, seed * 101 + block);
            dfg.set_exec_count(100 * (block + 1));
            program.add_block(dfg);
        }
        let mut planner = SweepPlanner::new(&program, &model, options, &pairs);
        let pooled = planner.run_single_cut(&pairs);
        for (pair, pooled) in pairs.iter().zip(&pooled) {
            let direct = select_program(&program, &SingleCut::new(), *pair, &model, options);
            assert_identical(&program, pair, pooled, &direct);
        }
        assert_eq!(planner.stats().exhausted_fills, 0, "seed {seed}");
        assert!(
            planner.stats().physical_identifier_calls() < planner.stats().logical_identifier_calls,
            "seed {seed}"
        );
    }
}

/// The optimal (multiple-cut) strategy: pool-backed tuples versus direct
/// `select_optimal`, on small random programs where the search completes exactly.
#[test]
fn random_dags_pool_vs_direct_optimal() {
    let model = DefaultCostModel::new();
    let pairs = vec![
        Constraints::new(2, 1),
        Constraints::new(4, 2),
        Constraints::new(4, 3),
        Constraints::new(8, 4),
    ];
    let options = DriverOptions::new(4);
    for seed in 0..4u64 {
        let mut program = Program::new(format!("opt{seed}"));
        let config = random::RandomDfgConfig {
            nodes: 10,
            ..random::RandomDfgConfig::default()
        };
        let mut dfg = random::random_dfg(&config, 900 + seed);
        dfg.set_exec_count(500);
        program.add_block(dfg);
        let mut dfg = random::random_dfg(&config, 1900 + seed);
        dfg.set_exec_count(50);
        program.add_block(dfg);

        let mut planner = SweepPlanner::new(&program, &model, options, &pairs);
        let pooled = planner.run_optimal(&pairs);
        for (pair, pooled) in pairs.iter().zip(&pooled) {
            let direct = select_optimal(&program, *pair, &model, SelectionOptions::new(4));
            assert_identical(&program, pair, pooled, &direct);
        }
        assert!(
            planner.stats().physical_identifier_calls() < planner.stats().logical_identifier_calls,
            "seed {seed}"
        );
    }
}

/// The API-level sweep (what the CLI serves) equals per-pair sessions for a workload
/// with both a tight and the loosest paper pair, in both pool and direct mode.
#[test]
fn api_sweep_is_mode_independent() {
    use ise_api::{Algorithm, IseRequest, ProgramSource, Session, SweepRequest};
    let base = IseRequest::new(
        Algorithm::SingleCut,
        ProgramSource::Workload("crc32".into()),
    );
    let sweep = SweepRequest::new(base.clone(), Constraints::paper_sweep());
    let (pooled, stats) = Session::execute_sweep(&sweep).expect("pool-backed sweep");
    let mut direct_request = base;
    direct_request.options.cut_pool = false;
    let direct = SweepRequest::new(direct_request, Constraints::paper_sweep());
    let (direct, direct_stats) = Session::execute_sweep(&direct).expect("direct sweep");
    assert_eq!(ise_api::to_json(&pooled), ise_api::to_json(&direct));
    assert!(stats.physical_identifier_calls() < stats.logical_identifier_calls);
    assert_eq!(
        direct_stats.physical_identifier_calls(),
        direct_stats.logical_identifier_calls
    );
}
