//! # ise — automatic application-specific instruction-set extensions
//!
//! A faithful, self-contained reproduction of *Atasu, Pozzi and Ienne, "Automatic
//! Application-Specific Instruction-Set Extensions under Microarchitectural Constraints"*
//! (DAC 2003 / International Journal of Parallel Programming 31(6), 2003).
//!
//! This facade crate re-exports the workspace crates under a single name:
//!
//! * [`ir`] — dataflow/control-flow IR, builder, interpreter, Graphviz export;
//! * [`passes`] — if-conversion, dead-code elimination, constant folding, unrolling;
//! * [`hw`] — software latency, hardware delay and area models, merit functions;
//! * [`core`] — cut identification (single and multiple) and instruction selection
//!   (optimal and iterative), plus cut collapsing into AFU instructions;
//! * [`baselines`] — the Clubbing and MaxMISO comparison algorithms;
//! * [`workloads`] — MediaBench-like kernels and random graph generation.
//!
//! # Quickstart
//!
//! All identification algorithms — the paper's exact searches and the prior-art
//! baselines — are reachable by name through the engine registry and driven by the
//! same `rayon`-parallel program driver:
//!
//! ```
//! use ise::core::engine::{select_program, DriverOptions};
//! use ise::hw::{DefaultCostModel, SoftwareLatencyModel};
//! use ise::workloads::adpcm;
//!
//! // Identify up to four special instructions for the ADPCM decoder with a register
//! // file offering 4 read ports and 2 write ports.
//! let program = adpcm::decode_program();
//! let model = DefaultCostModel::new();
//! let identifier = ise::full_registry().create("single-cut").unwrap();
//! let selection = select_program(
//!     &program,
//!     identifier.as_ref(),
//!     ise::core::Constraints::new(4, 2),
//!     &model,
//!     DriverOptions::new(4),
//! );
//! assert!(!selection.is_empty());
//! let report = selection.speedup_report(&program, &SoftwareLatencyModel::new());
//! assert!(report.speedup > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Baseline identification algorithms (Clubbing, MaxMISO, single-node).
pub use ise_baselines as baselines;
/// The registry of all six bundled identification algorithms, addressable by name
/// (`"single-cut"`, `"multicut"`, `"exhaustive"`, `"clubbing"`, `"maxmiso"`,
/// `"single-node"`).
pub use ise_baselines::{full_registry, register_baselines};
/// Identification and selection algorithms — the paper's contribution.
pub use ise_core as core;
/// Cost models: software latency, hardware delay, area, speed-up accounting.
pub use ise_hw as hw;
/// Dataflow and control-flow intermediate representation.
pub use ise_ir as ir;
/// IR transformation passes (if-conversion, DCE, constant folding, unrolling).
pub use ise_passes as passes;
/// Benchmark kernels and random graph generators.
pub use ise_workloads as workloads;
