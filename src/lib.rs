//! # ise — automatic application-specific instruction-set extensions
//!
//! A faithful, self-contained reproduction of *Atasu, Pozzi and Ienne, "Automatic
//! Application-Specific Instruction-Set Extensions under Microarchitectural Constraints"*
//! (DAC 2003 / International Journal of Parallel Programming 31(6), 2003), grown into a
//! service-shaped stack.
//!
//! The public surface is the **job API** of the [`api`] layer: configure a [`Session`]
//! once, run it against any number of programs, and get back fallible, serialisable
//! responses. Everything a session does can also be expressed as data — an
//! [`IseRequest`] — executed from a JSON file by the `ise-cli` binary or fanned out in
//! parallel by the [`BatchService`].
//!
//! The underlying layers remain available for direct use:
//!
//! * [`ir`] — dataflow/control-flow IR, builder, interpreter, Graphviz export;
//! * [`passes`] — if-conversion, dead-code elimination, constant folding, unrolling;
//! * [`hw`] — software latency, hardware delay and area models, merit functions;
//! * [`core`] — cut identification/selection, the engine registry and program driver,
//!   and the [`IseError`] hierarchy;
//! * [`baselines`] — the Clubbing and MaxMISO comparison algorithms;
//! * [`workloads`] — MediaBench-like kernels and random graph generation;
//! * [`frontend`] — the dependency-free textual LLVM IR (`.ll`) parser and lowering.
//!
//! # Quickstart
//!
//! ```
//! use ise::{Algorithm, SessionBuilder};
//! use ise::core::Constraints;
//! use ise::workloads::adpcm;
//!
//! // Identify up to four special instructions for the ADPCM decoder with a register
//! // file offering 4 read ports and 2 write ports.
//! let session = SessionBuilder::new()
//!     .algorithm(Algorithm::SingleCut)
//!     .constraints(Constraints::new(4, 2))
//!     .max_instructions(4)
//!     .build()?;
//! let response = session.run(&adpcm::decode_program())?;
//! assert!(!response.selection.is_empty());
//! assert!(response.report.speedup > 1.0);
//!
//! // Every payload crosses a process boundary as JSON, deterministically.
//! let wire = ise::api::to_json(&response);
//! assert_eq!(ise::api::to_json::<ise::IseResponse>(
//!     &ise::api::from_json(&wire)?), wire);
//! # Ok::<(), ise::IseError>(())
//! ```
//!
//! Algorithms can equally be addressed by registry name
//! (`.algorithm_name("maxmiso")`), and an unknown name degrades into an
//! [`IseError::UnknownAlgorithm`] that lists the registered algorithms — nothing in
//! the request path panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The typed job API: sessions, requests, batches, JSON serialisation.
pub use ise_api as api;
/// Baseline identification algorithms (Clubbing, MaxMISO, single-node).
pub use ise_baselines as baselines;
/// Identification and selection algorithms — the paper's contribution.
pub use ise_core as core;
/// Textual LLVM IR (`.ll`) front-end: lexer, parser, printer, lowering.
pub use ise_frontend as frontend;
/// Cost models: software latency, hardware delay, area, speed-up accounting.
pub use ise_hw as hw;
/// Dataflow and control-flow intermediate representation.
pub use ise_ir as ir;
/// IR transformation passes (if-conversion, DCE, constant folding, unrolling).
pub use ise_passes as passes;
/// Benchmark kernels and random graph generators.
pub use ise_workloads as workloads;

pub use ise_api::{
    Algorithm, BatchService, IseError, IseRequest, IseResponse, Pass, ProgramSource, Session,
    SessionBuilder,
};

/// The registry of all six bundled identification algorithms, addressable by name
/// (`"single-cut"`, `"multicut"`, `"exhaustive"`, `"clubbing"`, `"maxmiso"`,
/// `"single-node"`).
#[deprecated(
    since = "0.2.0",
    note = "configure a session with `ise::SessionBuilder` (or use \
            `ise::baselines::full_registry()` for direct engine access)"
)]
#[must_use]
pub fn full_registry() -> ise_core::engine::IdentifierRegistry {
    ise_baselines::full_registry()
}

/// Registers the three baseline algorithms in an existing registry.
#[deprecated(
    since = "0.2.0",
    note = "configure a session with `ise::SessionBuilder` (or use \
            `ise::baselines::register_baselines` for direct engine access)"
)]
pub fn register_baselines(registry: &mut ise_core::engine::IdentifierRegistry) {
    ise_baselines::register_baselines(registry);
}

/// Selects up to `options.max_instructions` instructions across `program` using
/// `identifier`, with the per-block identification fanned out in parallel.
#[deprecated(
    since = "0.2.0",
    note = "build a session with `ise::SessionBuilder` and call `Session::run`, \
            which adds validation, pass pipelines and serialisable responses (or \
            use `ise::core::engine::select_program` for direct engine access)"
)]
#[must_use]
pub fn select_program(
    program: &ise_ir::Program,
    identifier: &dyn ise_core::engine::Identifier,
    constraints: ise_core::Constraints,
    model: &dyn ise_hw::CostModel,
    options: ise_core::DriverOptions,
) -> ise_core::SelectionResult {
    ise_core::engine::select_program(program, identifier, constraints, model, options)
}

#[cfg(test)]
mod tests {
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_new_stack() {
        use ise_core::engine::DriverOptions;
        use ise_hw::DefaultCostModel;

        let registry = crate::full_registry();
        assert_eq!(registry.names().len(), 6);
        let identifier = registry.create("single-cut").expect("bundled algorithm");
        let program = ise_workloads::adpcm::decode_program();
        let model = DefaultCostModel::new();
        let legacy = crate::select_program(
            &program,
            identifier.as_ref(),
            ise_core::Constraints::new(4, 2),
            &model,
            DriverOptions::new(4),
        );

        let session = crate::SessionBuilder::new()
            .constraints(ise_core::Constraints::new(4, 2))
            .max_instructions(4)
            .build()
            .expect("valid configuration");
        let response = session.run(&program).expect("valid program");
        assert_eq!(response.selection, legacy);
    }
}
