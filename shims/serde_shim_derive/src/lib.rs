//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, so the real `serde` cannot be
//! vendored. The workspace only uses `#[derive(serde::Serialize, serde::Deserialize)]`
//! as forward-looking metadata — nothing serialises yet — so these derives simply emit
//! empty implementations of the marker traits defined by the sibling `serde` shim.
//! Swapping the shim for the real crates requires no source changes.
//!
//! Limitations (checked at expansion time): the derived type must not have generic
//! parameters. That covers every type in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the struct or enum a derive was attached to.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde shim: expected a type name, found {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    assert!(
                        p.as_char() != '<',
                        "serde shim: generic type `{name}` is not supported by the \
                         offline derive stand-in"
                    );
                }
                return name;
            }
        }
    }
    panic!("serde shim: no struct/enum found in derive input");
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
