//! Offline stand-in for `serde_derive`.
//!
//! This build environment has no access to crates.io, so the real `serde` cannot
//! be vendored. These derives generate working field-by-field implementations of
//! the value-tree [`Serialize`]/[`Deserialize`] traits defined by the sibling
//! `serde` shim, using only the compiler's built-in `proc_macro` API (no `syn`,
//! no `quote`):
//!
//! * named structs map to JSON objects (field declaration order preserved);
//! * newtype structs serialise transparently as their inner value, larger tuple
//!   structs as arrays;
//! * enums follow serde's externally-tagged convention: unit variants become
//!   `"Variant"`, newtype variants `{"Variant": inner}`, tuple variants
//!   `{"Variant": [..]}` and struct variants `{"Variant": {..}}`.
//!
//! Limitations (checked at expansion time): the derived type must not have
//! generic parameters. That covers every type in this workspace.
//!
//! [`Serialize`]: ../serde/trait.Serialize.html
//! [`Deserialize`]: ../serde/trait.Deserialize.html

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Shape of the type a derive was attached to.
enum Body {
    /// `struct S;`
    UnitStruct,
    /// `struct S(A, B);` with the field count.
    TupleStruct(usize),
    /// `struct S { a: A, b: B }` with the field names.
    NamedStruct(Vec<String>),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attribute pairs at the current position.
fn skip_attributes(iter: &mut TokenIter) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        iter.next(); // the bracketed attribute group
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)`, … at the current position.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

/// Parses the field names of a `{ ... }` struct body or struct variant.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(name) = tree else {
            panic!("serde shim: expected a field name, found {tree}");
        };
        fields.push(name.to_string());
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim: expected `:` after field name, found {other:?}"),
        }
        // Skip the type: consume until a comma outside all `<...>` nesting.
        let mut angle_depth = 0i32;
        for tree in iter.by_ref() {
            if let TokenTree::Punct(p) = &tree {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Counts the fields of a `( ... )` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut in_field = false;
    let mut after_attr_marker = false;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    angle_depth += 1;
                    in_field = true;
                }
                '>' => {
                    angle_depth -= 1;
                    in_field = true;
                }
                ',' if angle_depth == 0 => {
                    if in_field {
                        count += 1;
                    }
                    in_field = false;
                }
                '#' => after_attr_marker = true,
                _ => in_field = true,
            },
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Bracket && after_attr_marker && !in_field => {}
            _ => in_field = true,
        }
        if !matches!(&tree, TokenTree::Punct(p) if p.as_char() == '#') {
            after_attr_marker = false;
        }
    }
    if in_field {
        count += 1;
    }
    count
}

/// Parses the variants of an `enum { ... }` body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        let Some(tree) = iter.next() else { break };
        let TokenTree::Ident(name) = tree else {
            panic!("serde shim: expected a variant name, found {tree}");
        };
        let mut kind = VariantKind::Unit;
        if let Some(TokenTree::Group(group)) = iter.peek() {
            match group.delimiter() {
                Delimiter::Parenthesis => {
                    kind = VariantKind::Tuple(count_tuple_fields(group.stream()));
                }
                Delimiter::Brace => {
                    kind = VariantKind::Named(parse_named_fields(group.stream()));
                }
                _ => {}
            }
            if !matches!(kind, VariantKind::Unit) {
                iter.next();
            }
        }
        // Skip an optional `= discriminant`.
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            iter.next();
            while let Some(peeked) = iter.peek() {
                if matches!(peeked, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                iter.next();
            }
        }
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

/// Parses the derive input down to the type name and its body shape.
fn parse_type(input: TokenStream) -> (String, Body) {
    let mut iter = input.into_iter().peekable();
    while let Some(tree) = iter.next() {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(ident) => {
                let keyword = ident.to_string();
                if keyword != "struct" && keyword != "enum" {
                    if keyword == "union" {
                        panic!("serde shim: unions cannot be derived");
                    }
                    continue;
                }
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("serde shim: expected a type name, found {other:?}"),
                };
                if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    panic!(
                        "serde shim: generic type `{name}` is not supported by the \
                         offline derive stand-in"
                    );
                }
                let body = match iter.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        if keyword == "enum" {
                            Body::Enum(parse_variants(g.stream()))
                        } else {
                            Body::NamedStruct(parse_named_fields(g.stream()))
                        }
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Body::TupleStruct(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
                    other => panic!("serde shim: unexpected token after `{name}`: {other:?}"),
                };
                return (name, body);
            }
            _ => {}
        }
    }
    panic!("serde shim: no struct/enum found in derive input");
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body_code} }}\n\
         }}\n"
    )
}

fn serialize_variant_arm(enum_name: &str, variant: &Variant) -> String {
    let v = &variant.name;
    match &variant.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{v} => \
             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{v}(__f0) => \
             ::serde::variant_value(\"{v}\", ::serde::Serialize::to_value(__f0)),"
        ),
        VariantKind::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: Vec<String> = binders
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b})"))
                .collect();
            format!(
                "{enum_name}::{v}({}) => ::serde::variant_value(\"{v}\", \
                 ::serde::Value::Array(::std::vec![{}])),",
                binders.join(", "),
                items.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{v} {{ {} }} => ::serde::variant_value(\"{v}\", \
                 ::serde::Value::Object(::std::vec![{}])),",
                fields.join(", "),
                entries.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

fn gen_deserialize(name: &str, body: &Body) -> String {
    let body_code = match body {
        Body::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Body::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = ::serde::expect_array(__value, \"{name}\", {n})?; \
                 ::std::result::Result::Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Body::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::expect_field(__fields, \"{f}\", \"{name}\")?"))
                .collect();
            format!(
                "{{ let __fields = ::serde::expect_object(__value, \"{name}\")?; \
                 ::std::result::Result::Ok({name} {{ {} }}) }}",
                inits.join(", ")
            )
        }
        Body::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body_code} }}\n\
         }}\n"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for variant in variants {
        let v = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                unit_arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                ));
            }
            VariantKind::Tuple(1) => {
                data_arms.push_str(&format!(
                    "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                     ::serde::Deserialize::from_value(__inner)?)),"
                ));
            }
            VariantKind::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                data_arms.push_str(&format!(
                    "\"{v}\" => {{ let __items = \
                     ::serde::expect_array(__inner, \"{name}::{v}\", {n})?; \
                     ::std::result::Result::Ok({name}::{v}({})) }},",
                    items.join(", ")
                ));
            }
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::expect_field(__variant_fields, \"{f}\", \
                             \"{name}::{v}\")?"
                        )
                    })
                    .collect();
                data_arms.push_str(&format!(
                    "\"{v}\" => {{ let __variant_fields = \
                     ::serde::expect_object(__inner, \"{name}::{v}\")?; \
                     ::std::result::Result::Ok({name}::{v} {{ {} }}) }},",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match __value {{\
             ::serde::Value::Str(__tag) => match __tag.as_str() {{\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                     ::serde::Error::unknown_variant(__other, \"{name}\")),\
             }},\
             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\
                 let (__tag, __inner) = &__entries[0];\
                 match __tag.as_str() {{\
                     {data_arms}\
                     __other => ::std::result::Result::Err(\
                         ::serde::Error::unknown_variant(__other, \"{name}\")),\
                 }}\
             }}\
             __other => ::std::result::Result::Err(::serde::Error::invalid_type(\
                 \"a `{name}` variant tag\", __other)),\
         }}"
    )
}

/// Derives the shim's value-tree `Serialize` for a concrete struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_type(input);
    gen_serialize(&name, &body)
        .parse()
        .expect("serde shim: generated Serialize impl must parse")
}

/// Derives the shim's value-tree `Deserialize` for a concrete struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_type(input);
    gen_deserialize(&name, &body)
        .parse()
        .expect("serde shim: generated Deserialize impl must parse")
}
