//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access. This shim accepts the subset of the
//! criterion 0.5 API used by the benches in `crates/bench/benches/` — groups,
//! `BenchmarkId`, `sample_size`, `bench_with_input`, `Bencher::iter` and the
//! `criterion_group!`/`criterion_main!` macros — and reports a coarse mean wall-clock
//! time per iteration. It has no warm-up, outlier rejection or statistics; it exists so
//! `cargo bench` compiles and produces indicative numbers offline. Replacing the shim
//! with the real `criterion` (same feature surface) requires no source changes.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        let per_iter = bencher
            .elapsed
            .checked_div(bencher.iterations.max(1) as u32)
            .unwrap_or(Duration::ZERO);
        println!(
            "  {}/{}: {:?}/iter over {} iters",
            self.name, id.label, per_iter, bencher.iterations
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times a closure over the configured number of iterations.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records total elapsed wall-clock time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a function that runs the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a bench binary built from groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_the_routine_the_requested_number_of_times() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 1), &(), |b, ()| {
            b.iter(|| {
                calls += 1;
                calls
            });
        });
        group.finish();
        assert_eq!(calls, 5);
    }
}
