//! Offline stand-in for `rand`.
//!
//! The build environment has no crates.io access. The workloads crate only needs a
//! seedable, reproducible generator with `gen`, `gen_range` and `gen_bool`, so this shim
//! implements the subset of the `rand` 0.8 API the workspace uses on top of SplitMix64.
//! Determinism per seed is all the experiments rely on; the exact stream differs from
//! the real `rand`, which only changes *which* random graphs are generated, not any
//! property being tested.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Minimal stand-in for `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Minimal stand-in for `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator ("Standard" distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one value from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Modulo bias is negligible for the tiny spans used here.
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, i64, i32);

/// Minimal stand-in for `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): full-period, passes BigCrush.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_and_floats_are_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            let i = rng.gen_range(-128i32..128);
            assert!((-128..128).contains(&i));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
