//! JSON text format over the [`crate::Value`] tree.
//!
//! The printer is deterministic: objects keep insertion order, integers print in
//! decimal, and floats use Rust's shortest round-trip formatting, so serialising
//! the same data twice yields byte-identical text. The parser is a conventional
//! recursive-descent JSON parser with a depth limit and full string-escape
//! handling (including `\uXXXX` surrogate pairs).

use crate::{DeserializeOwned, Error, Serialize, Value};

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// Serialises any [`Serialize`] type into its value tree.
#[must_use]
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs any [`DeserializeOwned`] type from a value tree.
///
/// # Errors
///
/// Returns an [`Error`] when the tree does not match the target type's shape.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialises a value as compact JSON text.
#[must_use]
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    out
}

/// Serialises a value as human-readable, two-space-indented JSON text.
#[must_use]
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    out
}

/// Parses JSON text and reconstructs a typed value.
///
/// # Errors
///
/// Returns an [`Error`] when the text is not valid JSON or does not match the
/// target type's shape.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    T::from_value(&parse(text)?)
}

/// Parses JSON text into a [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax error, with a byte offset.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::Uint(v) => out.push_str(&v.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_compact(out, item);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest representation that parses back to the same
        // f64 bit pattern, and is valid JSON for all finite values.
        out.push_str(&format!("{f:?}"));
    } else {
        // Non-finite floats are not representable in JSON; `Serialize for f64`
        // maps them to strings before printing, so this arm is only reachable
        // through a hand-built `Value::Float`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::custom(format!("{message} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Value::Null),
            Some(b't') if self.consume_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                c if c < 0x20 => return Err(self.error("unescaped control character")),
                _ => {
                    // Copy one UTF-8 scalar; the input is a &str, so boundaries exist.
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.error("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let Some(c) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let unit = self.parse_hex4()?;
                if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: must be followed by `\uXXXX` low surrogate.
                    if !self.consume_literal("\\u") {
                        return Err(self.error("unpaired surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(combined).ok_or_else(|| self.error("invalid code point"))?
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.error("unpaired surrogate"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.error("invalid code point"))?
                }
            }
            _ => return Err(self.error("invalid escape character")),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if digits.is_empty() {
                    return Err(self.error("invalid number"));
                }
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Int(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Uint(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "18446744073709551615"] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v), text, "{text}");
        }
        assert_eq!(parse("1.5").unwrap(), Value::Float(1.5));
        assert_eq!(to_string(&Value::Float(1.5)), "1.5");
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn structures_round_trip_compactly() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x"}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v), text);
    }

    #[test]
    fn pretty_printing_is_reparsable() {
        let v = parse(r#"{"a":[1,2],"b":{},"c":[]}"#).unwrap();
        let pretty = to_string_pretty(&v);
        assert_eq!(parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"a\": [\n"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("a\"b\\c\nd\te\u{1}\u{1F600}".to_string());
        let text = to_string(&original);
        assert_eq!(parse(&text).unwrap(), original);
        // Surrogate-pair escapes parse to the astral code point; lone ones error.
        let pair = "\"\\ud83d\\ude00\"";
        assert_eq!(parse(pair).unwrap(), Value::Str("\u{1F600}".to_string()));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("[1,").unwrap_err().to_string().contains("byte"));
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").unwrap_err().to_string().contains("trailing"));
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn floats_print_shortest_round_trip() {
        let v = Value::Float(0.1 + 0.2);
        let text = to_string(&v);
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(to_string(&Value::Float(3.0)), "3.0");
    }
}
