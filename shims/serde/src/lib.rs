//! Offline stand-in for `serde` + `serde_json`.
//!
//! The build environment has no crates.io access, so this shim provides a real —
//! if deliberately small — serialisation framework with the surface the workspace
//! needs: the [`Serialize`]/[`Deserialize`] trait names that every IR, cost-model
//! and engine type already derives, a self-describing [`Value`] tree mirroring the
//! JSON data model, and a [`json`] module with `to_string` / `to_string_pretty` /
//! `from_str`, so that programs, requests and selections can cross a process
//! boundary (files, pipes, sockets) as JSON.
//!
//! Differences from the real `serde` are intentional and contained:
//!
//! * serialisation goes through the [`Value`] tree instead of a streaming
//!   `Serializer`/`Deserializer` visitor pair — simpler, and plenty fast for the
//!   request/response payloads of this workspace;
//! * enums follow serde's *externally tagged* convention (`"Variant"`,
//!   `{"Variant": …}`), so the wire format matches what the real `serde_json`
//!   would produce for the same derives;
//! * generic types cannot be derived (checked at expansion time); every derived
//!   type in this workspace is concrete.
//!
//! Swapping this shim for the real `serde`/`serde_json` requires touching only the
//! call sites of [`json`], not the derives.

#![forbid(unsafe_code)]

pub use serde_shim_derive::{Deserialize, Serialize};

pub mod json;

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing serialised value, mirroring the JSON data model.
///
/// Integers keep their sign information ([`Value::Int`] vs [`Value::Uint`]) so that
/// the full `u64` range (e.g. basic-block execution counts) round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer outside (or not known to be inside) the `i64` range.
    Uint(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map. Insertion order is preserved so that serialising the same
    /// data twice yields byte-identical text.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this value is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this value is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key, if this value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// Short human-readable description of the value's kind, used in error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Int(_) | Value::Uint(_) => "an integer",
            Value::Float(_) => "a number",
            Value::Str(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// Serialisation/deserialisation error: a message describing what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from a message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }

    /// Error for an enum tag that matches no variant.
    #[must_use]
    pub fn unknown_variant(tag: &str, enum_name: &str) -> Self {
        Error::custom(format!("unknown variant `{tag}` for enum `{enum_name}`"))
    }

    /// Error for a value of the wrong kind.
    #[must_use]
    pub fn invalid_type(expected: &str, found: &Value) -> Self {
        Error::custom(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialises `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
///
/// The lifetime parameter exists for signature compatibility with the real `serde`
/// (the derive emits `impl<'de> Deserialize<'de>`); this shim always deserialises
/// from an owned tree.
pub trait Deserialize<'de>: Sized {
    /// Reconstructs a value of this type from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first mismatch between the tree and the
    /// expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Convenience alias bound: deserialisable from any lifetime (all shim types are).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code.
// ---------------------------------------------------------------------------

/// Builds the externally-tagged representation of an enum variant.
#[must_use]
pub fn variant_value(tag: &str, inner: Value) -> Value {
    Value::Object(vec![(tag.to_string(), inner)])
}

/// Expects `value` to be an object; `ty` names the target type for error messages.
///
/// # Errors
///
/// Returns an [`Error`] when the value is not an object.
pub fn expect_object<'v>(value: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    value.as_object().ok_or_else(|| {
        Error::custom(format!(
            "expected an object for `{ty}`, found {}",
            value.kind()
        ))
    })
}

/// Expects `value` to be an array of exactly `len` elements.
///
/// # Errors
///
/// Returns an [`Error`] when the value is not an array or has the wrong length.
pub fn expect_array<'v>(value: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    let items = value.as_array().ok_or_else(|| {
        Error::custom(format!(
            "expected an array for `{ty}`, found {}",
            value.kind()
        ))
    })?;
    if items.len() != len {
        return Err(Error::custom(format!(
            "expected {len} elements for `{ty}`, found {}",
            items.len()
        )));
    }
    Ok(items)
}

/// Looks up and deserialises a named field of an object.
///
/// # Errors
///
/// Returns an [`Error`] when the field is missing or its value does not
/// deserialise as `T`.
pub fn expect_field<T: DeserializeOwned>(
    fields: &[(String, Value)],
    key: &str,
    ty: &str,
) -> Result<T, Error> {
    let value = fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}` for `{ty}`")))?;
    T::from_value(value).map_err(|e| Error::custom(format!("field `{key}` of `{ty}`: {e}")))
}

// ---------------------------------------------------------------------------
// Implementations for primitives and common std containers.
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = i64::from_value(value)?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl<'de> Deserialize<'de> for i64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(v) => Ok(*v),
            Value::Uint(v) => {
                i64::try_from(*v).map_err(|_| Error::custom(format!("{v} out of range for i64")))
            }
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => Ok(*f as i64),
            other => Err(Error::invalid_type("an integer", other)),
        }
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::Int(*self as i64)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let wide = i64::from_value(value)?;
        isize::try_from(wide).map_err(|_| Error::custom(format!("{wide} out of range for isize")))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Uint(u64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = u64::from_value(value)?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        Value::Uint(*self)
    }
}

impl<'de> Deserialize<'de> for u64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Uint(v) => Ok(*v),
            Value::Int(v) => {
                u64::try_from(*v).map_err(|_| Error::custom(format!("{v} out of range for u64")))
            }
            // Mirror the i64 path's 2^53 bound: floats above it cannot represent
            // every integer exactly, and `as u64` would silently saturate.
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 9.0e15 => Ok(*f as u64),
            other => Err(Error::invalid_type("an unsigned integer", other)),
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::Uint(*self as u64)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let wide = u64::from_value(value)?;
        usize::try_from(wide).map_err(|_| Error::custom(format!("{wide} out of range for usize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else if self.is_nan() {
            Value::Str("NaN".to_string())
        } else if *self > 0.0 {
            Value::Str("Infinity".to_string())
        } else {
            Value::Str("-Infinity".to_string())
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(v) => Ok(*v as f64),
            Value::Uint(v) => Ok(*v as f64),
            Value::Str(s) if s == "NaN" => Ok(f64::NAN),
            Value::Str(s) if s == "Infinity" => Ok(f64::INFINITY),
            Value::Str(s) if s == "-Infinity" => Ok(f64::NEG_INFINITY),
            other => Err(Error::invalid_type("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::invalid_type("a boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::invalid_type("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::invalid_type("an array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: DeserializeOwned, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = expect_array(value, "array", N)?;
        let mut out = Vec::with_capacity(N);
        for item in items {
            out.push(T::from_value(item)?);
        }
        out.try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: DeserializeOwned> Deserialize<'de> for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::invalid_type("an object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_across_signedness() {
        assert_eq!(u64::from_value(&Value::Int(7)), Ok(7));
        assert_eq!(i64::from_value(&Value::Uint(7)), Ok(7));
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Uint(300)).is_err());
    }

    #[test]
    fn non_finite_floats_serialise_as_strings() {
        assert_eq!(f64::NAN.to_value(), Value::Str("NaN".to_string()));
        assert_eq!(f64::INFINITY.to_value(), Value::Str("Infinity".to_string()));
        let back = f64::from_value(&Value::Str("-Infinity".to_string())).unwrap();
        assert!(back.is_infinite() && back < 0.0);
    }

    #[test]
    fn option_maps_null() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Some(3u32).to_value(), Value::Uint(3));
    }

    #[test]
    fn object_lookup_helpers() {
        let v = Value::Object(vec![("a".to_string(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        assert!(expect_field::<i64>(v.as_object().unwrap(), "b", "T").is_err());
    }
}
