//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this shim provides the two trait
//! names the workspace derives — as empty marker traits — together with derive macros
//! that emit empty impls. No code in the workspace calls serialisation methods yet; the
//! derives only declare intent. Replacing this shim with the real `serde` (same package
//! name, same `derive` feature) requires no source changes elsewhere.

#![forbid(unsafe_code)]

pub use serde_shim_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
