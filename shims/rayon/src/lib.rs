//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this shim implements the small
//! slice of the rayon API the workspace uses — `par_iter().map(f).collect()` and
//! `par_iter().for_each(f)` — with *real* parallelism on `std::thread::scope`. Items are
//! split into contiguous chunks, one per available core, and results are reassembled in
//! input order, so a parallel map is always observably identical to the sequential one.
//! Replacing the shim with the real `rayon` requires no source changes.

#![forbid(unsafe_code)]

/// The traits user code is expected to import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Mirrors `rayon::iter::IntoParallelRefIterator`: `&self` to a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The element type iterated over.
    type Item: Sync + 'data;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every element through `op`, in parallel.
    pub fn map<R, F>(self, op: F) -> MapIter<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        MapIter {
            items: self.items,
            op,
        }
    }

    /// Runs `op` on every element, in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&'data T) + Sync,
    {
        let _ = parallel_map(self.items, op);
    }
}

/// The result of [`ParIter::map`]; consumed by `collect`.
pub struct MapIter<'data, T: Sync, F> {
    items: &'data [T],
    op: F,
}

impl<'data, T, R, F> MapIter<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Collects the mapped values, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.op).into_iter().collect()
    }
}

/// Ordered parallel map: contiguous chunks, one worker thread per chunk.
fn parallel_map<'data, T, R, F>(items: &'data [T], op: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len())
        .max(1);
    if threads == 1 {
        return items.iter().map(op).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let op = &op;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(op).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        items.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 5050);
    }
}
