//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this shim implements the small
//! slice of the rayon API the workspace uses — `par_iter().map(f).collect()`,
//! `par_iter().for_each(f)` and a minimal `ThreadPoolBuilder`/`ThreadPool` — with *real*
//! parallelism on `std::thread::scope`. Work is handed out dynamically (an atomic
//! next-item cursor, so imbalanced items — e.g. branch-and-bound subtrees of very
//! different sizes — keep every worker busy), and results are reassembled in input
//! order, so a parallel map is always observably identical to the sequential one.
//! Replacing the shim with the real `rayon` requires no source changes.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The traits user code is expected to import, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Thread-count override installed by [`ThreadPoolBuilder::build_global`] or a
/// [`ThreadPool::install`] scope; `0` means "use all available cores".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads a parallel operation started now would use.
#[must_use]
pub fn current_num_threads() -> usize {
    let configured = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; the shim's builder cannot actually
/// fail, so this exists only for API compatibility with the real `rayon`.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirrors `rayon::ThreadPoolBuilder` for the `num_threads` + `build`/`build_global`
/// subset.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder using all available cores.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (`0` = all available cores).
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds a scoped pool whose thread count applies inside
    /// [`ThreadPool::install`].
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real `rayon` signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }

    /// Installs the thread count process-wide, like `rayon`'s global pool.
    ///
    /// # Errors
    ///
    /// Never fails in the shim; the `Result` mirrors the real `rayon` signature.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        THREAD_OVERRIDE.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

/// A configured pool. The shim spawns scoped threads per operation instead of keeping
/// workers alive, so the pool only carries the thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every parallel operation
    /// started inside it (including nested ones), restoring the previous configuration
    /// afterwards — also on panic.
    ///
    /// Shim caveat versus real `rayon`: there is no shared worker pool. Each parallel
    /// operation spawns up to `num_threads` short-lived scoped threads of its own, so
    /// *nested* fan-outs (requests × blocks × subtrees) can briefly hold more than
    /// `num_threads` OS threads in total. Results are unaffected; only scheduling
    /// granularity differs. The override is process-global, so concurrent `install`
    /// scopes from different pools are not isolated from each other.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                THREAD_OVERRIDE.store(self.0, Ordering::SeqCst);
            }
        }
        let _restore = Restore(THREAD_OVERRIDE.swap(self.num_threads, Ordering::SeqCst));
        op()
    }

    /// The configured thread count (all available cores when built with `0`).
    #[must_use]
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Mirrors `rayon::iter::IntoParallelRefIterator`: `&self` to a parallel iterator.
pub trait IntoParallelRefIterator<'data> {
    /// The element type iterated over.
    type Item: Sync + 'data;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every element through `op`, in parallel.
    pub fn map<R, F>(self, op: F) -> MapIter<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        MapIter {
            items: self.items,
            op,
        }
    }

    /// Runs `op` on every element, in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(&'data T) + Sync,
    {
        let _ = parallel_map(self.items, op);
    }
}

/// The result of [`ParIter::map`]; consumed by `collect`.
pub struct MapIter<'data, T: Sync, F> {
    items: &'data [T],
    op: F,
}

impl<'data, T, R, F> MapIter<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Collects the mapped values, preserving input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        parallel_map(self.items, self.op).into_iter().collect()
    }
}

/// How many items one worker (shard) of a [`sharded_map`] ended up claiming.
///
/// The atomic-cursor scheduler hands items out dynamically, so the per-shard counts
/// depend on relative item costs and OS scheduling — they are telemetry, not part of
/// any deterministic result. The mapped *values* are always reassembled in input
/// order regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProgress {
    /// Worker index, `0..thread_count`.
    pub shard: usize,
    /// Number of items this worker claimed and completed.
    pub items: usize,
}

/// Ordered dynamic-scheduling map that also reports per-shard progress.
///
/// This is a shim extension beyond the real `rayon` API (under real `rayon` the same
/// shape is a `par_iter().map().collect()` plus a per-thread counter): `op` receives
/// the claiming worker's shard index alongside the item, results come back in input
/// order, and the second return value records how many items each shard processed.
/// Corpus-scale drivers use the shard index for progress reporting while relying on
/// the ordered reassembly for deterministic results.
pub fn sharded_map<'data, T, R, F>(items: &'data [T], op: F) -> (Vec<R>, Vec<ShardProgress>)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &'data T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    if threads == 1 {
        let results = items.iter().map(|item| op(0, item)).collect();
        let progress = vec![ShardProgress {
            shard: 0,
            items: items.len(),
        }];
        return (results, progress);
    }
    let next = AtomicUsize::new(0);
    let op = &op;
    let next = &next;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|shard| {
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        produced.push((index, op(shard, &items[index])));
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        let mut progress = Vec::with_capacity(threads);
        for (shard, handle) in handles.into_iter().enumerate() {
            let produced = handle.join().expect("worker thread panicked");
            progress.push(ShardProgress {
                shard,
                items: produced.len(),
            });
            for (index, value) in produced {
                slots[index] = Some(value);
            }
        }
        let results = slots
            .into_iter()
            .map(|slot| slot.expect("every index is claimed by exactly one worker"))
            .collect();
        (results, progress)
    })
}

/// Ordered parallel map with dynamic scheduling: workers pull the next unclaimed item
/// from a shared atomic cursor, so wildly different per-item costs still keep all
/// threads busy; the results are reassembled by index afterwards.
fn parallel_map<'data, T, R, F>(items: &'data [T], op: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    let threads = current_num_threads().min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(op).collect();
    }
    let next = AtomicUsize::new(0);
    let op = &op;
    let next = &next;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= items.len() {
                            break;
                        }
                        produced.push((index, op(&items[index])));
                    }
                    produced
                })
            })
            .collect();
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for handle in handles {
            for (index, value) in handle.join().expect("worker thread panicked") {
                slots[index] = Some(value);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index is claimed by exactly one worker"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn for_each_visits_every_element() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let total = AtomicU64::new(0);
        let items: Vec<u64> = (1..=100).collect();
        items.par_iter().for_each(|&x| {
            total.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 5050);
    }

    #[test]
    fn imbalanced_items_still_come_back_in_order() {
        // Items with wildly different costs: the dynamic cursor hands them out one by
        // one, and the reassembly restores input order regardless of finish order.
        let items: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = items
            .par_iter()
            .map(|&x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x * x
            })
            .collect();
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_map_preserves_order_and_accounts_every_item() {
        let items: Vec<u64> = (0..257).collect();
        let (out, progress) = sharded_map(&items, |_shard, &x| x * 3);
        assert_eq!(out, (0..257).map(|x| x * 3).collect::<Vec<_>>());
        let claimed: usize = progress.iter().map(|p| p.items).sum();
        assert_eq!(claimed, items.len());
        for (index, p) in progress.iter().enumerate() {
            assert_eq!(p.shard, index);
        }

        let empty: Vec<u64> = Vec::new();
        let (out, progress) = sharded_map(&empty, |_s, &x| x);
        assert!(out.is_empty());
        assert_eq!(progress.iter().map(|p| p.items).sum::<usize>(), 0);
    }

    #[test]
    fn installed_pools_scope_the_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let (inside, result) = pool.install(|| {
            let inside = current_num_threads();
            let items: Vec<u32> = (0..10).collect();
            let mapped: Vec<u32> = items.par_iter().map(|&x| x + 1).collect();
            (inside, mapped)
        });
        assert_eq!(inside, 2);
        assert_eq!(result, (1..=10).collect::<Vec<u32>>());
        // The override is restored after the install scope.
        assert_ne!(THREAD_OVERRIDE.load(Ordering::SeqCst), 2);
    }
}
