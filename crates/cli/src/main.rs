//! `ise-cli` — the process-boundary entry point of the ISE stack.
//!
//! Request files are JSON (see `requests/adpcm.json` in the repository root for a
//! checked-in example); everything the in-process [`ise_api`] surface accepts is
//! expressible in a file, and the emitted responses are byte-identical to what
//! [`ise_api::Session::run`] produces in-process.
//!
//! ```text
//! ise-cli run <request.json>    execute one request, print one response
//! ise-cli batch <requests.json> execute an array of requests, print an array of
//!                               outcomes ({"response": …} | {"error": …}), ordered
//! ise-cli sweep <sweep.json>    execute one sweep request (a base request plus a
//!                               list of (Nin, Nout) pairs), print one response
//! ise-cli corpus <dir|list>     analyse a whole corpus of programs together (a
//!                               directory of program `.json`/`.ll` files, or a
//!                               corpus request file), print one response
//! ise-cli serve                 long-running JSONL TCP server with a warm
//!                               cross-request cut-pool cache and disk snapshots
//! ise-cli client <addr> <file>  send a JSONL request file to a running server
//!                               and print its responses
//! ise-cli algorithms            list the registered identification algorithms
//! ```
//!
//! `run --ll kernel.ll` / `sweep --ll kernel.ll` take the program from a textual
//! LLVM IR file (lowered by the dependency-free [`ise_frontend`](ise_api) parser)
//! instead of a JSON request; combined with a request file, `--ll` replaces the
//! request's program and keeps every other knob. In corpus directory mode `.ll`
//! files participate next to `.json` programs (lexicographic name order); a file
//! that fails to parse is reported on stderr with its `file:line:column` and the
//! rest of the corpus still runs (exit code `2`).
//!
//! Flags: `--pretty` for indented output, `-o FILE` to write the output to a file,
//! `--threads N` to run `run`/`batch`/`sweep`/`corpus` inside a scoped `rayon` pool
//! of `N` workers (results are byte-identical for every thread count — the flag only
//! trades wall-clock for cores, across requests, across basic blocks, and inside a
//! block when a request sets `options.intra_block_levels`).
//!
//! `sweep` answers covered pairs from a memoised cut pool by default; `--direct`
//! forces the reference per-pair searches (the emitted response is byte-identical in
//! both modes). `corpus` shares enumeration work between structurally isomorphic
//! basic blocks across the whole corpus by default; `--no-dedup` forces the
//! reference per-program searches (again byte-identical), and `--stream N` runs the
//! corpus with at most `N` programs resident at once (bounded memory, identical
//! response). For both commands
//! `--stats` prints the effort accounting ([`SweepStats`](ise_api::SweepStats) /
//! [`CorpusStats`](ise_api::CorpusStats)) as one JSON line to stderr — stdout stays
//! byte-identical with and without the flag; `corpus --stats` also reports how the
//! work-stealing scheduler distributed the programs across shards.
//! `serve` keeps the process — and its warm cut-pool cache — alive across requests:
//! one JSON object per line over TCP (`{"id": …, "kind": "run" | "sweep" | "corpus" |
//! "stats" | "shutdown", "request": …}`), answered with `{"id": …, "response": …}`
//! envelopes whose payloads are byte-identical to the one-shot commands, cold or
//! warm. `--addr HOST:PORT` picks the socket (port `0` for an ephemeral port; the
//! bound address is printed as one JSON line on stdout), `--workers`/`--queue` size
//! the worker pool and the bounded backpressure queue, and `--cache-dir` enables
//! warm-start snapshots (written on shutdown and every `--snapshot-secs`, loaded on
//! boot, falling back to a cold start when damaged). SIGTERM/SIGINT drain in-flight
//! work before exiting. `client` is the matching sender for scripts and soak tests.
//!
//! Exit codes: `0` success, `1` usage or file error, `2` at least one request in a
//! batch (or the single `run`/`sweep`/`corpus` request) failed — for `client`, at
//! least one response line carried an `"error"` envelope, or the server closed the
//! connection before answering every request (a truncated final line counts as
//! unanswered, never as a response).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ise_api::{json, BatchService, IseError, IseRequest, Session};

/// Parsed command-line options.
struct Options {
    pretty: bool,
    output: Option<String>,
    threads: Option<usize>,
    direct: bool,
    no_dedup: bool,
    stats: bool,
    ll: Option<String>,
    stream: Option<usize>,
    templates: Option<f64>,
    addr: Option<String>,
    workers: Option<usize>,
    queue: Option<usize>,
    segments: Option<usize>,
    cache_bytes: Option<u64>,
    cache_dir: Option<String>,
    snapshot_secs: Option<u64>,
    positional: Vec<String>,
}

fn usage() -> &'static str {
    "usage: ise-cli <command> [options]\n\
     \n\
     commands:\n\
     \x20 run <request.json>     execute one identification request\n\
     \x20 batch <requests.json>  execute an array of requests (ordered, parallel)\n\
     \x20 sweep <sweep.json>     execute one sweep request (one result per (Nin, Nout)\n\
     \x20                        pair, answered from a memoised cut pool)\n\
     \x20 corpus <dir|list>      analyse a corpus of programs together (a directory\n\
     \x20                        of program .json/.ll files, or a corpus request\n\
     \x20                        file), sharing work between isomorphic blocks\n\
     \x20 serve                  long-running JSONL TCP server with a warm\n\
     \x20                        cross-request cut-pool cache and disk snapshots\n\
     \x20 client <addr> <file>   send a JSONL request file to a running server and\n\
     \x20                        print its responses (one per request line)\n\
     \x20 algorithms             list the registered identification algorithms\n\
     \n\
     options:\n\
     \x20 --pretty               indent the JSON output\n\
     \x20 -o, --output FILE      write the output to FILE instead of stdout\n\
     \x20 --threads N            size of the rayon worker pool for run/batch/sweep/\n\
     \x20                        corpus (N >= 1; output is identical for every N)\n\
     \x20 --direct               sweep only: force the reference per-pair searches\n\
     \x20                        (the response is byte-identical to the pool mode)\n\
     \x20 --no-dedup             corpus only: force the reference per-program\n\
     \x20                        searches (the response is byte-identical to the\n\
     \x20                        deduplicated mode)\n\
     \x20 --stats                sweep/corpus: print the effort accounting as one\n\
     \x20                        JSON line to stderr (stdout is unchanged); corpus\n\
     \x20                        also prints MaxMISO/Clubbing baseline comparison\n\
     \x20                        rows\n\
     \x20 --ll FILE              run/sweep: take the program from a textual LLVM IR\n\
     \x20                        (.ll) file; without a request file, runs the\n\
     \x20                        single-cut search under default constraints (run)\n\
     \x20                        or the paper (Nin, Nout) sweep (sweep)\n\
     \x20 --stream N             corpus only: keep at most N programs resident at\n\
     \x20                        once (bounded memory; the response is byte-\n\
     \x20                        identical to the batch run)\n\
     \x20 --templates AREA       corpus only: also select cross-site instruction\n\
     \x20                        templates (isomorphic cuts grouped across blocks\n\
     \x20                        and programs) under a global area budget, reported\n\
     \x20                        in a `templates` section of the response; needs\n\
     \x20                        the whole corpus at once, so it conflicts with\n\
     \x20                        --stream\n\
     \x20 --addr HOST:PORT       serve: listening address (default 127.0.0.1:9167;\n\
     \x20                        port 0 picks an ephemeral port, printed on stdout)\n\
     \x20 --workers N            serve: worker threads executing requests (default 2)\n\
     \x20 --queue N              serve: bounded request queue; beyond it requests\n\
     \x20                        are answered `server busy` immediately (default 64)\n\
     \x20 --segments N           serve: lock stripes of the warm cache (default 16)\n\
     \x20 --cache-bytes N        serve: byte budget of the warm cache (LRU eviction\n\
     \x20                        beyond it; default unbounded)\n\
     \x20 --cache-dir DIR        serve: persist the cache to DIR on shutdown and\n\
     \x20                        warm-start from it on boot\n\
     \x20 --snapshot-secs N      serve: also snapshot the cache every N seconds\n"
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        pretty: false,
        output: None,
        threads: None,
        direct: false,
        no_dedup: false,
        stats: false,
        ll: None,
        stream: None,
        templates: None,
        addr: None,
        workers: None,
        queue: None,
        segments: None,
        cache_bytes: None,
        cache_dir: None,
        snapshot_secs: None,
        positional: Vec::new(),
    };
    fn parsed<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String> {
        let Some(value) = value else {
            return Err(format!("{flag} requires a value"));
        };
        value
            .parse()
            .map_err(|_| format!("{flag} expects a number, got `{value}`"))
    }
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--pretty" => options.pretty = true,
            "--direct" => options.direct = true,
            "--no-dedup" => options.no_dedup = true,
            "--stats" => options.stats = true,
            "--ll" => {
                let Some(path) = iter.next() else {
                    return Err(format!("{arg} requires a .ll file path"));
                };
                options.ll = Some(path.clone());
            }
            "-o" | "--output" => {
                let Some(path) = iter.next() else {
                    return Err(format!("{arg} requires a file path"));
                };
                options.output = Some(path.clone());
            }
            "--threads" => {
                let count: usize = parsed(arg, iter.next())?;
                if count == 0 {
                    return Err("--threads requires at least one thread".to_string());
                }
                options.threads = Some(count);
            }
            "--stream" => {
                let count: usize = parsed(arg, iter.next())?;
                if count == 0 {
                    return Err("--stream requires at least one in-flight program".to_string());
                }
                options.stream = Some(count);
            }
            "--templates" => {
                let area: f64 = parsed(arg, iter.next())?;
                if !area.is_finite() || area <= 0.0 {
                    return Err("--templates requires a positive area budget".to_string());
                }
                options.templates = Some(area);
            }
            "--addr" => {
                let Some(addr) = iter.next() else {
                    return Err(format!("{arg} requires a host:port address"));
                };
                options.addr = Some(addr.clone());
            }
            "--workers" => {
                let count: usize = parsed(arg, iter.next())?;
                if count == 0 {
                    return Err("--workers requires at least one worker".to_string());
                }
                options.workers = Some(count);
            }
            "--queue" => {
                let count: usize = parsed(arg, iter.next())?;
                if count == 0 {
                    return Err("--queue requires capacity for at least one request".to_string());
                }
                options.queue = Some(count);
            }
            "--segments" => {
                let count: usize = parsed(arg, iter.next())?;
                if count == 0 {
                    return Err("--segments requires at least one lock stripe".to_string());
                }
                options.segments = Some(count);
            }
            "--cache-bytes" => options.cache_bytes = Some(parsed(arg, iter.next())?),
            "--snapshot-secs" => {
                let secs: u64 = parsed(arg, iter.next())?;
                if secs == 0 {
                    return Err("--snapshot-secs requires a non-zero interval".to_string());
                }
                options.snapshot_secs = Some(secs);
            }
            "--cache-dir" => {
                let Some(dir) = iter.next() else {
                    return Err(format!("{arg} requires a directory path"));
                };
                options.cache_dir = Some(dir.clone());
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => options.positional.push(other.to_string()),
        }
    }
    Ok(options)
}

fn read_file(path: &str) -> Result<String, IseError> {
    std::fs::read_to_string(path).map_err(|e| IseError::Io(format!("cannot read `{path}`: {e}")))
}

fn emit(options: &Options, payload: &json::Value) -> Result<(), IseError> {
    let text = if options.pretty {
        json::to_string_pretty(payload)
    } else {
        json::to_string(payload)
    };
    match &options.output {
        Some(path) => std::fs::write(path, text + "\n")
            .map_err(|e| IseError::Io(format!("cannot write `{path}`: {e}"))),
        None => {
            println!("{text}");
            Ok(())
        }
    }
}

/// Wraps one outcome in the `{"response": …} | {"error": …}` envelope.
fn envelope<T: serde::Serialize>(outcome: &Result<T, IseError>) -> json::Value {
    match outcome {
        Ok(response) => {
            json::Value::Object(vec![("response".to_string(), json::to_value(response))])
        }
        Err(error) => json::Value::Object(vec![(
            "error".to_string(),
            json::Value::Str(error.to_string()),
        )]),
    }
}

/// Loads a `.ll` file as a program source (the file path doubles as the program
/// name, so errors and responses point back at the input).
fn ll_source(path: &str) -> Result<ise_api::ProgramSource, IseError> {
    Ok(ise_api::ProgramSource::LlvmIr {
        name: path.to_string(),
        text: read_file(path)?,
    })
}

fn cmd_run(options: &Options, path: Option<&str>) -> Result<bool, IseError> {
    let mut request: IseRequest = match path {
        Some(path) => ise_api::from_json(&read_file(path)?)?,
        // `run --ll kernel.ll` with no request file: the exact single-cut search
        // under default constraints.
        None => IseRequest::new(
            ise_api::Algorithm::SingleCut,
            ll_source(options.ll.as_deref().expect("dispatch guarantees --ll"))?,
        ),
    };
    if path.is_some() {
        if let Some(ll) = &options.ll {
            request.program = ll_source(ll)?;
        }
    }
    let outcome = Session::execute(&request);
    let failed = outcome.is_err();
    emit(options, &envelope(&outcome))?;
    Ok(failed)
}

fn cmd_sweep(options: &Options, path: Option<&str>) -> Result<bool, IseError> {
    let mut request: ise_api::SweepRequest = match path {
        Some(path) => ise_api::from_json(&read_file(path)?)?,
        // `sweep --ll kernel.ll` with no request file: the paper's published
        // (Nin, Nout) pairs on the single-cut search.
        None => ise_api::SweepRequest::paper_sweep(IseRequest::new(
            ise_api::Algorithm::SingleCut,
            ll_source(options.ll.as_deref().expect("dispatch guarantees --ll"))?,
        )),
    };
    if path.is_some() {
        if let Some(ll) = &options.ll {
            request.request.program = ll_source(ll)?;
        }
    }
    if options.direct {
        request.request.options.cut_pool = false;
    }
    let outcome = Session::execute_sweep(&request);
    let failed = outcome.is_err();
    let response = match outcome {
        Ok((response, stats)) => {
            if options.stats {
                eprintln!("{}", ise_api::to_json(&stats));
            }
            Ok(response)
        }
        Err(error) => Err(error),
    };
    // The emitted envelope carries only the (mode-independent) response; the planner
    // statistics go to stderr so pool and --direct outputs stay byte-identical.
    emit(options, &envelope(&response))?;
    Ok(failed)
}

/// Loads one corpus program file: `.json` programs deserialise, `.ll` files go
/// through the LLVM IR front-end — a module with several `define`s contributes
/// one program per function. Parse/lower failures carry `file:line:column`.
fn load_corpus_program(file: &std::path::Path) -> Result<Vec<ise_api::ProgramSource>, IseError> {
    let name = file.display().to_string();
    let text = read_file(&name)?;
    if file.extension().is_some_and(|ext| ext == "ll") {
        // Parse eagerly (rather than deferring to resolve-time) so a broken file
        // is diagnosed here, with its position, and the rest of the corpus runs.
        let source = ise_api::ProgramSource::LlvmIr { name, text };
        let programs = source.resolve_corpus()?;
        Ok(programs
            .into_iter()
            .map(ise_api::ProgramSource::Inline)
            .collect())
    } else {
        let program = ise_api::program_from_json(&text)
            .map_err(|e| IseError::Io(format!("`{name}`: {e}")))?;
        Ok(vec![ise_api::ProgramSource::Inline(program)])
    }
}

/// Loads a corpus request: either a directory of program files (`*.json` and
/// `*.ll`, lexicographic name order, so the corpus is reproducible) or a single
/// `CorpusRequest` file.
///
/// In directory mode a file that fails to load does not abort the corpus: its
/// error is returned alongside the request and the remaining programs run.
fn load_corpus_request(path: &str) -> Result<(ise_api::CorpusRequest, Vec<IseError>), IseError> {
    if std::fs::metadata(path).is_ok_and(|m| m.is_dir()) {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(path)
            .map_err(|e| IseError::Io(format!("cannot read directory `{path}`: {e}")))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| {
                p.extension()
                    .is_some_and(|ext| ext == "json" || ext == "ll")
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(IseError::InvalidRequest(format!(
                "directory `{path}` contains no .json or .ll program files"
            )));
        }
        let mut programs = Vec::new();
        let mut failures = Vec::new();
        for file in &files {
            match load_corpus_program(file) {
                Ok(sources) => programs.extend(sources),
                Err(error) => failures.push(error),
            }
        }
        if programs.is_empty() {
            return Err(failures.into_iter().next().expect("files is non-empty"));
        }
        Ok((ise_api::CorpusRequest::new(programs), failures))
    } else {
        Ok((ise_api::from_json(&read_file(path)?)?, Vec::new()))
    }
}

fn cmd_corpus(options: &Options, path: &str) -> Result<bool, IseError> {
    let (mut request, load_failures) = load_corpus_request(path)?;
    for failure in &load_failures {
        eprintln!("error: {failure}");
    }
    if options.no_dedup {
        request.dedup = false;
    }
    if let Some(area) = options.templates {
        request.templates = Some(area);
    }
    let service = BatchService::new();
    let outcome = match options.stream {
        // Bounded residency: at most N resolved programs alive at once, same bytes.
        Some(max_in_flight) => service.run_corpus_streaming(&request, max_in_flight),
        None => service.run_corpus(&request),
    };
    let failed = outcome.is_err() || !load_failures.is_empty();
    let response = match outcome {
        Ok((response, stats, shards)) => {
            if options.stats {
                eprintln!("{}", ise_api::to_json(&stats));
                for shard in &shards {
                    eprintln!("shard {}: {} programs", shard.shard, shard.items);
                }
                match service.corpus_baselines(&request) {
                    Ok(baselines) => print_baselines(&baselines),
                    Err(error) => eprintln!("error: baseline comparison failed: {error}"),
                }
            }
            Ok(response)
        }
        Err(error) => Err(error),
    };
    // The envelope carries only the (mode- and schedule-independent) response; the
    // dedup statistics and the work-stealing telemetry go to stderr so deduplicated
    // and --no-dedup outputs stay byte-identical.
    emit(options, &envelope(&response))?;
    Ok(failed)
}

/// Prints the `--stats` baseline comparison table (single-cut vs MaxMISO vs
/// Clubbing speed-ups) to stderr, one row per program plus the geometric means.
fn print_baselines(baselines: &ise_api::CorpusBaselines) {
    eprintln!("baseline comparison (speed-up): program single-cut maxmiso clubbing");
    for row in &baselines.rows {
        eprintln!(
            "  {} {:.4} {:.4} {:.4}",
            row.program, row.single_cut, row.maxmiso, row.clubbing
        );
    }
    eprintln!(
        "  geomean {:.4} {:.4} {:.4}",
        baselines.geomean_single_cut, baselines.geomean_maxmiso, baselines.geomean_clubbing
    );
}

fn cmd_batch(options: &Options, path: &str) -> Result<bool, IseError> {
    let requests: Vec<IseRequest> = ise_api::from_json(&read_file(path)?)?;
    let outcomes = BatchService::new().run(&requests);
    let failed = outcomes.iter().any(Result::is_err);
    let items: Vec<json::Value> = outcomes.iter().map(envelope).collect();
    emit(options, &json::Value::Array(items))?;
    Ok(failed)
}

fn cmd_algorithms(options: &Options) -> Result<bool, IseError> {
    let names: Vec<json::Value> = ise_api::algorithm_names()
        .into_iter()
        .map(|n| json::Value::Str(n.to_string()))
        .collect();
    emit(options, &json::Value::Array(names))?;
    Ok(false)
}

/// SIGTERM/SIGINT bridge for the serve command: the handler only flips an
/// atomic flag; the server's accept loop polls it and drains gracefully. This
/// is the one place in the workspace that needs `unsafe` (registering the
/// handler through libc's `signal`), so it lives here rather than in the
/// `#![forbid(unsafe_code)]` library crates.
mod signals {
    use std::sync::atomic::AtomicBool;

    /// Set by SIGTERM/SIGINT; observed by [`ise_api::Server::run`].
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    #[cfg(unix)]
    pub fn install() {
        use std::sync::atomic::Ordering;
        extern "C" fn on_signal(_signum: i32) {
            // Only an atomic store: async-signal-safe.
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}
}

fn cmd_serve(options: &Options) -> Result<bool, IseError> {
    let config = ise_api::ServeConfig {
        workers: options.workers.unwrap_or(2),
        queue_capacity: options.queue.unwrap_or(64),
        segments: options.segments.unwrap_or(16),
        cache_bytes: options.cache_bytes,
        cache_dir: options.cache_dir.clone().map(PathBuf::from),
        snapshot_interval: options.snapshot_secs.map(Duration::from_secs),
    };
    let addr = options.addr.as_deref().unwrap_or("127.0.0.1:9167");
    let server = ise_api::Server::bind(addr, config)
        .map_err(|e| IseError::Io(format!("cannot bind `{addr}`: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| IseError::Io(format!("cannot resolve the bound address: {e}")))?;
    if let Some(loaded) = server.service().warm_loaded() {
        eprintln!("serve: warm start ({loaded} fills loaded from snapshot)");
    }
    // The one stdout line of serve mode, so scripts discover the actual port
    // when 0 was requested; everything else (stats, snapshots) goes to stderr.
    println!(
        "{}",
        json::to_string(&json::Value::Object(vec![(
            "serving".to_string(),
            json::Value::Str(local.to_string()),
        )]))
    );
    std::io::stdout()
        .flush()
        .map_err(|e| IseError::Io(e.to_string()))?;
    signals::install();
    server
        .run(&signals::SHUTDOWN)
        .map_err(|e| IseError::Io(format!("serve failed: {e}")))?;
    Ok(false)
}

fn cmd_client(options: &Options, addr: &str, path: &str) -> Result<bool, IseError> {
    let text = read_file(path)?;
    let requests: Vec<&str> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty())
        .collect();
    if requests.is_empty() {
        return Err(IseError::InvalidRequest(format!(
            "`{path}` contains no request lines"
        )));
    }
    let stream = TcpStream::connect(addr)
        .map_err(|e| IseError::Io(format!("cannot connect to `{addr}`: {e}")))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| IseError::Io(e.to_string()))?;
    let mut reader = BufReader::new(stream);
    for line in &requests {
        writeln!(writer, "{line}").map_err(|e| IseError::Io(format!("send failed: {e}")))?;
    }
    writer
        .flush()
        .map_err(|e| IseError::Io(format!("send failed: {e}")))?;
    // The server answers every request line exactly once (possibly out of
    // order across a pipelined batch; the `id` is the correlation key).
    let mut failed = false;
    let mut truncated = false;
    let mut out = String::new();
    for _ in 0..requests.len() {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| IseError::Io(format!("receive failed: {e}")))?;
        // EOF before every answer arrived, or a final line the server never
        // finished (no trailing newline): either way the stream is truncated.
        // The cut-off fragment is dropped — it must never pass as a response.
        if n == 0 || !line.ends_with('\n') {
            truncated = true;
            break;
        }
        let response = line.trim_end();
        if let Ok(json::Value::Object(fields)) = json::parse(response) {
            failed |= fields.iter().any(|(key, _)| key == "error");
        }
        out.push_str(response);
        out.push('\n');
    }
    match &options.output {
        Some(path) => std::fs::write(path, &out)
            .map_err(|e| IseError::Io(format!("cannot write `{path}`: {e}")))?,
        None => print!("{out}"),
    }
    if truncated {
        eprintln!("error: the server closed the connection before answering every request");
    }
    Ok(failed || truncated)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_options(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n\n{}", usage());
            return ExitCode::from(1);
        }
    };
    let first = options.positional.first().map(String::as_str);
    if options.direct && first != Some("sweep") {
        eprintln!(
            "error: --direct applies only to the sweep command\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    if options.no_dedup && first != Some("corpus") {
        eprintln!(
            "error: --no-dedup applies only to the corpus command\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    if options.stats && first != Some("sweep") && first != Some("corpus") {
        eprintln!(
            "error: --stats applies only to the sweep and corpus commands\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    if options.ll.is_some() && first != Some("run") && first != Some("sweep") {
        eprintln!(
            "error: --ll applies only to the run and sweep commands\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    if options.stream.is_some() && first != Some("corpus") {
        eprintln!(
            "error: --stream applies only to the corpus command\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    if options.templates.is_some() && first != Some("corpus") {
        eprintln!(
            "error: --templates applies only to the corpus command\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    if options.templates.is_some() && options.stream.is_some() {
        eprintln!(
            "error: --templates needs the whole corpus at once and conflicts with --stream\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    let serve_only = options.addr.is_some()
        || options.workers.is_some()
        || options.queue.is_some()
        || options.segments.is_some()
        || options.cache_bytes.is_some()
        || options.cache_dir.is_some()
        || options.snapshot_secs.is_some();
    if serve_only && first != Some("serve") {
        eprintln!(
            "error: --addr/--workers/--queue/--segments/--cache-bytes/--cache-dir/\
             --snapshot-secs apply only to the serve command\n\n{}",
            usage()
        );
        return ExitCode::from(1);
    }
    let command = || match options.positional.first().map(String::as_str) {
        Some("run") if options.positional.len() == 2 => {
            Some(cmd_run(&options, Some(&options.positional[1])))
        }
        Some("run") if options.positional.len() == 1 && options.ll.is_some() => {
            Some(cmd_run(&options, None))
        }
        Some("batch") if options.positional.len() == 2 => {
            Some(cmd_batch(&options, &options.positional[1]))
        }
        Some("sweep") if options.positional.len() == 2 => {
            Some(cmd_sweep(&options, Some(&options.positional[1])))
        }
        Some("sweep") if options.positional.len() == 1 && options.ll.is_some() => {
            Some(cmd_sweep(&options, None))
        }
        Some("corpus") if options.positional.len() == 2 => {
            Some(cmd_corpus(&options, &options.positional[1]))
        }
        Some("serve") if options.positional.len() == 1 => Some(cmd_serve(&options)),
        Some("client") if options.positional.len() == 3 => Some(cmd_client(
            &options,
            &options.positional[1],
            &options.positional[2],
        )),
        Some("algorithms") if options.positional.len() == 1 => Some(cmd_algorithms(&options)),
        _ => None,
    };
    // `--threads` builds a scoped pool governing every rayon fan-out under this
    // command — batch requests, per-block identification, intra-block subtrees. (With
    // the offline shim each individual fan-out is capped at N threads rather than all
    // of them sharing one N-worker pool; the output is identical either way.)
    let outcome = match options.threads {
        Some(threads) => match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
            Ok(pool) => pool.install(command),
            Err(error) => {
                eprintln!("error: cannot build a {threads}-thread pool: {error}");
                return ExitCode::from(1);
            }
        },
        None => command(),
    };
    let result = match outcome {
        Some(result) => result,
        None => {
            if matches!(options.positional.first().map(String::as_str), Some("help"))
                || options.positional.is_empty()
            {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: bad command line\n\n{}", usage());
            return ExitCode::from(1);
        }
    };
    match result {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(2),
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::from(1)
        }
    }
}
