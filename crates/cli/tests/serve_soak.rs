//! Serve-mode soak test: a real `ise-cli serve` process under concurrent mixed
//! load, every response diffed byte-for-byte against the one-shot execution
//! paths, plus warm-phase fill accounting and a snapshot warm-start restart.
//!
//! The quick profile (the default, CI-sized) fires 200 requests from 4
//! concurrent `ise-cli client` processes; set `ISE_SOAK_FULL=1` for the larger
//! local profile.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ise_api::{json, Algorithm, BatchService, CorpusRequest, IseRequest, ProgramSource, Session};

fn cli() -> &'static str {
    env!("CARGO_BIN_EXE_ise-cli")
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ise-cli-soak-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Kills the serve process on drop so a failing assertion never leaks it.
struct ServeGuard(Child);

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `ise-cli serve` on an ephemeral port and returns (guard, address).
fn spawn_server(cache_dir: &Path) -> (ServeGuard, String) {
    let child = Command::new(cli())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue",
            "256",
            "--cache-dir",
        ])
        .arg(cache_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ise-cli serve");
    let mut guard = ServeGuard(child);
    let stdout = guard.0.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read the serving line");
    let value = json::parse(line.trim()).expect("serving line is JSON");
    let json::Value::Object(fields) = value else {
        panic!("unexpected serving line: {line}");
    };
    let addr = fields
        .iter()
        .find_map(|(key, value)| match (key.as_str(), value) {
            ("serving", json::Value::Str(addr)) => Some(addr.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no `serving` field in {line}"));
    (guard, addr)
}

/// One request shape: the line sent (with `id` = shape index) and the expected
/// response line, computed through the one-shot in-process paths.
struct Shape {
    line: String,
    expected: String,
}

fn envelope(id: u64, kind: &str, request: Option<json::Value>) -> String {
    let mut fields = vec![
        ("id".to_string(), json::to_value(&id)),
        ("kind".to_string(), json::Value::Str(kind.to_string())),
    ];
    if let Some(request) = request {
        fields.push(("request".to_string(), request));
    }
    json::to_string(&json::Value::Object(fields))
}

fn response_line(id: u64, response: json::Value) -> String {
    json::to_string(&json::Value::Object(vec![
        ("id".to_string(), json::to_value(&id)),
        ("response".to_string(), response),
    ]))
}

/// The mixed request shapes of the soak: runs, a sweep and duplicate-heavy
/// corpora, each paired with its one-shot reference response.
fn shapes() -> Vec<Shape> {
    let mut shapes = Vec::new();
    let mut push_run = |id: u64, algorithm: Algorithm, workload: &str| {
        let request = IseRequest::new(algorithm, ProgramSource::Workload(workload.to_string()));
        let response = Session::execute(&request).expect("valid one-shot request");
        shapes.push(Shape {
            line: envelope(id, "run", Some(json::to_value(&request))),
            expected: response_line(id, json::to_value(&response)),
        });
    };
    push_run(0, Algorithm::SingleCut, "adpcmdecode");
    push_run(1, Algorithm::MaxMiso, "gsm");
    push_run(2, Algorithm::Clubbing, "adpcmencode");

    let sweep = ise_api::SweepRequest::paper_sweep(IseRequest::new(
        Algorithm::SingleCut,
        ProgramSource::Workload("gsm".to_string()),
    ));
    let (sweep_response, _) = Session::execute_sweep(&sweep).expect("valid one-shot sweep");
    shapes.push(Shape {
        line: envelope(3, "sweep", Some(json::to_value(&sweep))),
        expected: response_line(3, json::to_value(&sweep_response)),
    });

    for (id, programs) in [
        (4u64, vec!["adpcmdecode", "gsm", "adpcmdecode"]),
        (5u64, vec!["adpcmencode", "adpcmencode"]),
    ] {
        let request = CorpusRequest::new(
            programs
                .iter()
                .map(|name| ProgramSource::Workload((*name).to_string()))
                .collect(),
        );
        let (response, _, _) = BatchService::new()
            .run_corpus(&request)
            .expect("valid one-shot corpus");
        shapes.push(Shape {
            line: envelope(id, "corpus", Some(json::to_value(&request))),
            expected: response_line(id, json::to_value(&response)),
        });
    }
    shapes
}

/// Writes one client request file cycling through the shapes.
fn write_request_file(dir: &Path, name: &str, shapes: &[Shape], lines: usize) -> PathBuf {
    let path = dir.join(name);
    let mut text = String::new();
    for i in 0..lines {
        text.push_str(&shapes[i % shapes.len()].line);
        text.push('\n');
    }
    std::fs::write(&path, text).expect("write request file");
    path
}

/// Runs one `ise-cli client` invocation and returns its response lines.
fn run_client(addr: &str, file: &Path) -> Vec<String> {
    let output = Command::new(cli())
        .arg("client")
        .arg(addr)
        .arg(file)
        .output()
        .expect("run ise-cli client");
    assert!(
        output.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("client output is UTF-8")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Fetches the warm-cache fill counter through a `stats` request.
fn cache_fills(addr: &str, dir: &Path) -> u64 {
    let file = write_request_file_raw(
        dir,
        "stats.jsonl",
        "{\"id\":\"stats\",\"kind\":\"stats\"}\n",
    );
    let lines = run_client(addr, &file);
    assert_eq!(lines.len(), 1, "{lines:?}");
    let value = json::parse(&lines[0]).expect("stats response parses");
    let json::Value::Object(fields) = value else {
        panic!("unexpected stats response: {lines:?}");
    };
    let response = fields
        .iter()
        .find_map(|(key, value)| (key == "response").then_some(value))
        .unwrap_or_else(|| panic!("no response in {lines:?}"));
    let json::Value::Object(stats) = response else {
        panic!("unexpected stats payload: {lines:?}");
    };
    stats
        .iter()
        .find_map(|(key, value)| match (key.as_str(), value) {
            ("fills", json::Value::Uint(fills)) => Some(*fills),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no fills counter in {lines:?}"))
}

fn write_request_file_raw(dir: &Path, name: &str, text: &str) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write request file");
    path
}

/// Sends a shutdown request and waits for the server to exit cleanly.
fn shut_down(addr: &str, dir: &Path, mut guard: ServeGuard) {
    let file = write_request_file_raw(dir, "bye.jsonl", "{\"id\":\"bye\",\"kind\":\"shutdown\"}\n");
    let lines = run_client(addr, &file);
    assert!(lines[0].contains("shutting down"), "{lines:?}");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match guard.0.try_wait().expect("poll serve process") {
            Some(status) => {
                assert!(status.success(), "serve exited with {status}");
                break;
            }
            None if Instant::now() > deadline => panic!("serve did not exit after shutdown"),
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    // Already exited: keep Drop from reporting a kill error.
    std::mem::forget(guard);
}

/// A server killed mid-request must surface as exit code 2 ("at least one
/// request went unanswered"), never as a silent success: the client once
/// treated a missing final newline as a complete response and EOF as a plain
/// I/O error. A fake in-test listener makes both truncation modes
/// deterministic — a clean close after answering only one of two requests,
/// and a response line the server never finished.
#[test]
fn client_exits_2_when_the_server_closes_mid_stream() {
    use std::io::Write;
    use std::net::TcpListener;

    let dir = temp_dir("truncated");
    let file = write_request_file_raw(
        &dir,
        "two.jsonl",
        "{\"id\":0,\"kind\":\"stats\"}\n{\"id\":1,\"kind\":\"stats\"}\n",
    );

    for (complete, fragment) in [(1usize, ""), (0usize, "{\"id\":0,\"resp")] {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake server");
        let addr = listener.local_addr().expect("local addr").to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
            // Drain both request lines so the client's writes never block.
            for _ in 0..2 {
                let mut line = String::new();
                reader.read_line(&mut line).expect("read request line");
            }
            for _ in 0..complete {
                stream
                    .write_all(b"{\"id\":0,\"response\":{\"entries\":0}}\n")
                    .expect("write complete response");
            }
            stream
                .write_all(fragment.as_bytes())
                .expect("write fragment");
            stream.flush().expect("flush");
            // Dropping the stream here is the kill: id 1 is never answered.
        });
        let output = Command::new(cli())
            .arg("client")
            .arg(&addr)
            .arg(&file)
            .output()
            .expect("run ise-cli client");
        server.join().expect("fake server thread");
        assert_eq!(
            output.status.code(),
            Some(2),
            "a truncated stream must exit 2 (complete={complete}); stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("closed the connection before answering"),
            "stderr must name the truncation: {stderr}"
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert_eq!(
            stdout.lines().count(),
            complete,
            "only complete response lines pass through; stdout: {stdout:?}"
        );
        if !fragment.is_empty() {
            assert!(
                !stdout.contains(fragment),
                "the cut-off fragment must never be printed as a response: {stdout:?}"
            );
        }
    }
}

#[test]
fn soak_concurrent_mixed_load_is_byte_identical_and_warms() {
    let full = std::env::var("ISE_SOAK_FULL").is_ok_and(|v| v == "1");
    let (clients, lines_per_client) = if full { (6, 100) } else { (4, 50) };
    let dir = temp_dir("soak");
    let cache_dir = dir.join("cache");
    let shapes = shapes();

    let (guard, addr) = spawn_server(&cache_dir);
    let files: Vec<PathBuf> = (0..clients)
        .map(|i| {
            write_request_file(
                &dir,
                &format!("client-{i}.jsonl"),
                &shapes,
                lines_per_client,
            )
        })
        .collect();

    // Phase 1 (cold): all clients concurrently; every response must match the
    // one-shot reference for its id exactly.
    let verify_phase = |files: &[PathBuf]| {
        std::thread::scope(|scope| {
            let handles: Vec<_> = files
                .iter()
                .map(|file| scope.spawn(|| run_client(&addr, file)))
                .collect();
            for handle in handles {
                let responses = handle.join().expect("client thread");
                assert_eq!(responses.len(), lines_per_client);
                for response in responses {
                    let id: usize = response
                        .strip_prefix("{\"id\":")
                        .and_then(|rest| rest.split([',', '}']).next())
                        .and_then(|id| id.parse().ok())
                        .unwrap_or_else(|| panic!("no numeric id in {response}"));
                    assert_eq!(
                        response, shapes[id].expected,
                        "served response diverged from the one-shot reference (id {id})"
                    );
                }
            }
        });
    };
    verify_phase(&files);
    let cold_fills = cache_fills(&addr, &dir);
    assert!(cold_fills > 0, "the cold phase must have filled the cache");

    // Phase 2 (warm): the same load again enumerates nothing new.
    verify_phase(&files);
    let warm_fills = cache_fills(&addr, &dir);
    assert_eq!(
        warm_fills, cold_fills,
        "the warm phase must answer entirely from the cache"
    );

    shut_down(&addr, &dir, guard);

    // Phase 3 (restart): a fresh process warm-starts from the snapshot and
    // still answers byte-identically, without re-enumerating.
    assert!(
        cache_dir.join(ise_api::SNAPSHOT_FILE).is_file(),
        "shutdown must have written a snapshot"
    );
    let (guard, addr) = spawn_server(&cache_dir);
    let corpus_file = write_request_file_raw(
        &dir,
        "restart.jsonl",
        &shapes[4..]
            .iter()
            .map(|shape| shape.line.clone() + "\n")
            .collect::<String>(),
    );
    // Responses to pipelined requests may arrive out of order; match by id.
    let responses = run_client(&addr, &corpus_file);
    assert_eq!(responses.len(), shapes.len() - 4);
    for response in &responses {
        let id: usize = response
            .strip_prefix("{\"id\":")
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|id| id.parse().ok())
            .unwrap_or_else(|| panic!("no numeric id in {response}"));
        assert_eq!(
            response, &shapes[id].expected,
            "post-restart warm-start response diverged (id {id})"
        );
    }
    assert_eq!(
        cache_fills(&addr, &dir),
        0,
        "the restarted server must answer from the snapshot, not refill"
    );
    shut_down(&addr, &dir, guard);

    let _ = std::fs::remove_dir_all(&dir);
}
