//! End-to-end smoke tests for the `ise-cli` binary: run the checked-in request
//! file through a real child process and check the output against the in-process
//! API, byte for byte.

use std::path::PathBuf;
use std::process::Command;

use ise_api::{json, IseRequest, Session};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/cli sits two levels below the repository root")
        .to_path_buf()
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ise-cli"))
}

#[test]
fn batch_output_is_byte_identical_to_in_process_sessions() {
    let requests_path = repo_root().join("requests/adpcm.json");
    let output = cli()
        .arg("batch")
        .arg(&requests_path)
        .output()
        .expect("ise-cli runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");

    let text = std::fs::read_to_string(&requests_path).expect("request file");
    let requests: Vec<IseRequest> = ise_api::from_json(&text).expect("valid request file");
    assert!(
        requests.len() >= 2,
        "the smoke file exercises several requests"
    );

    let parsed = json::parse(stdout.trim()).expect("CLI emits valid JSON");
    let outcomes = parsed.as_array().expect("an array of outcomes");
    assert_eq!(outcomes.len(), requests.len());

    for (request, outcome) in requests.iter().zip(outcomes) {
        let response = outcome
            .get("response")
            .unwrap_or_else(|| panic!("{}: expected a response", request.algorithm));
        let in_process = Session::execute(request).expect("in-process run succeeds");
        // The whole response — and in particular its selection — must be
        // byte-identical across the process boundary.
        assert_eq!(
            json::to_string(response),
            ise_api::to_json(&in_process),
            "{}: CLI and in-process responses diverge",
            request.algorithm
        );
        assert_eq!(
            json::to_string(response.get("selection").expect("selection present")),
            ise_api::to_json(&in_process.selection),
        );
    }
}

#[test]
fn sweep_output_is_byte_identical_in_pool_and_direct_mode_and_to_in_process_runs() {
    let request_path = repo_root().join("requests/sweep_gsm.json");
    let pooled = cli()
        .arg("sweep")
        .arg(&request_path)
        .output()
        .expect("ise-cli runs");
    assert!(
        pooled.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&pooled.stderr)
    );
    let direct = cli()
        .arg("sweep")
        .arg(&request_path)
        .arg("--direct")
        .arg("--stats")
        .output()
        .expect("ise-cli runs");
    assert!(direct.status.success());
    // The emitted envelope is byte-identical between the memoised and the reference
    // mode; only the --stats line on stderr differs.
    assert_eq!(pooled.stdout, direct.stdout);
    // --stats emits the SweepStats as one JSON line on stderr.
    let stderr = String::from_utf8(direct.stderr).expect("utf-8 stderr");
    let stats_line = json::parse(stderr.trim()).expect("--stats emits valid JSON");
    assert!(
        stats_line.get("logical_identifier_calls").is_some(),
        "{stderr}"
    );

    // And byte-identical to the in-process execution of the same file.
    let text = std::fs::read_to_string(&request_path).expect("request file");
    let request: ise_api::SweepRequest = ise_api::from_json(&text).expect("valid sweep file");
    let (response, stats) = Session::execute_sweep(&request).expect("in-process sweep");
    let stdout = String::from_utf8(pooled.stdout).expect("utf-8 output");
    let parsed = json::parse(stdout.trim()).expect("CLI emits valid JSON");
    assert_eq!(
        json::to_string(parsed.get("response").expect("a response envelope")),
        ise_api::to_json(&response),
    );
    // The pool must have saved enumeration work on a 7-pair sweep.
    assert!(stats.physical_identifier_calls() < stats.logical_identifier_calls);
}

#[test]
fn mode_flags_are_rejected_on_commands_they_do_not_apply_to() {
    let requests_path = repo_root().join("requests/adpcm.json");
    for (flag, expected) in [
        ("--direct", "sweep command"),
        ("--no-dedup", "corpus command"),
        ("--stats", "sweep and corpus commands"),
    ] {
        let output = cli()
            .arg("batch")
            .arg(&requests_path)
            .arg(flag)
            .output()
            .expect("ise-cli runs");
        assert_eq!(output.status.code(), Some(1), "{flag} must be rejected");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains(expected),
            "{flag}"
        );
    }
}

#[test]
fn corpus_output_is_byte_identical_in_dedup_and_reference_mode_and_to_in_process_runs() {
    let request_path = repo_root().join("requests/corpus_media.json");
    let deduped = cli()
        .arg("corpus")
        .arg(&request_path)
        .arg("--stats")
        .output()
        .expect("ise-cli runs");
    assert!(
        deduped.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&deduped.stderr)
    );
    let reference = cli()
        .arg("corpus")
        .arg(&request_path)
        .arg("--no-dedup")
        .output()
        .expect("ise-cli runs");
    assert!(reference.status.success());
    // The emitted envelope is byte-identical between the deduplicated and the
    // reference mode; only the --stats lines on stderr differ.
    assert_eq!(deduped.stdout, reference.stdout);
    let stderr = String::from_utf8(deduped.stderr).expect("utf-8 stderr");
    let stats_line = stderr.lines().next().expect("--stats emits a stats line");
    let stats = json::parse(stats_line).expect("--stats emits valid JSON");
    assert!(stats.get("pool_answers").is_some(), "{stderr}");

    // And byte-identical to the in-process execution of the same file.
    let text = std::fs::read_to_string(&request_path).expect("request file");
    let request: ise_api::CorpusRequest = ise_api::from_json(&text).expect("valid corpus file");
    let (response, stats, _) = ise_api::BatchService::new()
        .run_corpus(&request)
        .expect("in-process corpus");
    let stdout = String::from_utf8(deduped.stdout).expect("utf-8 output");
    let parsed = json::parse(stdout.trim()).expect("CLI emits valid JSON");
    assert_eq!(
        json::to_string(parsed.get("response").expect("a response envelope")),
        ise_api::to_json(&response),
    );
    // The checked-in corpus repeats workloads, so the pool must have shared fills.
    assert!(stats.pool_answers > 0);
}

#[test]
fn corpus_directory_mode_reads_program_files_in_name_order() {
    let dir = std::env::temp_dir().join("ise-cli-corpus-dir");
    std::fs::create_dir_all(&dir).expect("temp dir");
    // Two copies of the same program under different names: directory mode must
    // load both (sorted) and the deduplicator must treat them as one shape.
    let program = ise_workloads::suite::by_name("gsm").expect("bundled workload");
    let text = ise_api::to_json(&program);
    std::fs::write(dir.join("a_first.json"), &text).expect("write program");
    std::fs::write(dir.join("b_second.json"), &text).expect("write program");
    std::fs::write(dir.join("ignored.txt"), "not json").expect("write decoy");
    let output = cli()
        .arg("corpus")
        .arg(&dir)
        .output()
        .expect("ise-cli runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    let parsed = json::parse(stdout.trim()).expect("CLI emits valid JSON");
    let programs = parsed
        .get("response")
        .and_then(|r| r.get("programs"))
        .and_then(|p| p.as_array())
        .expect("a programs array");
    assert_eq!(programs.len(), 2);
    // Identical programs get identical outcomes (only the name could differ, and
    // here even the names match).
    assert_eq!(json::to_string(&programs[0]), json::to_string(&programs[1]));
}

#[test]
fn algorithms_subcommand_lists_all_six() {
    let output = cli().arg("algorithms").output().expect("ise-cli runs");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    for name in ise_api::algorithm_names() {
        assert!(stdout.contains(name), "missing {name}: {stdout}");
    }
}

#[test]
fn bad_requests_produce_error_envelopes_and_exit_code_2() {
    let dir = std::env::temp_dir().join("ise-cli-smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("bad.json");
    std::fs::write(
        &path,
        r#"[{"algorithm": "no-such", "program": {"Workload": "gsm"},
            "constraints": {"max_inputs": 4, "max_outputs": 2, "max_area": null, "max_nodes": null},
            "config": {"exploration_budget": null, "multicut_slots": 2, "exhaustive_node_limit": 20},
            "options": {"max_instructions": 4, "parallel": true, "intra_block_levels": 0},
            "passes": []}]"#,
    )
    .expect("write request");
    let output = cli()
        .arg("batch")
        .arg(&path)
        .output()
        .expect("ise-cli runs");
    assert_eq!(output.status.code(), Some(2));
    let stdout = String::from_utf8(output.stdout).expect("utf-8 output");
    assert!(stdout.contains("\"error\""), "{stdout}");
    assert!(stdout.contains("no-such"), "{stdout}");

    let missing = cli()
        .arg("batch")
        .arg(dir.join("does-not-exist.json"))
        .output()
        .expect("ise-cli runs");
    assert_eq!(missing.status.code(), Some(1));
}
