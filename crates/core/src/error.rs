//! The workspace-wide error hierarchy.
//!
//! Every fallible surface of the identification/selection stack — algorithm lookup,
//! request validation, program validation, serialisation, the CLI's file handling —
//! reports an [`IseError`], so that a malformed request degrades into an error
//! response instead of killing the process. Structural IR problems are wrapped
//! ([`IseError::InvalidProgram`]) rather than flattened, preserving the precise
//! [`IrError`] diagnosis.

use std::fmt;

use ise_ir::IrError;

/// Error reported by the identification/selection stack and its front-ends.
#[derive(Debug, Clone, PartialEq)]
pub enum IseError {
    /// An algorithm name did not resolve in the [`crate::IdentifierRegistry`].
    ///
    /// The message lists the registered names so that a typo in a request or CLI
    /// flag is self-diagnosing.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        requested: String,
        /// The names registered at the time of the lookup, in registration order.
        available: Vec<String>,
    },
    /// A program (or one of its blocks/AFUs) failed structural validation.
    InvalidProgram(IrError),
    /// A request carried parameters outside the domain an algorithm accepts
    /// (zero port budgets, out-of-range multicut slots, unknown workload, …).
    InvalidRequest(String),
    /// A payload could not be serialised or deserialised.
    Serialization(String),
    /// A file or stream operation failed (used by the CLI front-end).
    Io(String),
    /// A textual LLVM IR source failed to parse or lower.
    ///
    /// Carries the originating file (or synthetic source name) and the 1-based
    /// source position so corpus runs can report `file:line:column` per input
    /// instead of aborting the whole batch.
    Frontend {
        /// The file path or source label the text came from.
        file: String,
        /// 1-based source line of the offending construct.
        line: u32,
        /// 1-based source column (1 when only the line is known).
        column: u32,
        /// Human-readable description of the failure.
        message: String,
    },
}

impl fmt::Display for IseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IseError::UnknownAlgorithm {
                requested,
                available,
            } => {
                write!(
                    f,
                    "unknown identification algorithm `{requested}`; registered algorithms: {}",
                    available.join(", ")
                )
            }
            IseError::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            IseError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            IseError::Serialization(msg) => write!(f, "serialisation error: {msg}"),
            IseError::Io(msg) => write!(f, "i/o error: {msg}"),
            IseError::Frontend {
                file,
                line,
                column,
                message,
            } => write!(f, "{file}:{line}:{column}: {message}"),
        }
    }
}

impl std::error::Error for IseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IseError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IrError> for IseError {
    fn from(e: IrError) -> Self {
        IseError::InvalidProgram(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_algorithm_lists_the_registered_names() {
        let e = IseError::UnknownAlgorithm {
            requested: "does-not-exist".into(),
            available: vec!["single-cut".into(), "multicut".into()],
        };
        let text = e.to_string();
        assert!(text.contains("does-not-exist"));
        assert!(text.contains("single-cut"));
        assert!(text.contains("multicut"));
    }

    #[test]
    fn ir_errors_convert_and_chain() {
        use std::error::Error as _;
        let ir = IrError::Cyclic {
            block: "bb0".into(),
        };
        let e = IseError::from(ir.clone());
        assert_eq!(e, IseError::InvalidProgram(ir));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("bb0"));
    }
}
