//! Microarchitectural constraints on candidate instructions.

use std::fmt;

/// The user-visible microarchitectural constraints of Problem 1 in the paper.
///
/// * `max_inputs` (`Nin`) — register-file read ports usable by a special instruction;
/// * `max_outputs` (`Nout`) — register-file write ports usable by a special instruction;
/// * `max_area` — optional limit on the normalised datapath area of one instruction
///   (an extension anticipated in Section 9 of the paper);
/// * `max_nodes` — optional limit on the number of operations in one instruction
///   (used by some related works and handy for bounding experiments).
///
/// Convexity and the exclusion of memory operations are *legality* requirements and are
/// always enforced; they are not part of this struct.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Constraints {
    /// Maximum number of register-file read ports (`Nin`).
    pub max_inputs: usize,
    /// Maximum number of register-file write ports (`Nout`).
    pub max_outputs: usize,
    /// Optional maximum normalised datapath area per instruction.
    pub max_area: Option<f64>,
    /// Optional maximum number of operation nodes per instruction.
    pub max_nodes: Option<usize>,
}

impl Constraints {
    /// Creates constraints with the given read- and write-port budgets and no area or
    /// size limit.
    ///
    /// # Panics
    ///
    /// Panics if either budget is zero: an instruction must be able to read at least one
    /// operand and write at least one result.
    #[must_use]
    pub fn new(max_inputs: usize, max_outputs: usize) -> Self {
        assert!(max_inputs > 0, "Nin must be at least one");
        assert!(max_outputs > 0, "Nout must be at least one");
        Constraints {
            max_inputs,
            max_outputs,
            max_area: None,
            max_nodes: None,
        }
    }

    /// Adds a normalised area budget.
    #[must_use]
    pub fn with_max_area(mut self, area: f64) -> Self {
        self.max_area = Some(area);
        self
    }

    /// Adds a node-count budget.
    #[must_use]
    pub fn with_max_nodes(mut self, nodes: usize) -> Self {
        self.max_nodes = Some(nodes);
        self
    }

    /// The classic two-read-one-write configuration of a plain RISC register file.
    #[must_use]
    pub fn risc_like() -> Self {
        Constraints::new(2, 1)
    }

    /// The (Nin, Nout) pairs swept by the paper's Fig. 11 experiments.
    #[must_use]
    pub fn paper_sweep() -> Vec<Constraints> {
        [(2, 1), (3, 1), (4, 1), (4, 2), (4, 3), (6, 3), (8, 4)]
            .into_iter()
            .map(|(i, o)| Constraints::new(i, o))
            .collect()
    }

    /// Checks the port part of the constraints against measured values.
    #[must_use]
    pub fn ports_ok(&self, inputs: usize, outputs: usize) -> bool {
        inputs <= self.max_inputs && outputs <= self.max_outputs
    }

    /// Checks the optional area and node-count budgets.
    #[must_use]
    pub fn budget_ok(&self, area: f64, nodes: usize) -> bool {
        self.max_area.is_none_or(|limit| area <= limit)
            && self.max_nodes.is_none_or(|limit| nodes <= limit)
    }
}

impl Default for Constraints {
    fn default() -> Self {
        Constraints::new(4, 2)
    }
}

impl fmt::Display for Constraints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nin={}, Nout={}", self.max_inputs, self.max_outputs)?;
        if let Some(area) = self.max_area {
            write!(f, ", area<={area}")?;
        }
        if let Some(nodes) = self.max_nodes {
            write!(f, ", nodes<={nodes}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_checks() {
        let c = Constraints::new(4, 2);
        assert!(c.ports_ok(4, 2));
        assert!(!c.ports_ok(5, 2));
        assert!(!c.ports_ok(4, 3));
        assert!(c.budget_ok(123.0, 10_000));
        let c = c.with_max_area(2.0).with_max_nodes(8);
        assert!(c.budget_ok(1.9, 8));
        assert!(!c.budget_ok(2.1, 8));
        assert!(!c.budget_ok(1.0, 9));
    }

    #[test]
    fn paper_sweep_covers_the_published_configurations() {
        let sweep = Constraints::paper_sweep();
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0], Constraints::new(2, 1));
        assert_eq!(sweep.last().copied(), Some(Constraints::new(8, 4)));
    }

    #[test]
    fn display_shows_ports_and_budgets() {
        let c = Constraints::new(4, 2).with_max_area(1.5);
        let text = c.to_string();
        assert!(text.contains("Nin=4"));
        assert!(text.contains("Nout=2"));
        assert!(text.contains("area<=1.5"));
    }

    #[test]
    #[should_panic(expected = "Nout")]
    fn zero_outputs_rejected() {
        let _ = Constraints::new(2, 0);
    }

    #[test]
    #[should_panic(expected = "Nin")]
    fn zero_inputs_rejected() {
        let _ = Constraints::new(0, 1);
    }
}
