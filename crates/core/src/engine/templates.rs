//! Cross-site instruction templates: select instructions, not per-block cuts.
//!
//! The paper's selection drivers pick the best cut *per basic block*, paying the cut's
//! area once per block. A real ISA extension does the opposite: one instruction
//! *template* is implemented once and amortised across every site that matches it. This
//! module closes that gap exactly, reusing the corpus layer's structural machinery:
//!
//! 1. **Extraction** ([`extract_templates`]). Every Pareto candidate cut emitted by a
//!    [`fill_single_cut`] enumeration per distinct block shape — the whole-block fill
//!    plus residual re-fill rounds that exclude each round's best cut, so the disjoint
//!    secondary cuts the iterative driver reaches become candidates too — is
//!    re-expressed as a standalone sub-DFG and canonicalised through
//!    [`StructuralForm`]. Two candidate
//!    cuts — in different blocks, different programs, different parent shapes — belong
//!    to the same [`Template`] iff the canonical serializations of their sub-DFGs are
//!    **byte-equal** ([`StructuralKey`] equality; the 64-bit hash is only a map index).
//!    Each match becomes a [`SiteRef`] whose savings weight the template's merit by the
//!    site's block execution count.
//! 2. **Selection** ([`select_templates`]). A global area-budget knapsack: each chosen
//!    template pays its datapath area *once* and earns the savings of all of its
//!    non-conflicting sites. The branch-and-bound walks the shared [`SearchKernel`]
//!    tree (two branches per template: take, then skip) with a [`TemplateSelectPolicy`]
//!    that decides templates in descending conflict-free-savings order (so the
//!    take-first dive is a sensible greedy even when an exploration budget cuts the
//!    walk short), bounds both branches by the fractional-knapsack relaxation poured
//!    over the remaining templates in *density* order (the relaxation is only an
//!    upper bound when poured densest-first), and dominance-prunes any take that
//!    claims no site — paying area for zero savings is never better than skipping.
//!    Site conflicts (overlapping node sets within one block) are resolved greedily
//!    in decision order with the sequential incumbent's first-visitor-wins
//!    tie-break. [`select_templates_exhaustive`] brute-forces every subset in the
//!    identical visit order with the identical dominance rule — the oracle the tests
//!    and the `template_gate` bench pit the policy against.
//! 3. **Reporting** ([`TemplateReport`]). Coverage, area, savings and the cumulative
//!    area-vs-speedup Pareto rows surfaced through `run_corpus`, serve mode and
//!    `ise-cli corpus --templates`.

use std::collections::HashMap;

use ise_hw::speedup::clamped_speedup;
use ise_hw::CostModel;
use ise_ir::{Dfg, DfgBuilder, Operand, Program};

use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};
use crate::kernel::{Incumbent, SearchKernel, SearchPolicy};
use crate::pool::{fill_single_cut, FillOutcome};
use crate::search::SearchStats;
use crate::structural::{StructuralForm, StructuralKey};

use super::{Identifier, SingleCut};

/// Absolute slack applied to every area-budget feasibility test, so that a budget set
/// to the exact sum of table areas is never rejected by float rounding. Shared by the
/// branch-and-bound and the oracle — both must cut the same tree.
const AREA_EPS: f64 = 1e-9;

/// The global area budget of one template selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateBudget {
    /// Total normalised datapath area the chosen templates may occupy.
    pub area: f64,
    /// Optional cap on the number of templates chosen (`None` = unlimited).
    pub max_templates: Option<usize>,
}

impl TemplateBudget {
    /// A budget limited by area only.
    #[must_use]
    pub fn new(area: f64) -> Self {
        TemplateBudget {
            area,
            max_templates: None,
        }
    }

    /// Additionally caps the number of templates chosen.
    #[must_use]
    pub fn with_max_templates(mut self, limit: Option<usize>) -> Self {
        self.max_templates = limit;
        self
    }
}

/// One matched site of a template: a concrete cut in a concrete block.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRef {
    /// Index of the program within the corpus.
    pub program: usize,
    /// Index of the block within the program.
    pub block: usize,
    /// The cut's node indices within the block, ascending.
    pub nodes: Vec<u32>,
    /// Cycles saved by covering this site: the template's merit weighted by the
    /// block's execution count.
    pub savings: f64,
}

/// One instruction template: an equivalence class of byte-equal canonical cut
/// sub-DFGs, with every site it matches across the corpus.
#[derive(Debug, Clone)]
pub struct Template {
    /// The canonical serialization of the cut's standalone sub-DFG. Byte equality of
    /// this key is the grouping ground truth.
    pub key: StructuralKey,
    /// The structure-determined evaluation shared by all sites (same sub-structure ⇒
    /// same ports, cycles, critical path; the area is recomputed as an
    /// order-independent sum so parent-block node ordering cannot leak in).
    pub evaluation: CutEvaluation,
    /// Every matched site, sorted by `(program, block, nodes)`.
    pub sites: Vec<SiteRef>,
}

impl Template {
    /// Datapath area the template pays once when chosen.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.evaluation.area
    }

    /// Upper bound on the template's savings: every site covered, conflicts ignored.
    #[must_use]
    pub fn total_savings(&self) -> f64 {
        self.sites.iter().map(|s| s.savings).sum()
    }
}

/// One candidate cut of a block shape, in canonical coordinates, with its template key.
struct CandidateCut {
    positions: Vec<u32>,
    evaluation: CutEvaluation,
    template_key: StructuralKey,
}

/// Rebuilds the cut as a standalone DFG: external value sources become fresh inputs
/// (deduplicated per source), members keep their operand structure, and members with
/// external consumers or output uses become outputs. Node insertion order follows the
/// member order of `cut` (ascending ids — producers precede consumers in a valid DFG),
/// which [`StructuralForm`] then canonicalises away.
fn cut_subgraph(dfg: &Dfg, cut: &CutSet) -> Dfg {
    let mut b = DfgBuilder::new("template");
    let mut mapped: HashMap<usize, Operand> = HashMap::new();
    let mut external_nodes: HashMap<usize, Operand> = HashMap::new();
    let mut external_inputs: HashMap<usize, Operand> = HashMap::new();
    let mut fresh = 0usize;
    for id in cut.iter() {
        let node = dfg.node(id);
        let mut operands = Vec::with_capacity(node.operands.len());
        for operand in &node.operands {
            let rebuilt = match *operand {
                Operand::Node(m) if cut.contains(m) => mapped[&m.index()],
                Operand::Node(m) => match external_nodes.get(&m.index()) {
                    Some(&port) => port,
                    None => {
                        let port = b.input(format!("v{fresh}"));
                        fresh += 1;
                        external_nodes.insert(m.index(), port);
                        port
                    }
                },
                Operand::Input(p) => match external_inputs.get(&p.index()) {
                    Some(&port) => port,
                    None => {
                        let port = b.input(format!("v{fresh}"));
                        fresh += 1;
                        external_inputs.insert(p.index(), port);
                        port
                    }
                },
                Operand::Imm(v) => Operand::Imm(v),
            };
            operands.push(rebuilt);
        }
        let opcode = node.opcode;
        mapped.insert(id.index(), b.op(opcode, &operands));
    }
    let mut outputs = 0usize;
    for id in cut.iter() {
        let node = dfg.node(id);
        let used_outside =
            dfg.is_output_source(id) || dfg.consumers(id).iter().any(|c| !cut.contains(*c));
        if node.opcode.has_result() && used_outside {
            b.output(format!("o{outputs}"), mapped[&id.index()]);
            outputs += 1;
        }
    }
    b.finish()
}

/// Residual-exclusion rounds per block shape during candidate enumeration. The pool's
/// Pareto pruning keeps only the best cut per port signature, so a disjoint secondary
/// cut elsewhere in the block (exactly what the iterative per-block driver finds after
/// committing its first cut) is invisible to a single fill. Each round excludes the
/// previous round's best cut and re-fills the residual, mirroring the iterative
/// driver; the cap bounds the work per distinct shape.
const ENUMERATION_ROUNDS: usize = 8;

/// One round of candidate enumeration: the Pareto pool of the block with `excluded`
/// nodes kept in software (an exhausted fill degrades to the direct search's single
/// best cut).
fn enumerate_round(
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    constraints: Constraints,
    model: &dyn CostModel,
    exploration_budget: Option<u64>,
) -> Vec<(CutSet, CutEvaluation)> {
    match fill_single_cut(dfg, excluded, constraints, model, exploration_budget) {
        FillOutcome::Complete(pool) => {
            let (entries, _) = pool.store.parts();
            entries
                .iter()
                .map(|entry| (entry.payload.cut.clone(), entry.payload.evaluation.clone()))
                .collect()
        }
        FillOutcome::Exhausted { .. } => {
            let identifier = SingleCut::new().with_exploration_budget(exploration_budget);
            let outcome = identifier.identify_split(dfg, excluded, &constraints, model, 0);
            outcome
                .best
                .into_iter()
                .map(|best| (best.cut, best.evaluation))
                .collect()
        }
    }
}

/// Enumerates the candidate cuts of one block shape — the Pareto pool of the whole
/// block plus up to [`ENUMERATION_ROUNDS`] residual re-fills, each excluding the best
/// cut found so far (so disjoint secondary cuts become templates too, matching the
/// coverage the iterative per-block driver reaches) — and stamps each distinct cut
/// with its canonical template key.
fn enumerate_candidates(
    dfg: &Dfg,
    form: &StructuralForm,
    constraints: Constraints,
    model: &dyn CostModel,
    exploration_budget: Option<u64>,
) -> Vec<CandidateCut> {
    let mut identified: Vec<(CutSet, CutEvaluation)> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let mut excluded = CutSet::for_dfg(dfg);
    for round in 0..ENUMERATION_ROUNDS {
        let exclude = (round > 0).then_some(&excluded);
        let entries = enumerate_round(dfg, exclude, constraints, model, exploration_budget);
        // The round's best cut (highest merit, first-enumerated on ties) seeds the
        // next residual, exactly like the iterative driver committing its choice.
        let best = entries
            .iter()
            .enumerate()
            .filter(|(_, (_, evaluation))| evaluation.merit > 0.0)
            .max_by(|(ai, (_, a)), (bi, (_, b))| a.merit.total_cmp(&b.merit).then(bi.cmp(ai)))
            .map(|(index, _)| index);
        let mut grew = false;
        for (cut, evaluation) in &entries {
            let nodes: Vec<usize> = cut.iter().map(|id| id.index()).collect();
            if seen.insert(nodes) {
                identified.push((cut.clone(), evaluation.clone()));
                grew = true;
            }
        }
        match best {
            Some(index) if grew => excluded.union_with(&entries[index].0),
            _ => break,
        }
    }
    identified
        .into_iter()
        .map(|(cut, mut evaluation)| {
            // The fill's area accumulates in the parent block's walk order; re-sum it
            // order-independently so byte-equal template keys always carry bit-equal
            // evaluations, whichever parent shape produced them first.
            let mut areas: Vec<f64> = cut
                .iter()
                .map(|id| model.hardware_area(dfg.node(id)))
                .collect();
            areas.sort_by(f64::total_cmp);
            evaluation.area = areas.iter().sum();
            let template_key = StructuralForm::of(&cut_subgraph(dfg, &cut)).key().clone();
            CandidateCut {
                positions: form.to_canonical(&cut),
                evaluation,
                template_key,
            }
        })
        .collect()
}

/// Extracts every instruction template of the corpus: one enumeration (a Pareto fill
/// plus residual re-fill rounds) per distinct block shape, candidates grouped across
/// blocks *and* programs by byte-equal canonical sub-DFG serialization. Sites with non-positive savings are dropped; templates are
/// returned in descending savings-density order with ties broken by total savings and
/// then by key bytes (the selection derives its own decision order — this order is
/// for presentation and for density-leading head slices).
#[must_use]
pub fn extract_templates(
    programs: &[Program],
    model: &dyn CostModel,
    constraints: Constraints,
    exploration_budget: Option<u64>,
) -> Vec<Template> {
    let mut candidates: HashMap<StructuralKey, Vec<CandidateCut>> = HashMap::new();
    let mut drafts: HashMap<StructuralKey, Template> = HashMap::new();
    for (program_index, program) in programs.iter().enumerate() {
        for (block_index, dfg) in program.blocks().iter().enumerate() {
            let form = StructuralForm::of(dfg);
            let shape_candidates = candidates.entry(form.key().clone()).or_insert_with(|| {
                enumerate_candidates(dfg, &form, constraints, model, exploration_budget)
            });
            for candidate in shape_candidates.iter() {
                let savings = candidate.evaluation.merit * dfg.exec_count() as f64;
                if savings <= 0.0 {
                    continue;
                }
                let cut = form.cut_from_canonical(dfg, &candidate.positions);
                let nodes: Vec<u32> = cut.iter().map(|id| id.index() as u32).collect();
                let draft = drafts
                    .entry(candidate.template_key.clone())
                    .or_insert_with(|| Template {
                        key: candidate.template_key.clone(),
                        evaluation: candidate.evaluation.clone(),
                        sites: Vec::new(),
                    });
                draft.sites.push(SiteRef {
                    program: program_index,
                    block: block_index,
                    nodes,
                    savings,
                });
            }
        }
    }
    let mut templates: Vec<Template> = drafts.into_values().collect();
    for template in &mut templates {
        template
            .sites
            .sort_by(|a, b| (a.program, a.block, &a.nodes).cmp(&(b.program, b.block, &b.nodes)));
    }
    sort_by_density(&mut templates);
    templates
}

/// Sorts templates by descending savings density (`total_savings / area`, compared by
/// cross-multiplication so zero areas need no special case), tie-broken by descending
/// total savings and then ascending key bytes — a total, deterministic order.
fn sort_by_density(templates: &mut [Template]) {
    templates.sort_by(|a, b| {
        let (ua, ub) = (a.total_savings(), b.total_savings());
        let lhs = ua * b.evaluation.area;
        let rhs = ub * a.evaluation.area;
        rhs.total_cmp(&lhs)
            .then_with(|| ub.total_cmp(&ua))
            .then_with(|| a.key.bytes().cmp(b.key.bytes()))
    });
}

/// Returns `true` when `area` fits the budget, with the shared float slack.
fn fits(area: f64, budget: f64) -> bool {
    area <= budget + AREA_EPS
}

/// One chosen template of a [`TemplateSelection`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChosenTemplate {
    /// Index into the template slice the selection ran over.
    pub template: usize,
    /// Indices of the sites actually covered (non-conflicting, claimed greedily in
    /// site order), into [`Template::sites`].
    pub sites_taken: Vec<usize>,
    /// Savings of the covered sites.
    pub savings: f64,
}

/// The outcome of one global template selection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TemplateSelection {
    /// Chosen templates, in decision (density) order.
    pub chosen: Vec<ChosenTemplate>,
    /// Total savings of all covered sites.
    pub total_savings: f64,
    /// Total area paid (one instance per chosen template).
    pub total_area: f64,
}

/// Already-covered nodes, per `(program, block)`.
type Claims = HashMap<(usize, usize), Vec<u32>>;

/// The sites of `template` claimable against `claims`, greedily in site order.
/// Returns the claimable site indices and the running savings continued from
/// `savings` — continued, not summed separately, so the float accumulation order is
/// identical wherever a take is replayed (policy, oracle, final commit).
fn claimable_sites(template: &Template, claims: &Claims, mut savings: f64) -> (Vec<usize>, f64) {
    let mut pending: Claims = HashMap::new();
    let mut taken = Vec::new();
    for (index, site) in template.sites.iter().enumerate() {
        let key = (site.program, site.block);
        let blocked = |set: Option<&Vec<u32>>| {
            set.is_some_and(|nodes| site.nodes.iter().any(|n| nodes.contains(n)))
        };
        if blocked(claims.get(&key)) || blocked(pending.get(&key)) {
            continue;
        }
        pending.entry(key).or_default().extend(&site.nodes);
        savings += site.savings;
        taken.push(index);
    }
    (taken, savings)
}

/// Commits the given sites of `template` into `claims`.
fn commit_sites(template: &Template, sites: &[usize], claims: &mut Claims) {
    for &index in sites {
        let site = &template.sites[index];
        claims
            .entry((site.program, site.block))
            .or_default()
            .extend(&site.nodes);
    }
}

/// Removes the given sites of `template` from `claims`.
fn release_sites(template: &Template, sites: &[usize], claims: &mut Claims) {
    for &index in sites {
        let site = &template.sites[index];
        if let Some(nodes) = claims.get_mut(&(site.program, site.block)) {
            nodes.retain(|n| !site.nodes.contains(n));
        }
    }
}

/// One level's reversible decision on the [`TemplateSelectPolicy`] state.
#[derive(Debug, Clone)]
enum Step {
    Skipped,
    Taken {
        sites: Vec<usize>,
        savings_before: f64,
        area_before: f64,
    },
}

/// The mutable walk state of one template selection.
#[derive(Debug, Clone, Default)]
pub struct SelectState {
    claims: Claims,
    savings: f64,
    area: f64,
    taken: Vec<usize>,
    journal: Vec<Step>,
}

/// The knapsack-style [`SearchPolicy`] of the global template selection.
///
/// Level `ℓ` decides the template at position `ℓ` of the decision order — descending
/// conflict-free savings, so the take-first dive is the savings-greedy solution and a
/// budget-truncated walk still returns something sensible. Branch 0 takes the
/// template, branch 1 skips it; a take that claims no site is dominance-pruned (the
/// skip branch reaches the same savings with more area room). Both branches are
/// guarded by the fractional-knapsack relaxation against the incumbent score —
/// visit-order-dependent pruning, so the policy declares
/// [`requires_sequential`](SearchPolicy::requires_sequential) and the kernel never
/// splits the walk.
pub struct TemplateSelectPolicy<'t> {
    templates: &'t [Template],
    /// Decision order: template indices sorted by descending conflict-free savings.
    order: Vec<usize>,
    /// Bound order: template indices sorted by descending savings density — the pour
    /// order in which the fractional-knapsack relaxation is actually an upper bound.
    bound_order: Vec<usize>,
    /// Per template: its position (level) in the decision order.
    position: Vec<usize>,
    /// Per template: its conflict-free savings upper bound.
    upper: Vec<f64>,
    budget: TemplateBudget,
}

impl<'t> TemplateSelectPolicy<'t> {
    /// Builds the policy, deriving the savings decision order and the density bound
    /// order from the templates.
    #[must_use]
    pub fn new(templates: &'t [Template], budget: TemplateBudget) -> Self {
        let upper: Vec<f64> = templates.iter().map(Template::total_savings).collect();
        let mut order: Vec<usize> = (0..templates.len()).collect();
        order.sort_by(|&a, &b| {
            upper[b]
                .total_cmp(&upper[a])
                .then_with(|| {
                    templates[a]
                        .evaluation
                        .area
                        .total_cmp(&templates[b].evaluation.area)
                })
                .then_with(|| templates[a].key.bytes().cmp(templates[b].key.bytes()))
        });
        let mut position = vec![0usize; templates.len()];
        for (level, &t) in order.iter().enumerate() {
            position[t] = level;
        }
        let mut bound_order = order.clone();
        bound_order.sort_by(|&a, &b| {
            let lhs = upper[a] * templates[b].evaluation.area;
            let rhs = upper[b] * templates[a].evaluation.area;
            rhs.total_cmp(&lhs)
                .then_with(|| upper[b].total_cmp(&upper[a]))
                .then_with(|| templates[a].key.bytes().cmp(templates[b].key.bytes()))
        });
        TemplateSelectPolicy {
            templates,
            order,
            bound_order,
            position,
            upper,
            budget,
        }
    }

    /// The fractional-knapsack relaxation: `savings` plus the value of greedily
    /// pouring the still-undecided templates (decision positions `next..`) into
    /// `room` area in descending *density* order, the last one fractionally. An
    /// upper bound on every completion — each template's value is itself the
    /// conflict-ignoring site-savings sum, and the densest-first pour maximises the
    /// fractional relaxation whatever order the levels decide in.
    fn optimistic(&self, next: usize, savings: f64, room: f64) -> f64 {
        let mut bound = savings;
        let mut room = room.max(0.0);
        for &t in &self.bound_order {
            if self.position[t] < next {
                continue;
            }
            let value = self.upper[t];
            if value <= 0.0 {
                continue;
            }
            let area = self.templates[t].evaluation.area;
            if area <= room {
                bound += value;
                room -= area;
            } else {
                if area > 0.0 {
                    bound += value * (room / area);
                }
                break;
            }
        }
        bound
    }
}

/// The incumbent payload: the template indices taken so far, in decision order.
#[derive(Debug, Clone)]
pub struct SelectDraft {
    taken: Vec<usize>,
}

impl SearchPolicy for TemplateSelectPolicy<'_> {
    type Payload = SelectDraft;
    type State = SelectState;

    fn depth(&self) -> usize {
        self.order.len()
    }

    fn max_arity(&self) -> usize {
        2
    }

    fn initial_state(&self) -> SelectState {
        SelectState::default()
    }

    fn choice_count(&self, _state: &SelectState, _level: usize) -> usize {
        2
    }

    fn apply(
        &self,
        state: &mut SelectState,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<SelectDraft>,
    ) -> bool {
        let t = self.order[level];
        if choice == 0 {
            stats.cuts_considered += 1;
            if self
                .budget
                .max_templates
                .is_some_and(|limit| state.taken.len() >= limit)
            {
                stats.pruned_node_budget += 1;
                return false;
            }
            let template = &self.templates[t];
            let area = state.area + template.evaluation.area;
            if !fits(area, self.budget.area) {
                stats.pruned_output += 1;
                return false;
            }
            let (sites, savings) = claimable_sites(template, &state.claims, state.savings);
            if sites.is_empty() {
                // Dominated: paying the area without claiming a site can never beat
                // the skip branch, which reaches the same savings with more room.
                stats.pruned_bound += 1;
                return false;
            }
            if self.optimistic(level + 1, savings, self.budget.area - area) <= incumbent.score() {
                stats.pruned_bound += 1;
                return false;
            }
            commit_sites(template, &sites, &mut state.claims);
            state.journal.push(Step::Taken {
                sites,
                savings_before: state.savings,
                area_before: state.area,
            });
            state.savings = savings;
            state.area = area;
            state.taken.push(t);
            stats.feasible_cuts += 1;
            incumbent.offer(state.savings, || SelectDraft {
                taken: state.taken.clone(),
            });
            true
        } else {
            if self.optimistic(level + 1, state.savings, self.budget.area - state.area)
                <= incumbent.score()
            {
                stats.bound_subtree_prunes += 1;
                return false;
            }
            state.journal.push(Step::Skipped);
            true
        }
    }

    fn undo(&self, state: &mut SelectState, level: usize, _choice: usize) {
        match state.journal.pop().expect("journal entry per applied step") {
            Step::Skipped => {}
            Step::Taken {
                sites,
                savings_before,
                area_before,
            } => {
                let t = self.order[level];
                release_sites(&self.templates[t], &sites, &mut state.claims);
                state.savings = savings_before;
                state.area = area_before;
                state.taken.pop();
            }
        }
    }

    fn requires_sequential(&self) -> bool {
        true
    }
}

/// Replays a decision-order take sequence into the final [`TemplateSelection`], using
/// the exact accumulation order of the walk (so the totals are bit-equal to the
/// incumbent score that won).
fn commit_selection(templates: &[Template], taken: &[usize]) -> TemplateSelection {
    let mut claims = Claims::new();
    let mut selection = TemplateSelection::default();
    for &t in taken {
        let template = &templates[t];
        let (sites, savings) = claimable_sites(template, &claims, selection.total_savings);
        commit_sites(template, &sites, &mut claims);
        selection.chosen.push(ChosenTemplate {
            template: t,
            savings: savings - selection.total_savings,
            sites_taken: sites,
        });
        selection.total_savings = savings;
        selection.total_area += template.evaluation.area;
    }
    selection
}

/// Selects the best template subset under `budget` by exact branch-and-bound on the
/// shared [`SearchKernel`]. Returns the selection and the walk's statistics.
///
/// The walk is unbounded: the fractional-knapsack bound is admissible but can stay
/// loose when many templates fight over the same sites, so on large corpora (dozens of
/// templates) the tree may grow exponentially. Callers with real corpora should use
/// [`select_templates_budgeted`] instead.
#[must_use]
pub fn select_templates(
    templates: &[Template],
    budget: TemplateBudget,
) -> (TemplateSelection, SearchStats) {
    select_templates_budgeted(templates, budget, None)
}

/// [`select_templates`] with a kernel exploration budget: the walk stops descending
/// after `exploration_budget` take-branch attempts and returns the best selection
/// visited so far (the take-first walk visits the density-greedy solution first, so
/// any budget of at least the template count yields a result no worse than greedy).
/// When the budget trips,
/// [`SearchStats::budget_exhausted`] is set and the selection is a lower bound
/// rather than a proven optimum; `None` means unbounded (exact).
#[must_use]
pub fn select_templates_budgeted(
    templates: &[Template],
    budget: TemplateBudget,
    exploration_budget: Option<u64>,
) -> (TemplateSelection, SearchStats) {
    if templates.is_empty() {
        return (TemplateSelection::default(), SearchStats::default());
    }
    let policy = TemplateSelectPolicy::new(templates, budget);
    let (draft, stats) = SearchKernel::sequential()
        .with_exploration_budget(exploration_budget)
        .run(&policy);
    let selection = draft
        .map(|draft| commit_selection(templates, &draft.taken))
        .unwrap_or_default();
    (selection, stats)
}

/// Brute-force oracle: enumerates every feasible subset in the branch-and-bound's
/// exact visit order (take before skip, strict-improvement incumbent), without any
/// bound. Intended for small fixtures; panics above 20 templates.
#[must_use]
pub fn select_templates_exhaustive(
    templates: &[Template],
    budget: TemplateBudget,
) -> TemplateSelection {
    assert!(
        templates.len() <= 20,
        "the exhaustive oracle is for small fixtures"
    );
    let policy = TemplateSelectPolicy::new(templates, budget);
    let mut state = SelectState::default();
    let mut best_savings = 0.0f64;
    let mut best_taken: Option<Vec<usize>> = None;
    walk_exhaustive(&policy, &mut state, 0, &mut best_savings, &mut best_taken);
    best_taken
        .map(|taken| commit_selection(templates, &taken))
        .unwrap_or_default()
}

/// One chosen template row of a [`TemplateReport`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TemplateChoice {
    /// The template's canonical-form hash (an identifier for cross-referencing; the
    /// byte-exact key stays internal).
    pub key_hash: u64,
    /// Operation nodes in the template datapath.
    pub nodes: usize,
    /// Register-file read ports used.
    pub inputs: usize,
    /// Register-file write ports used.
    pub outputs: usize,
    /// Normalised datapath area, paid once.
    pub area: f64,
    /// Cycles saved per execution of one site.
    pub merit: f64,
    /// Sites the template matched across the corpus.
    pub sites_matched: u64,
    /// Sites actually covered (after conflict resolution).
    pub sites_taken: u64,
    /// Total cycles saved by the covered sites.
    pub savings: f64,
}

/// One cumulative area-vs-speedup Pareto row of a [`TemplateReport`]: the state after
/// committing the first `templates` chosen templates in decision order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TemplateParetoRow {
    /// Templates committed so far.
    pub templates: u64,
    /// Cumulative area paid.
    pub area: f64,
    /// Cumulative cycles saved.
    pub savings: f64,
    /// Corpus speed-up at this point (clamped ratio against the baseline cycles).
    pub speedup: f64,
}

/// The template-selection summary surfaced through `run_corpus`, serve mode and the
/// CLI's `--templates` flag.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TemplateReport {
    /// The area budget the selection ran under.
    pub budget_area: f64,
    /// Distinct templates extracted from the corpus.
    pub templates_considered: u64,
    /// Total matched sites across all templates.
    pub sites_total: u64,
    /// The chosen templates, in decision order.
    pub chosen: Vec<TemplateChoice>,
    /// Total area paid by the chosen templates.
    pub total_area: f64,
    /// Total cycles saved by all covered sites.
    pub total_savings: f64,
    /// Sites covered by the chosen templates.
    pub sites_covered: u64,
    /// Baseline dynamic cycles of the whole corpus.
    pub baseline_cycles: f64,
    /// Corpus speed-up of the full selection.
    pub speedup: f64,
    /// Cumulative area-vs-speedup Pareto rows, one per chosen template.
    pub pareto: Vec<TemplateParetoRow>,
}

/// Baseline dynamic cycles of the corpus: every block in software, weighted by its
/// execution count.
fn corpus_baseline_cycles(programs: &[Program], model: &dyn CostModel) -> f64 {
    programs
        .iter()
        .flat_map(Program::blocks)
        .map(|dfg| {
            let per_execution: u64 = dfg
                .iter_nodes()
                .map(|(_, node)| u64::from(model.software_cycles(node)))
                .sum();
            dfg.exec_count() as f64 * per_execution as f64
        })
        .sum()
}

/// Builds the surface report for a finished selection.
#[must_use]
pub fn report_selection(
    programs: &[Program],
    model: &dyn CostModel,
    templates: &[Template],
    selection: &TemplateSelection,
    budget: TemplateBudget,
) -> TemplateReport {
    let baseline_cycles = corpus_baseline_cycles(programs, model);
    let mut chosen = Vec::with_capacity(selection.chosen.len());
    let mut pareto = Vec::with_capacity(selection.chosen.len());
    let (mut cum_area, mut cum_savings) = (0.0f64, 0.0f64);
    for choice in &selection.chosen {
        let template = &templates[choice.template];
        chosen.push(TemplateChoice {
            key_hash: template.key.hash(),
            nodes: template.evaluation.nodes,
            inputs: template.evaluation.inputs,
            outputs: template.evaluation.outputs,
            area: template.evaluation.area,
            merit: template.evaluation.merit,
            sites_matched: template.sites.len() as u64,
            sites_taken: choice.sites_taken.len() as u64,
            savings: choice.savings,
        });
        cum_area += template.evaluation.area;
        cum_savings += choice.savings;
        pareto.push(TemplateParetoRow {
            templates: pareto.len() as u64 + 1,
            area: cum_area,
            savings: cum_savings,
            speedup: clamped_speedup(baseline_cycles, cum_savings),
        });
    }
    TemplateReport {
        budget_area: budget.area,
        templates_considered: templates.len() as u64,
        sites_total: templates.iter().map(|t| t.sites.len() as u64).sum(),
        chosen,
        total_area: selection.total_area,
        total_savings: selection.total_savings,
        sites_covered: selection
            .chosen
            .iter()
            .map(|c| c.sites_taken.len() as u64)
            .sum(),
        baseline_cycles,
        speedup: clamped_speedup(baseline_cycles, selection.total_savings),
        pareto,
    }
}

/// End-to-end template pass over a corpus: extract, select under `budget`, report.
/// The exploration budget bounds both the per-shape candidate enumeration and the
/// selection branch-and-bound (see [`select_templates_budgeted`]).
#[must_use]
pub fn run_template_selection(
    programs: &[Program],
    model: &dyn CostModel,
    constraints: Constraints,
    exploration_budget: Option<u64>,
    budget: TemplateBudget,
) -> TemplateReport {
    let templates = extract_templates(programs, model, constraints, exploration_budget);
    let (selection, _) = select_templates_budgeted(&templates, budget, exploration_budget);
    report_selection(programs, model, &templates, &selection, budget)
}

fn walk_exhaustive(
    policy: &TemplateSelectPolicy<'_>,
    state: &mut SelectState,
    level: usize,
    best_savings: &mut f64,
    best_taken: &mut Option<Vec<usize>>,
) {
    if level == policy.order.len() {
        return;
    }
    let t = policy.order[level];
    let template = &policy.templates[t];
    let area = state.area + template.evaluation.area;
    let within_count = policy
        .budget
        .max_templates
        .is_none_or(|limit| state.taken.len() < limit);
    if within_count && fits(area, policy.budget.area) {
        let (sites, savings) = claimable_sites(template, &state.claims, state.savings);
        // The same dominance rule as the branch-and-bound: a take that claims no
        // site is skipped, so both walks visit the same solutions.
        if !sites.is_empty() {
            commit_sites(template, &sites, &mut state.claims);
            let (savings_before, area_before) = (state.savings, state.area);
            state.savings = savings;
            state.area = area;
            state.taken.push(t);
            if state.savings > *best_savings {
                *best_savings = state.savings;
                *best_taken = Some(state.taken.clone());
            }
            walk_exhaustive(policy, state, level + 1, best_savings, best_taken);
            release_sites(template, &sites, &mut state.claims);
            state.savings = savings_before;
            state.area = area_before;
            state.taken.pop();
        }
    }
    walk_exhaustive(policy, state, level + 1, best_savings, best_taken);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn mac_block(name: &str, exec: u64) -> Dfg {
        let mut b = DfgBuilder::new(name);
        b.exec_count(exec);
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let prod = b.mul(x, y);
        let sum = b.add(prod, acc);
        b.output("out", sum);
        b.finish()
    }

    fn chain_block(name: &str, exec: u64) -> Dfg {
        let mut b = DfgBuilder::new(name);
        b.exec_count(exec);
        let a = b.input("a");
        let c = b.input("c");
        let x = b.xor(a, c);
        let s = b.shl(x, b.imm(3));
        let o = b.add(s, a);
        b.output("o", o);
        b.finish()
    }

    fn site(program: usize, block: usize, nodes: &[u32], savings: f64) -> SiteRef {
        SiteRef {
            program,
            block,
            nodes: nodes.to_vec(),
            savings,
        }
    }

    fn template(tag: u8, area: f64, sites: Vec<SiteRef>) -> Template {
        Template {
            key: StructuralKey::from_bytes(vec![tag; 8]),
            evaluation: CutEvaluation {
                nodes: 2,
                inputs: 2,
                outputs: 1,
                convex: true,
                software_cycles: 3,
                hardware_critical_path: 1.0,
                hardware_cycles: 1,
                area,
                merit: 2.0,
            },
            sites,
        }
    }

    /// A deterministic Fisher–Yates driven by a splitmix-style LCG, so the shuffle
    /// property tests are seeded and reproducible.
    fn shuffle<T>(items: &mut [T], seed: u64) {
        let mut state = seed | 1;
        for i in (1..items.len()).rev() {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let j = (state >> 33) as usize % (i + 1);
            items.swap(i, j);
        }
    }

    fn program(name: &str, blocks: Vec<Dfg>) -> Program {
        let mut p = Program::new(name);
        for block in blocks {
            p.add_block(block);
        }
        p
    }

    #[test]
    fn isomorphic_cuts_group_across_blocks_and_programs() {
        let programs = vec![
            program("p0", vec![mac_block("m0", 100), chain_block("c0", 7)]),
            program("p1", vec![mac_block("different_names_same_shape", 25)]),
        ];
        let model = DefaultCostModel::new();
        let templates = extract_templates(&programs, &model, Constraints::new(3, 1), Some(100_000));
        assert!(!templates.is_empty());
        let cross = templates
            .iter()
            .find(|t| {
                let programs: std::collections::HashSet<usize> =
                    t.sites.iter().map(|s| s.program).collect();
                programs.len() == 2
            })
            .expect("the shared MAC shape must group into one cross-program template");
        // Both sites carry the same per-execution merit; savings scale with exec count.
        let m0 = cross.sites.iter().find(|s| s.program == 0).unwrap();
        let m1 = cross.sites.iter().find(|s| s.program == 1).unwrap();
        assert!((m0.savings / 100.0 - m1.savings / 25.0).abs() < 1e-12);
    }

    #[test]
    fn grouping_is_invariant_under_program_and_block_shuffling() {
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(4, 2);
        let summary = |programs: &[Program]| -> Vec<(Vec<u8>, u64, Vec<u64>)> {
            let mut rows: Vec<(Vec<u8>, u64, Vec<u64>)> =
                extract_templates(programs, &model, constraints, Some(100_000))
                    .into_iter()
                    .map(|t| {
                        let mut savings: Vec<u64> =
                            t.sites.iter().map(|s| s.savings.to_bits()).collect();
                        savings.sort_unstable();
                        (t.key.bytes().to_vec(), t.evaluation.area.to_bits(), savings)
                    })
                    .collect();
            rows.sort();
            rows
        };
        let make = |program_order: u64, block_order: u64| -> Vec<Program> {
            let mut specs: Vec<(String, Vec<Dfg>)> = (0..4)
                .map(|p| {
                    let mut blocks = vec![
                        mac_block(&format!("m{p}"), 10 + p),
                        chain_block(&format!("c{p}"), 3 + p),
                        mac_block(&format!("m{p}b"), 50 + p),
                    ];
                    shuffle(&mut blocks, block_order.wrapping_add(p));
                    (format!("prog{p}"), blocks)
                })
                .collect();
            shuffle(&mut specs, program_order);
            specs
                .into_iter()
                .map(|(name, blocks)| program(&name, blocks))
                .collect()
        };
        let reference = summary(&make(0, 0));
        for seed in [1u64, 7, 42, 1234] {
            let shuffled = summary(&make(seed, seed.wrapping_mul(31)));
            assert_eq!(
                reference, shuffled,
                "template grouping changed under corpus shuffling (seed {seed})"
            );
        }
    }

    #[test]
    fn overlapping_sites_resolve_greedily_in_site_order() {
        let t = template(
            1,
            1.0,
            vec![
                site(0, 0, &[0, 1], 10.0),
                site(0, 0, &[1, 2], 50.0), // overlaps site 0 → skipped despite more savings
                site(0, 0, &[3, 4], 5.0),
                site(0, 1, &[0, 1], 2.0), // other block: no conflict
            ],
        );
        let (taken, savings) = claimable_sites(&t, &Claims::new(), 0.0);
        assert_eq!(taken, vec![0, 2, 3]);
        assert!((savings - 17.0).abs() < 1e-12);
    }

    fn conflict_corpus() -> Vec<Template> {
        vec![
            template(
                1,
                2.0,
                vec![site(0, 0, &[0, 1], 30.0), site(0, 1, &[2, 3], 12.0)],
            ),
            template(2, 1.5, vec![site(0, 0, &[1, 2], 25.0)]),
            template(
                3,
                1.0,
                vec![site(1, 0, &[0, 1], 10.0), site(1, 0, &[4, 5], 9.0)],
            ),
            template(4, 0.5, vec![site(2, 0, &[0], 4.0)]),
            template(5, 3.0, vec![site(0, 2, &[0, 1, 2], 40.0)]),
            template(
                6,
                2.5,
                vec![site(1, 1, &[0, 1], 18.0), site(2, 1, &[0, 1], 17.0)],
            ),
        ]
    }

    #[test]
    fn branch_and_bound_matches_the_exhaustive_oracle() {
        let templates = conflict_corpus();
        for budget_area in [0.0, 0.5, 1.0, 2.0, 2.5, 3.5, 4.0, 5.5, 7.0, 100.0] {
            for limit in [None, Some(1), Some(2), Some(3)] {
                let budget = TemplateBudget::new(budget_area).with_max_templates(limit);
                let (fast, _) = select_templates(&templates, budget);
                let oracle = select_templates_exhaustive(&templates, budget);
                assert_eq!(
                    fast, oracle,
                    "divergence at area {budget_area}, limit {limit:?}"
                );
            }
        }
    }

    #[test]
    fn extracted_corpus_selection_matches_the_oracle() {
        let programs = vec![
            program("p0", vec![mac_block("m0", 100), chain_block("c0", 40)]),
            program("p1", vec![mac_block("m1", 30), chain_block("c1", 5)]),
            program("p2", vec![mac_block("m2", 8)]),
        ];
        let model = DefaultCostModel::new();
        let templates = extract_templates(&programs, &model, Constraints::new(3, 1), Some(100_000));
        assert!(templates.len() <= 20, "fixture stays oracle-sized");
        let total_area: f64 = templates.iter().map(Template::area).sum();
        for fraction in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let budget = TemplateBudget::new(total_area * fraction);
            let (fast, stats) = select_templates(&templates, budget);
            let oracle = select_templates_exhaustive(&templates, budget);
            assert_eq!(fast, oracle, "divergence at fraction {fraction}");
            assert!(stats.cuts_considered > 0 || templates.is_empty());
        }
    }

    #[test]
    fn report_rows_are_cumulative_and_consistent() {
        let programs = vec![
            program("p0", vec![mac_block("hot", 1000)]),
            program("p1", vec![mac_block("warm", 400)]),
        ];
        let model = DefaultCostModel::new();
        let report = run_template_selection(
            &programs,
            &model,
            Constraints::new(3, 1),
            Some(100_000),
            TemplateBudget::new(1e9),
        );
        assert!(report.templates_considered > 0);
        assert!(!report.chosen.is_empty());
        assert!(report.speedup > 1.0, "duplicated hot MACs must pay off");
        let last = report.pareto.last().expect("one row per chosen template");
        assert_eq!(report.pareto.len(), report.chosen.len());
        assert!((last.area - report.total_area).abs() < 1e-9);
        assert!((last.savings - report.total_savings).abs() < 1e-9);
        assert_eq!(last.speedup.to_bits(), report.speedup.to_bits());
        let covered: u64 = report.chosen.iter().map(|c| c.sites_taken).sum();
        assert_eq!(covered, report.sites_covered);
        assert!(report.sites_covered <= report.sites_total);
    }

    #[test]
    fn empty_inputs_give_empty_outcomes() {
        let (selection, stats) = select_templates(&[], TemplateBudget::new(10.0));
        assert_eq!(selection, TemplateSelection::default());
        assert_eq!(stats.cuts_considered, 0);
        let oracle = select_templates_exhaustive(&[], TemplateBudget::new(10.0));
        assert_eq!(oracle, TemplateSelection::default());
    }
}
