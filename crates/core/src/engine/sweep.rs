//! The sweep planner: answer a whole `Vec<Constraints>` request from memoised cut
//! pools.
//!
//! A *sweep* runs the same selection over many `(Nin, Nout)` pairs — the paper's
//! Fig. 11 experiment, capacity-planning batch jobs, design-space exploration traffic.
//! Run directly, every pair re-walks the exponential search tree of every basic block
//! in every iterative round, although the tight walks are strict subtrees of the loose
//! ones. The [`SweepPlanner`] exploits that containment with the [`crate::pool`]
//! subsystem:
//!
//! * the queried pairs are grouped by their (area, node-count) budgets, and each group
//!   gets **fill constraints** — the component-wise loosest ports of the group — under
//!   which each `(block, exclusion-state)` is enumerated exactly once
//!   ([`fill_single_cut`]) and each `(block, M)` tuple search exactly once
//!   ([`fill_multicut`]);
//! * every covered pair is then answered per round by *filtering* the memoised pool —
//!   byte-identical to the direct per-pair search, including the `identifier_calls`
//!   and `cuts_considered` accounting (see the module documentation of [`crate::pool`]
//!   for the exactness argument, and `tests/sweep_differential.rs` for the proof);
//! * a pair the fill does not cover, a fill that exhausts its exploration budget, or a
//!   planner with [`DriverOptions::cut_pool`] switched off falls back to the direct
//!   search path — the same code the non-sweep front-ends run.
//!
//! The savings are reported in [`SweepStats`]: the *logical* identifier-call count
//! (what the per-pair results claim, identical in both modes) versus the *physical*
//! enumerations actually performed (fills + fallbacks), which is strictly smaller for
//! any sweep of at least two covered pairs.

use std::collections::BTreeMap;

use ise_hw::CostModel;
use ise_ir::Program;
use rayon::prelude::*;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::multicut::{MultiCutOutcome, MultiCutSearch};
use crate::pool::{
    covers, fill_multicut, fill_single_cut, FillOutcome, FilledPool, FilledTuplePool,
};
use crate::selection::{select_optimal_core, SelectionResult};

use super::driver::{select_iteratively_core, BlockAnswer, DriverOptions};
use super::{Identifier, SingleCut};

/// Effort accounting of one planner, across every pair it answered.
///
/// `logical_identifier_calls` is what the emitted [`SelectionResult`]s report — by
/// construction identical between the pool-backed and the direct mode. The physical
/// counters measure the enumerations actually performed; their sum is the quantity the
/// pool exists to shrink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct SweepStats {
    /// Identifier calls reported by the produced results (identical in both modes).
    pub logical_identifier_calls: u64,
    /// Pool-fill enumerations performed (including ones that ended exhausted).
    pub pool_fills: u64,
    /// Fill enumerations rejected because they hit the exploration budget.
    pub exhausted_fills: u64,
    /// Cuts considered by the fill enumerations (the physical fill cost).
    pub fill_cuts_considered: u64,
    /// Queries answered from a memoised pool without touching the search tree.
    pub pool_answers: u64,
    /// Direct identifier invocations (uncovered pairs, exhausted fills, disabled pool).
    pub direct_calls: u64,
}

impl SweepStats {
    /// Search-tree enumerations actually performed: fills plus direct fallbacks.
    #[must_use]
    pub fn physical_identifier_calls(&self) -> u64 {
        self.pool_fills + self.direct_calls
    }

    /// Sums every counter of `other` into `self`.
    ///
    /// Lives next to the struct so that adding a counter cannot silently skip an
    /// aggregation site (the benchmarks fold per-planner stats through this).
    pub fn merge(&mut self, other: &SweepStats) {
        let SweepStats {
            logical_identifier_calls,
            pool_fills,
            exhausted_fills,
            fill_cuts_considered,
            pool_answers,
            direct_calls,
        } = other;
        self.logical_identifier_calls += logical_identifier_calls;
        self.pool_fills += pool_fills;
        self.exhausted_fills += exhausted_fills;
        self.fill_cuts_considered += fill_cuts_considered;
        self.pool_answers += pool_answers;
        self.direct_calls += direct_calls;
    }
}

/// Memo entry for one single-cut fill.
enum SingleFill {
    Pool(FilledPool),
    Exhausted,
}

/// Memo entry for one multiple-cut fill.
enum TupleFill {
    Pool(FilledTuplePool),
    Exhausted,
}

/// Answers an entire constraint sweep from memoised cut pools (see the module
/// documentation).
///
/// A planner is constructed for one program and one list of pairs; the memo lives for
/// the planner's lifetime, so the iterative and the optimal strategy (and repeated
/// `run_*` calls) share whatever fills they have in common.
pub struct SweepPlanner<'a> {
    program: &'a Program,
    model: &'a dyn CostModel,
    options: DriverOptions,
    exploration_budget: Option<u64>,
    /// One fill-constraint entry per (area, node-budget) group of the sweep pairs.
    fills: Vec<Constraints>,
    /// Memoised single-cut pools, keyed by (fill group, block, exclusion set).
    single_pools: BTreeMap<(usize, usize, Vec<u32>), SingleFill>,
    /// Memoised multiple-cut pools, keyed by (fill group, block, cut count).
    tuple_pools: BTreeMap<(usize, usize, usize), TupleFill>,
    stats: SweepStats,
}

/// The component-wise loosest fill constraints per (area, node-budget) group, in group
/// discovery order.
fn fill_groups(pairs: &[Constraints]) -> Vec<Constraints> {
    let mut groups: Vec<Constraints> = Vec::new();
    for pair in pairs {
        match groups
            .iter_mut()
            .find(|g| g.max_area == pair.max_area && g.max_nodes == pair.max_nodes)
        {
            Some(group) => {
                group.max_inputs = group.max_inputs.max(pair.max_inputs);
                group.max_outputs = group.max_outputs.max(pair.max_outputs);
            }
            None => groups.push(*pair),
        }
    }
    groups
}

impl<'a> SweepPlanner<'a> {
    /// Creates a planner for `program` answering the given `pairs`.
    ///
    /// The fill constraints are derived from the pairs (loosest ports per budget
    /// group), so by default every pair is covered and only exploration-budget
    /// exhaustion can force a fallback.
    #[must_use]
    pub fn new(
        program: &'a Program,
        model: &'a dyn CostModel,
        options: DriverOptions,
        pairs: &[Constraints],
    ) -> Self {
        SweepPlanner {
            program,
            model,
            options,
            exploration_budget: None,
            fills: fill_groups(pairs),
            single_pools: BTreeMap::new(),
            tuple_pools: BTreeMap::new(),
            stats: SweepStats::default(),
        }
    }

    /// Sets the per-invocation exploration budget the direct searches run under; fills
    /// run under the same budget and are rejected if they exhaust it.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }

    /// Overrides the fill constraints with a single explicit entry.
    ///
    /// Pairs the override does not cover (looser ports, different budgets) fall back
    /// to the direct per-pair search — the fallback the edge-case tests pin down.
    #[must_use]
    pub fn with_fill_constraints(mut self, fill: Constraints) -> Self {
        self.fills = vec![fill];
        self
    }

    /// The planner's effort accounting so far.
    #[must_use]
    pub fn stats(&self) -> SweepStats {
        self.stats
    }

    /// The fill group covering `pair`, if any.
    fn group_for(&self, pair: &Constraints) -> Option<usize> {
        self.fills.iter().position(|fill| covers(fill, pair))
    }

    /// The configured single-cut identifier used by every direct fallback.
    fn single_cut(&self) -> SingleCut {
        SingleCut::new().with_exploration_budget(self.exploration_budget)
    }

    /// Runs the iterative single-cut selection for every pair, pool-backed where
    /// covered. Results are byte-identical to per-pair
    /// [`select_program`](super::select_program) runs with the `"single-cut"`
    /// identifier.
    pub fn run_single_cut(&mut self, pairs: &[Constraints]) -> Vec<SelectionResult> {
        pairs
            .iter()
            .map(|pair| self.single_cut_selection(pair))
            .collect()
    }

    /// Runs the optimal (multiple-cut) selection for every pair, pool-backed where
    /// covered. Results are byte-identical to per-pair
    /// [`select_optimal`](crate::select_optimal) runs.
    pub fn run_optimal(&mut self, pairs: &[Constraints]) -> Vec<SelectionResult> {
        pairs
            .iter()
            .map(|pair| self.optimal_selection(pair))
            .collect()
    }

    /// Runs an arbitrary identifier per pair through the direct program driver (no
    /// pooling — used for the linear-time baselines, whose sweeps are cheap), keeping
    /// the planner's accounting complete.
    pub fn run_direct(
        &mut self,
        identifier: &dyn Identifier,
        pairs: &[Constraints],
    ) -> Vec<SelectionResult> {
        pairs
            .iter()
            .map(|pair| {
                let result = super::select_program(
                    self.program,
                    identifier,
                    *pair,
                    self.model,
                    self.options,
                );
                self.stats.logical_identifier_calls += result.identifier_calls;
                self.stats.direct_calls += result.identifier_calls;
                result
            })
            .collect()
    }

    /// One pair of the iterative strategy.
    fn single_cut_selection(&mut self, pair: &Constraints) -> SelectionResult {
        let group = if self.options.cut_pool {
            self.group_for(pair)
        } else {
            None
        };
        let result = match group {
            Some(group) => {
                let program = self.program;
                let max_instructions = self.options.max_instructions;
                select_iteratively_core(program, max_instructions, |work| {
                    self.answer_single_round(group, pair, work)
                })
            }
            None => {
                let identifier = self.single_cut();
                let result = super::select_program(
                    self.program,
                    &identifier,
                    *pair,
                    self.model,
                    self.options,
                );
                self.stats.direct_calls += result.identifier_calls;
                result
            }
        };
        self.stats.logical_identifier_calls += result.identifier_calls;
        result
    }

    /// Refreshes one round of stale blocks from the pools (filling on demand).
    fn answer_single_round(
        &mut self,
        group: usize,
        pair: &Constraints,
        work: &[(usize, &CutSet)],
    ) -> Vec<BlockAnswer> {
        let fill = self.fills[group];
        let budget = self.exploration_budget;
        let keys: Vec<(usize, usize, Vec<u32>)> = work
            .iter()
            .map(|(block, excl)| (group, *block, exclusion_key(excl)))
            .collect();
        // Fill the missing (block, exclusion) pools, in parallel when the driver's
        // block-level fan-out is on; insertion happens in block order either way.
        let missing: Vec<usize> = (0..work.len())
            .filter(|&i| !self.single_pools.contains_key(&keys[i]))
            .collect();
        let run_fill = |&i: &usize| {
            let (block, excl) = work[i];
            (
                i,
                fill_single_cut(
                    self.program.block(block),
                    Some(excl),
                    fill,
                    self.model,
                    budget,
                ),
            )
        };
        let filled: Vec<(usize, FillOutcome<FilledPool>)> =
            if self.options.parallel && missing.len() > 1 {
                missing.par_iter().map(run_fill).collect()
            } else {
                missing.iter().map(run_fill).collect()
            };
        for (i, outcome) in filled {
            self.stats.pool_fills += 1;
            let entry = match outcome {
                FillOutcome::Complete(pool) => {
                    self.stats.fill_cuts_considered += pool.fill_cuts_considered;
                    SingleFill::Pool(pool)
                }
                FillOutcome::Exhausted {
                    fill_cuts_considered,
                } => {
                    self.stats.exhausted_fills += 1;
                    self.stats.fill_cuts_considered += fill_cuts_considered;
                    SingleFill::Exhausted
                }
            };
            self.single_pools.insert(keys[i].clone(), entry);
        }
        // Answer every stale block: from the pool where valid, directly otherwise.
        let identifier = self.single_cut();
        let pools = &self.single_pools;
        let stats = &mut self.stats;
        let program = self.program;
        let model = self.model;
        let levels = self.options.intra_block_levels;
        work.iter()
            .zip(&keys)
            .map(
                |(&(block, excl), key)| match pools.get(key).expect("filled or memoised above") {
                    SingleFill::Pool(pool) => {
                        stats.pool_answers += 1;
                        let answer = pool.answer(pair);
                        BlockAnswer {
                            best: answer.best,
                            cuts_considered: answer.stats.cuts_considered,
                        }
                    }
                    SingleFill::Exhausted => {
                        stats.direct_calls += 1;
                        let outcome = identifier.identify_split(
                            program.block(block),
                            Some(excl),
                            pair,
                            model,
                            levels,
                        );
                        BlockAnswer {
                            best: outcome.best,
                            cuts_considered: outcome.stats.cuts_considered,
                        }
                    }
                },
            )
            .collect()
    }

    /// One pair of the optimal strategy.
    fn optimal_selection(&mut self, pair: &Constraints) -> SelectionResult {
        let group = if self.options.cut_pool {
            self.group_for(pair)
        } else {
            None
        };
        let result = match group {
            Some(group) => {
                let program = self.program;
                let max_instructions = self.options.max_instructions;
                select_optimal_core(program, max_instructions, |result, block, m| {
                    let outcome = self.answer_tuple(group, pair, block, m);
                    result.identifier_calls += 1;
                    result.cuts_considered += outcome.stats.cuts_considered;
                    let weight = program.block(block).exec_count() as f64;
                    (outcome.total_merit * weight, outcome.cuts)
                })
            }
            None => {
                let mut options = crate::SelectionOptions::new(self.options.max_instructions);
                if let Some(budget) = self.exploration_budget {
                    options = options.with_exploration_budget(budget);
                }
                let result = crate::select_optimal(self.program, *pair, self.model, options);
                self.stats.direct_calls += result.identifier_calls;
                result
            }
        };
        self.stats.logical_identifier_calls += result.identifier_calls;
        result
    }

    /// Answers one `(block, M)` multiple-cut query, filling its pool on first use.
    fn answer_tuple(
        &mut self,
        group: usize,
        pair: &Constraints,
        block: usize,
        m: usize,
    ) -> MultiCutOutcome {
        let key = (group, block, m);
        if !self.tuple_pools.contains_key(&key) {
            self.stats.pool_fills += 1;
            let outcome = fill_multicut(
                self.program.block(block),
                None,
                self.fills[group],
                self.model,
                m,
                self.exploration_budget,
            );
            let entry = match outcome {
                FillOutcome::Complete(pool) => {
                    self.stats.fill_cuts_considered += pool.fill_cuts_considered;
                    TupleFill::Pool(pool)
                }
                FillOutcome::Exhausted {
                    fill_cuts_considered,
                } => {
                    self.stats.exhausted_fills += 1;
                    self.stats.fill_cuts_considered += fill_cuts_considered;
                    TupleFill::Exhausted
                }
            };
            self.tuple_pools.insert(key, entry);
        }
        let stats = &mut self.stats;
        match self.tuple_pools.get(&key).expect("inserted above") {
            TupleFill::Pool(pool) => {
                stats.pool_answers += 1;
                let answer = pool.answer(pair);
                MultiCutOutcome::from_payload(answer.best, answer.stats)
            }
            TupleFill::Exhausted => {
                stats.direct_calls += 1;
                let mut search =
                    MultiCutSearch::new(self.program.block(block), *pair, self.model, m);
                if let Some(budget) = self.exploration_budget {
                    search = search.with_exploration_budget(budget);
                }
                search.run()
            }
        }
    }
}

/// Stable memo key of an exclusion set: its node indices in ascending order.
fn exclusion_key(excl: &CutSet) -> Vec<u32> {
    excl.iter().map(|id| id.index() as u32).collect()
}

/// Answers a sweep for an arbitrary identifier: pool-backed for `"single-cut"`,
/// direct per-pair for everything else. This is the entry point the `ise-api`
/// session and the CLI use.
pub fn sweep_program(
    program: &Program,
    identifier: &dyn Identifier,
    exploration_budget: Option<u64>,
    pairs: &[Constraints],
    model: &dyn CostModel,
    options: DriverOptions,
) -> (Vec<SelectionResult>, SweepStats) {
    let mut planner = SweepPlanner::new(program, model, options, pairs)
        .with_exploration_budget(exploration_budget);
    let results = if identifier.name() == "single-cut" {
        planner.run_single_cut(pairs)
    } else {
        planner.run_direct(identifier, pairs)
    };
    (results, planner.stats())
}

// The dedicated differential suites live in `tests/sweep_differential.rs` and
// `tests/cut_pool.rs` at the workspace root; the unit tests here pin the planner's
// bookkeeping itself.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::select_program;
    use crate::SelectionOptions;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn toy_program() -> Program {
        let mut p = Program::new("toy");
        let mut b = DfgBuilder::new("hot");
        b.exec_count(1000);
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let m = b.mul(x, y);
        let s = b.add(m, acc);
        let n = b.mul(s, y);
        let t = b.add(n, x);
        b.output("acc", t);
        p.add_block(b.finish());
        let mut b = DfgBuilder::new("warm");
        b.exec_count(50);
        let v = b.input("v");
        let lo = b.input("lo");
        let clipped = b.max(v, lo);
        let scaled = b.shl(clipped, b.imm(1));
        b.output("o", scaled);
        p.add_block(b.finish());
        p
    }

    fn pairs() -> Vec<Constraints> {
        Constraints::paper_sweep()
    }

    #[test]
    fn pool_backed_iterative_matches_direct_per_pair_runs() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        let options = DriverOptions::new(8);
        let mut planner = SweepPlanner::new(&p, &model, options, &pairs());
        let pooled = planner.run_single_cut(&pairs());
        for (pair, pooled) in pairs().iter().zip(&pooled) {
            let direct = select_program(&p, &SingleCut::new(), *pair, &model, options);
            assert_eq!(pooled, &direct, "{pair}");
        }
        let stats = planner.stats();
        assert!(stats.physical_identifier_calls() < stats.logical_identifier_calls);
        assert_eq!(stats.exhausted_fills, 0);
        assert!(stats.pool_answers > 0);
    }

    #[test]
    fn pool_backed_optimal_matches_direct_per_pair_runs() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        let options = DriverOptions::new(4);
        let mut planner = SweepPlanner::new(&p, &model, options, &pairs());
        let pooled = planner.run_optimal(&pairs());
        for (pair, pooled) in pairs().iter().zip(&pooled) {
            let direct = crate::select_optimal(&p, *pair, &model, SelectionOptions::new(4));
            assert_eq!(pooled, &direct, "{pair}");
        }
        assert!(
            planner.stats().physical_identifier_calls() < planner.stats().logical_identifier_calls
        );
    }

    #[test]
    fn disabled_pool_and_uncovered_pairs_fall_back_to_direct() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        let options = DriverOptions::new(8).with_cut_pool(false);
        let mut planner = SweepPlanner::new(&p, &model, options, &pairs());
        let results = planner.run_single_cut(&pairs());
        assert_eq!(
            planner.stats().physical_identifier_calls(),
            planner.stats().logical_identifier_calls
        );
        assert_eq!(planner.stats().pool_fills, 0);
        for (pair, result) in pairs().iter().zip(&results) {
            let direct =
                select_program(&p, &SingleCut::new(), *pair, &model, DriverOptions::new(8));
            assert_eq!(result, &direct, "{pair}");
        }

        // Fill constraints tighter than a queried pair: that pair must be answered
        // directly, and still byte-identically.
        let options = DriverOptions::new(8);
        let mut planner = SweepPlanner::new(&p, &model, options, &pairs())
            .with_fill_constraints(Constraints::new(2, 1));
        let results = planner.run_single_cut(&pairs());
        for (pair, result) in pairs().iter().zip(&results) {
            let direct = select_program(&p, &SingleCut::new(), *pair, &model, options);
            assert_eq!(result, &direct, "{pair}");
        }
        assert!(planner.stats().direct_calls > 0);
    }

    #[test]
    fn fill_groups_are_loosest_per_budget() {
        let groups = fill_groups(&[
            Constraints::new(2, 1),
            Constraints::new(4, 2),
            Constraints::new(3, 4),
            Constraints::new(2, 1).with_max_nodes(4),
            Constraints::new(6, 1).with_max_nodes(4),
        ]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].max_inputs, 4);
        assert_eq!(groups[0].max_outputs, 4);
        assert_eq!(groups[1].max_inputs, 6);
        assert_eq!(groups[1].max_outputs, 1);
        assert_eq!(groups[1].max_nodes, Some(4));
    }
}
