//! The unified identification engine.
//!
//! The paper's algorithm and its baselines historically lived behind five disjoint APIs
//! (`SingleCutSearch`, `MultiCutSearch`, `exhaustive`, and the two baseline types in
//! `ise-baselines`). This module unifies them behind one pluggable abstraction:
//!
//! * [`Identifier`] — a per-basic-block identification algorithm: given a dataflow
//!   graph, the microarchitectural [`Constraints`] and a [`CostModel`], produce a
//!   [`SearchOutcome`] (candidate cuts plus shared [`SearchStats`]);
//! * [`SingleCut`], [`MultiCut`], [`Exhaustive`] — the engine adapters for this crate's
//!   three algorithms (the baselines implement [`Identifier`] in `ise-baselines`);
//! * [`registry::IdentifierRegistry`] — algorithms looked up by name string, so
//!   benchmarks, examples and tests can be driven by data instead of hand-written calls;
//! * [`driver`] — the program-level driver that fans identification out across basic
//!   blocks with `rayon` and merges per-block results into a deterministic
//!   [`SelectionResult`](crate::selection::SelectionResult).
//!
//! [`SearchStats`]: crate::search::SearchStats

pub mod corpus;
pub mod driver;
pub mod registry;
pub mod sweep;
pub mod templates;
pub mod warm;

use ise_hw::CostModel;
use ise_ir::Dfg;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::multicut::MultiCutSearch;
use crate::search::{SearchOutcome, SearchStats, SingleCutSearch};

pub use corpus::{
    run_corpus, run_corpus_streaming, run_corpus_streaming_warm, run_corpus_warm, CorpusOptions,
    CorpusOutcome, CorpusPool, CorpusStats, CorpusStreamOutcome,
};
pub use driver::{identify_blocks, select_program, DriverOptions};
pub use registry::{IdentifierConfig, IdentifierFactory, IdentifierRegistry};
pub use sweep::{sweep_program, SweepPlanner, SweepStats};
pub use templates::{
    extract_templates, run_template_selection, select_templates, select_templates_budgeted,
    select_templates_exhaustive, SiteRef, Template, TemplateBudget, TemplateReport,
    TemplateSelectPolicy, TemplateSelection,
};
pub use warm::{BudgetGroup, WarmCacheConfig, WarmCacheStats, WarmPoolCache, SNAPSHOT_FILE};

/// A pluggable per-basic-block identification algorithm.
///
/// Implementors must be `Sync + Send`: the program driver shares one instance across
/// the threads of its per-block fan-out, and the batch front-end moves boxed
/// identifiers into worker tasks. All bundled identifiers are stateless apart from
/// their configuration, so this is free. `Debug` is required so that sessions and
/// error reports can show which algorithm they hold.
pub trait Identifier: Sync + Send + std::fmt::Debug {
    /// Stable registry name of the algorithm (lower-case, e.g. `"single-cut"`).
    fn name(&self) -> &'static str;

    /// Identifies candidate instructions in one basic block.
    fn identify(
        &self,
        dfg: &Dfg,
        constraints: &Constraints,
        model: &dyn CostModel,
    ) -> SearchOutcome {
        self.identify_excluding(dfg, None, constraints, model)
    }

    /// Identifies candidate instructions while keeping the `excluded` nodes in software.
    ///
    /// The iterative selection driver uses this to re-run an algorithm after committing
    /// a cut, with the committed nodes off limits.
    fn identify_excluding(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
    ) -> SearchOutcome;

    /// [`identify_excluding`](Self::identify_excluding) with an intra-block parallelism
    /// hint: split the top `split_levels` levels of the algorithm's decision tree into
    /// parallel subtree tasks (see [`crate::kernel::SearchKernel`]).
    ///
    /// Implementations must stay byte-identical to the sequential path — the hint only
    /// trades wall-clock for cores. The default ignores the hint, which is correct for
    /// algorithms without a decision tree to split (the linear-time baselines).
    fn identify_split(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
        split_levels: usize,
    ) -> SearchOutcome {
        let _ = split_levels;
        self.identify_excluding(dfg, excluded, constraints, model)
    }

    /// Whether re-running the algorithm with a grown exclusion set can discover cuts
    /// that were not in the first outcome's candidate list.
    ///
    /// `true` for the exact searches (they return only the single best tuple, so a
    /// second run can find the second-best cut); `false` for the one-shot baselines,
    /// which enumerate all their disjoint candidates up front. The driver uses this to
    /// pick between the iterative and the one-shot selection strategy.
    fn refines_under_exclusion(&self) -> bool {
        true
    }
}

/// Engine adapter for the exact single-cut search of Section 6.1.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleCut {
    /// Optional limit on the number of cuts considered per invocation.
    pub exploration_budget: Option<u64>,
}

impl SingleCut {
    /// Creates the adapter with no exploration budget.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or clears) the per-invocation exploration budget.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }
}

impl Identifier for SingleCut {
    fn name(&self) -> &'static str {
        "single-cut"
    }

    fn identify_excluding(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
    ) -> SearchOutcome {
        self.identify_split(dfg, excluded, constraints, model, 0)
    }

    fn identify_split(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
        split_levels: usize,
    ) -> SearchOutcome {
        let mut search =
            SingleCutSearch::new(dfg, *constraints, model).with_subtree_parallelism(split_levels);
        if let Some(excluded) = excluded {
            search = search.with_excluded(excluded);
        }
        if let Some(budget) = self.exploration_budget {
            search = search.with_exploration_budget(budget);
        }
        search.run()
    }
}

/// Engine adapter for the exact multiple-cut search of Section 6.2.
///
/// One invocation returns up to `slots` simultaneous disjoint cuts whose summed merit is
/// maximal; they all appear in [`SearchOutcome::candidates`].
#[derive(Debug, Clone, Copy)]
pub struct MultiCut {
    /// Number of simultaneous cuts searched for (`M`).
    pub slots: usize,
    /// Optional limit on the number of assignments considered per invocation.
    pub exploration_budget: Option<u64>,
}

impl MultiCut {
    /// Creates the adapter for `slots` simultaneous cuts.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero or greater than 255 (the limits of the underlying
    /// search).
    #[must_use]
    pub fn new(slots: usize) -> Self {
        assert!((1..=255).contains(&slots), "slots must be in 1..=255");
        MultiCut {
            slots,
            exploration_budget: None,
        }
    }

    /// Sets (or clears) the per-invocation exploration budget.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }
}

impl Default for MultiCut {
    fn default() -> Self {
        MultiCut::new(2)
    }
}

impl Identifier for MultiCut {
    fn name(&self) -> &'static str {
        "multicut"
    }

    fn identify_excluding(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
    ) -> SearchOutcome {
        self.identify_split(dfg, excluded, constraints, model, 0)
    }

    fn identify_split(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
        split_levels: usize,
    ) -> SearchOutcome {
        let mut search = MultiCutSearch::new(dfg, *constraints, model, self.slots)
            .with_subtree_parallelism(split_levels);
        if let Some(excluded) = excluded {
            search = search.with_excluded(excluded);
        }
        if let Some(budget) = self.exploration_budget {
            search = search.with_exploration_budget(budget);
        }
        let outcome = search.run();
        SearchOutcome::from_candidates(outcome.cuts, outcome.stats)
    }
}

/// Engine adapter for the brute-force enumeration oracle.
///
/// The oracle is exponential with no pruning; blocks larger than `node_limit` are not
/// enumerated and yield an empty outcome with
/// [`SearchStats::budget_exhausted`](crate::search::SearchStats::budget_exhausted) set,
/// so that driving the oracle over a whole program cannot hang on one big block.
#[derive(Debug, Clone, Copy)]
pub struct Exhaustive {
    /// Largest block (in operation nodes) the oracle will enumerate.
    pub node_limit: usize,
}

impl Exhaustive {
    /// Creates the adapter with the default 20-node limit.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the enumeration limit (clamped to the oracle's hard 24-node maximum).
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        self.node_limit = limit.min(24);
        self
    }
}

impl Default for Exhaustive {
    fn default() -> Self {
        Exhaustive { node_limit: 20 }
    }
}

impl Identifier for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn identify_excluding(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
    ) -> SearchOutcome {
        self.identify_split(dfg, excluded, constraints, model, 0)
    }

    fn identify_split(
        &self,
        dfg: &Dfg,
        excluded: Option<&CutSet>,
        constraints: &Constraints,
        model: &dyn CostModel,
        split_levels: usize,
    ) -> SearchOutcome {
        // Re-clamp here: `node_limit` is a public field, so it can be set above the
        // oracle's hard 24-node maximum without going through `with_node_limit`, and an
        // oversized block must be skipped rather than reach the panicking assert.
        if dfg.node_count() > self.node_limit.min(24) {
            let stats = SearchStats {
                budget_exhausted: true,
                ..SearchStats::default()
            };
            return SearchOutcome::from_best(None, stats);
        }
        let outcome = crate::exhaustive::best_cut_exhaustive_split(
            dfg,
            excluded,
            *constraints,
            model,
            split_levels,
        );
        let stats = SearchStats {
            cuts_considered: outcome.stats.cuts_enumerated,
            feasible_cuts: outcome.stats.feasible_cuts,
            best_updates: u64::from(outcome.best.is_some()),
            ..SearchStats::default()
        };
        SearchOutcome::from_best(outcome.best, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn mac_block() -> Dfg {
        let mut b = DfgBuilder::new("mac");
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let prod = b.mul(x, y);
        let sum = b.add(prod, acc);
        let scaled = b.shl(sum, b.imm(1));
        b.output("acc", scaled);
        b.finish()
    }

    #[test]
    fn single_cut_adapter_matches_the_direct_search() {
        let g = mac_block();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(3, 1);
        let direct = crate::search::identify_single_cut(&g, constraints, &model);
        let engine = SingleCut::new().identify(&g, &constraints, &model);
        assert_eq!(direct, engine);
        assert_eq!(engine.candidates.len(), usize::from(engine.best.is_some()));
    }

    #[test]
    fn multicut_adapter_reports_all_cuts_as_candidates() {
        let mut b = DfgBuilder::new("two_chains");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let e = b.input("e");
        let m1 = b.mul(a, c);
        let s1 = b.add(m1, d);
        let m2 = b.mul(d, e);
        let s2 = b.add(m2, a);
        b.output("o1", s1);
        b.output("o2", s2);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let outcome = MultiCut::new(2).identify(&g, &constraints, &model);
        assert_eq!(outcome.candidates.len(), 2);
        assert!(!outcome.candidates[0]
            .cut
            .intersects(&outcome.candidates[1].cut));
        assert_eq!(outcome.best_merit(), outcome.candidates[0].evaluation.merit);
        assert!(outcome.total_merit() > outcome.best_merit());
    }

    #[test]
    fn exhaustive_adapter_agrees_with_single_cut_and_respects_its_limit() {
        let g = mac_block();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(3, 1);
        let oracle = Exhaustive::new().identify(&g, &constraints, &model);
        let fast = SingleCut::new().identify(&g, &constraints, &model);
        assert!((oracle.best_merit() - fast.best_merit()).abs() < 1e-9);

        let tiny_limit = Exhaustive::new().with_node_limit(2);
        let skipped = tiny_limit.identify(&g, &constraints, &model);
        assert!(skipped.best.is_none());
        assert!(skipped.stats.budget_exhausted);
    }

    /// Setting the public field above the oracle's hard 24-node maximum must skip
    /// oversized blocks rather than reach the panicking enumeration.
    #[test]
    fn exhaustive_field_above_hard_cap_skips_instead_of_panicking() {
        let mut b = DfgBuilder::new("big");
        let x = b.input("x");
        let mut v = x;
        for _ in 0..30 {
            v = b.add(v, b.imm(1));
        }
        b.output("o", v);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let oracle = Exhaustive { node_limit: 64 };
        let outcome = oracle.identify(&g, &Constraints::new(4, 2), &model);
        assert!(outcome.best.is_none());
        assert!(outcome.stats.budget_exhausted);
    }

    #[test]
    fn exclusion_is_honoured_through_the_trait() {
        let g = mac_block();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(4, 2);
        for identifier in [
            &SingleCut::new() as &dyn Identifier,
            &MultiCut::new(2),
            &Exhaustive::new(),
        ] {
            let first = identifier.identify(&g, &constraints, &model);
            let best = first.best.expect("profitable cut exists");
            let second = identifier.identify_excluding(&g, Some(&best.cut), &constraints, &model);
            for candidate in &second.candidates {
                assert!(
                    !candidate.cut.intersects(&best.cut),
                    "{}: excluded nodes re-appeared",
                    identifier.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn zero_multicut_slots_are_rejected() {
        let _ = MultiCut::new(0);
    }
}
