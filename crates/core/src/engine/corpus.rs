//! Corpus-scale identification: structural dedup and cross-program pool sharing.
//!
//! A corpus — many programs analysed under one constraint set and one cost model — is
//! full of repeated structure: unrolled loop bodies, template-instantiated filters,
//! blocks copy-pasted between programs with nothing but node numbering changed. Run
//! naively, every one of those blocks pays for its own exponential enumeration.
//!
//! The [`CorpusPool`] removes that redundancy *exactly*. Every block is reduced to its
//! [`StructuralForm`]: an isomorphism-invariant [`StructuralKey`] plus the permutation
//! between original node ids and canonical positions. Blocks whose keys are byte-equal
//! walk identical search trees in the canonical order (see [`crate::structural`]), so
//! the first block to query a `(key, exclusion-state)` pays for one recording
//! enumeration ([`fill_single_cut`]) and the fill is stored **in canonical
//! coordinates** — making it independent of *which* isomorphic block happened to fill
//! it, and therefore independent of thread scheduling. Every later query translates
//! the canonical answer onto its own node ids and reconstructs the effort counters
//! from the recorded attempt histogram: byte-identical to what its own direct search
//! would have produced, `identifier_calls` and `cuts_considered` included
//! (`tests/corpus_differential.rs` holds the proof).
//!
//! Storage lives in a [`WarmPoolCache`] (see [`super::warm`]): a run-local pool
//! creates a private cache, while serve mode shares one process-lifetime cache
//! across every request via [`run_corpus_warm`] — because fills are canonical and
//! keyed by `(structure, exclusion, budget group)`, a pre-warmed cache changes
//! nothing but the work saved.
//!
//! [`run_corpus`] drives a whole corpus through this pool, sharding programs across
//! the work-stealing scheduler of the `rayon` shim ([`rayon::sharded_map`]): workers
//! pull the next unanalysed program from an atomic cursor, results are reassembled in
//! input order, and per-shard progress comes back as telemetry. With
//! [`CorpusOptions::dedup`] off the same entry point runs the plain per-program
//! driver — the reference the differential tests compare against, and the baseline
//! the `corpus` benchmark measures speedups from. [`run_corpus_streaming`] feeds the
//! same machinery from an iterator with a bounded number of programs in flight, so
//! huge corpora never have to be materialised up front.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ise_hw::CostModel;
use ise_ir::Program;
use rayon::ShardProgress;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::pool::{fill_single_cut, FillOutcome};
use crate::search::IdentifiedCut;
use crate::selection::SelectionResult;
use crate::structural::{StructuralForm, StructuralKey};

use super::driver::{select_iteratively_core, BlockAnswer, DriverOptions};
use super::templates::{TemplateBudget, TemplateReport};
use super::warm::{
    BudgetGroup, CacheKey, CanonicalCandidate, CanonicalFill, FillEntry, WarmCacheConfig,
    WarmPoolCache,
};
use super::{Identifier, SingleCut};

/// Options of one corpus run.
#[derive(Debug, Clone, Copy)]
pub struct CorpusOptions {
    /// The microarchitectural constraints every program is analysed under.
    pub constraints: Constraints,
    /// Program-driver options (instruction budget, parallelism knobs).
    pub driver: DriverOptions,
    /// Optional exploration budget per identifier invocation; pool fills run under the
    /// same budget and fall back to direct searches when they exhaust it.
    pub exploration_budget: Option<u64>,
    /// Share enumerations between structurally isomorphic blocks. Off, every program
    /// runs the plain per-program driver — the reference path, byte-identical in its
    /// results but repeating every enumeration.
    pub dedup: bool,
    /// Optional cross-site template selection: when set, the run additionally
    /// extracts instruction templates across the whole corpus and selects them under
    /// this area budget (see [`super::templates`]). Purely additive — the per-program
    /// selections are byte-identical with or without it.
    pub templates: Option<TemplateBudget>,
}

impl CorpusOptions {
    /// Dedup-enabled corpus options with default driver settings.
    #[must_use]
    pub fn new(constraints: Constraints) -> Self {
        CorpusOptions {
            constraints,
            driver: DriverOptions::default(),
            exploration_budget: None,
            dedup: true,
            templates: None,
        }
    }

    /// Sets the program-driver options.
    #[must_use]
    pub fn with_driver(mut self, driver: DriverOptions) -> Self {
        self.driver = driver;
        self
    }

    /// Sets (or clears) the per-invocation exploration budget.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }

    /// Enables or disables structural dedup.
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Sets (or clears) the cross-site template-selection budget.
    #[must_use]
    pub fn with_templates(mut self, templates: Option<TemplateBudget>) -> Self {
        self.templates = templates;
        self
    }
}

/// Effort accounting of one corpus run.
///
/// The logical counters are what the emitted [`SelectionResult`]s report — identical
/// with dedup on or off. The physical counters measure enumerations actually paid;
/// their ratio is the quantity the pool exists to improve.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct CorpusStats {
    /// Programs analysed.
    pub programs: u64,
    /// Basic blocks across the whole corpus.
    pub blocks_seen: u64,
    /// Distinct `(structural key, exclusion state)` slots this run touched.
    pub unique_keys: u64,
    /// Identifier invocations the results report (identical in both modes).
    pub logical_identifier_calls: u64,
    /// Cuts considered according to the results (identical in both modes).
    pub logical_cuts_considered: u64,
    /// Recording enumerations performed (pool misses, including exhausted ones).
    pub pool_fills: u64,
    /// Queries answered by translating a memoised fill — enumerations *not* paid.
    pub pool_answers: u64,
    /// Direct searches run because a fill exhausted its exploration budget.
    pub direct_calls: u64,
    /// Fills rejected for exhausting the exploration budget.
    pub exhausted_fills: u64,
    /// Cuts physically enumerated (fill walks plus direct fallbacks). With dedup off
    /// this equals `logical_cuts_considered`.
    pub physical_cuts_considered: u64,
    /// Structural-key hash collisions observed (distinct serializations, equal hash).
    /// Purely diagnostic: equality is byte-based, so collisions cost nothing but a
    /// bucket scan.
    pub key_collisions: u64,
    /// Whether the run had dedup enabled.
    pub dedup: bool,
}

impl CorpusStats {
    /// Fraction of identifier invocations answered without enumerating, in `[0, 1]`.
    #[must_use]
    pub fn dedup_hit_rate(&self) -> f64 {
        if self.logical_identifier_calls == 0 {
            0.0
        } else {
            self.pool_answers as f64 / self.logical_identifier_calls as f64
        }
    }
}

/// Everything one corpus run produces: per-program selections in input order, the
/// effort accounting, and the scheduler's per-shard telemetry.
#[derive(Debug, Clone)]
pub struct CorpusOutcome {
    /// One selection per input program, in input order (independent of scheduling).
    pub selections: Vec<SelectionResult>,
    /// The run's effort accounting.
    pub stats: CorpusStats,
    /// How many programs each worker shard processed (telemetry; varies with
    /// scheduling, never affects `selections` or the deterministic stats).
    pub shards: Vec<ShardProgress>,
    /// The cross-site template selection, present iff [`CorpusOptions::templates`]
    /// was set.
    pub templates: Option<TemplateReport>,
}

/// Everything one *streaming* corpus run produces. Selections are handed to the
/// caller's `emit` callback one program at a time instead of being collected, so
/// the outcome carries only accounting and telemetry.
#[derive(Debug, Clone)]
pub struct CorpusStreamOutcome {
    /// The run's effort accounting.
    pub stats: CorpusStats,
    /// Per-shard telemetry, aggregated over all chunks.
    pub shards: Vec<ShardProgress>,
}

/// Per-run identity of one pool slot, for the `unique_keys` / collision accounting.
#[derive(PartialEq, Eq, Hash)]
struct SeenKey {
    structural: StructuralKey,
    excluded: Vec<u32>,
}

/// Per-run bookkeeping the pool maintains under one small lock (the heavy slot
/// storage lives in the striped [`WarmPoolCache`]).
#[derive(Default)]
struct RunBook {
    /// Distinct `(structural key, exclusion state)` pairs this run touched.
    seen: HashSet<SeenKey>,
    /// First-seen canonical serialization per 64-bit hash, to surface collisions.
    hash_census: HashMap<u64, Vec<u8>>,
    collisions: u64,
}

/// The shared cross-program memo: one [`fill_single_cut`] enumeration per distinct
/// `(structural key, exclusion state, budget group)`, answered by node-relabelling
/// translation out of a [`WarmPoolCache`].
pub struct CorpusPool<'m> {
    model: &'m dyn CostModel,
    constraints: Constraints,
    exploration_budget: Option<u64>,
    group: BudgetGroup,
    cache: Arc<WarmPoolCache>,
    run: Mutex<RunBook>,
    logical_calls: AtomicU64,
    logical_cuts: AtomicU64,
    pool_fills: AtomicU64,
    pool_answers: AtomicU64,
    direct_calls: AtomicU64,
    exhausted_fills: AtomicU64,
    physical_cuts: AtomicU64,
}

impl<'m> CorpusPool<'m> {
    /// Creates an empty pool for one constraint set and cost model, backed by a
    /// private run-lifetime cache (the pre-serve behaviour, unchanged).
    #[must_use]
    pub fn new(
        constraints: Constraints,
        model: &'m dyn CostModel,
        exploration_budget: Option<u64>,
    ) -> Self {
        let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig::default()));
        CorpusPool::with_cache(constraints, model, exploration_budget, cache)
    }

    /// Creates a pool backed by a shared, possibly pre-warmed cache.
    ///
    /// Because fills are canonical, deterministic and keyed by budget group, a
    /// warm cache changes which queries pay for enumerations — never what any
    /// query answers. The caller is responsible for pairing the cache with the
    /// cost model its fills were computed under.
    #[must_use]
    pub fn with_cache(
        constraints: Constraints,
        model: &'m dyn CostModel,
        exploration_budget: Option<u64>,
        cache: Arc<WarmPoolCache>,
    ) -> Self {
        CorpusPool {
            model,
            constraints,
            exploration_budget,
            group: BudgetGroup::new(&constraints, exploration_budget),
            cache,
            run: Mutex::new(RunBook::default()),
            logical_calls: AtomicU64::new(0),
            logical_cuts: AtomicU64::new(0),
            pool_fills: AtomicU64::new(0),
            pool_answers: AtomicU64::new(0),
            direct_calls: AtomicU64::new(0),
            exhausted_fills: AtomicU64::new(0),
            physical_cuts: AtomicU64::new(0),
        }
    }

    /// Runs the iterative selection for one program, answering every per-block
    /// identification from the shared pool.
    ///
    /// Byte-identical — selection, statistics, `identifier_calls` — to
    /// [`select_program`](super::select_program) with the `"single-cut"` identifier,
    /// whatever mixture of fills and translations serves the queries.
    #[must_use]
    pub fn select_program(&self, program: &Program, options: DriverOptions) -> SelectionResult {
        let forms: Vec<StructuralForm> = program.blocks().iter().map(StructuralForm::of).collect();
        select_iteratively_core(program, options.max_instructions, |work| {
            work.iter()
                .map(|&(block, excl)| {
                    self.answer(
                        program,
                        block,
                        &forms[block],
                        excl,
                        options.intra_block_levels,
                    )
                })
                .collect()
        })
    }

    /// Answers one `(block, exclusion)` identification query from the pool, filling
    /// its slot on first use.
    fn answer(
        &self,
        program: &Program,
        block: usize,
        form: &StructuralForm,
        excluded: &CutSet,
        split_levels: usize,
    ) -> BlockAnswer {
        self.logical_calls.fetch_add(1, Ordering::Relaxed);
        let dfg = program.block(block);
        let excluded_canonical = form.to_canonical(excluded);
        let hash = form.key().hash();
        {
            let mut run = self.run.lock().expect("corpus pool lock poisoned");
            let newly_seen = run.seen.insert(SeenKey {
                structural: form.key().clone(),
                excluded: excluded_canonical.clone(),
            });
            if newly_seen {
                match run.hash_census.entry(hash) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(form.key().bytes().to_vec());
                    }
                    std::collections::hash_map::Entry::Occupied(seen) => {
                        if seen.get() != form.key().bytes() {
                            run.collisions += 1;
                        }
                    }
                }
            }
        }
        let key = CacheKey {
            structural: form.key().clone(),
            excluded: excluded_canonical,
            group: self.group,
        };
        let cell = self.cache.lookup(&key);
        let mut filled_now = false;
        let entry = cell.get_or_init(|| {
            filled_now = true;
            self.fill(dfg, form, excluded)
        });
        if filled_now {
            self.cache.record_fill(&key, entry);
        } else {
            self.pool_answers.fetch_add(1, Ordering::Relaxed);
        }
        match entry {
            FillEntry::Complete(fill) => {
                let stats = fill.histogram.reconstruct(self.constraints.max_outputs);
                self.logical_cuts
                    .fetch_add(stats.cuts_considered, Ordering::Relaxed);
                let best = fill
                    .store
                    .answer(self.constraints.max_inputs, self.constraints.max_outputs)
                    .map(|entry| IdentifiedCut {
                        cut: form.cut_from_canonical(dfg, &entry.payload.positions),
                        evaluation: entry.payload.evaluation.clone(),
                    });
                BlockAnswer {
                    best,
                    cuts_considered: stats.cuts_considered,
                }
            }
            FillEntry::Exhausted => {
                // A truncated walk is visit-order-dependent and cannot be translated;
                // fall back to the direct search, exactly like the sweep planner.
                self.direct_calls.fetch_add(1, Ordering::Relaxed);
                let identifier = SingleCut::new().with_exploration_budget(self.exploration_budget);
                let outcome = identifier.identify_split(
                    dfg,
                    Some(excluded),
                    &self.constraints,
                    self.model,
                    split_levels,
                );
                self.logical_cuts
                    .fetch_add(outcome.stats.cuts_considered, Ordering::Relaxed);
                self.physical_cuts
                    .fetch_add(outcome.stats.cuts_considered, Ordering::Relaxed);
                BlockAnswer {
                    best: outcome.best,
                    cuts_considered: outcome.stats.cuts_considered,
                }
            }
        }
    }

    /// Performs one recording enumeration and re-expresses it in canonical
    /// coordinates.
    fn fill(&self, dfg: &ise_ir::Dfg, form: &StructuralForm, excluded: &CutSet) -> FillEntry {
        self.pool_fills.fetch_add(1, Ordering::Relaxed);
        match fill_single_cut(
            dfg,
            Some(excluded),
            self.constraints,
            self.model,
            self.exploration_budget,
        ) {
            FillOutcome::Complete(pool) => {
                self.physical_cuts
                    .fetch_add(pool.fill_cuts_considered, Ordering::Relaxed);
                FillEntry::Complete(CanonicalFill {
                    store: pool.store.map(|identified| CanonicalCandidate {
                        positions: form.to_canonical(&identified.cut),
                        evaluation: identified.evaluation,
                    }),
                    histogram: pool.histogram,
                })
            }
            FillOutcome::Exhausted {
                fill_cuts_considered,
            } => {
                self.exhausted_fills.fetch_add(1, Ordering::Relaxed);
                self.physical_cuts
                    .fetch_add(fill_cuts_considered, Ordering::Relaxed);
                FillEntry::Exhausted
            }
        }
    }

    /// Snapshot of the pool's accounting (the per-corpus fields are filled in by
    /// [`run_corpus`]).
    fn stats(&self) -> CorpusStats {
        let run = self.run.lock().expect("corpus pool lock poisoned");
        CorpusStats {
            programs: 0,
            blocks_seen: 0,
            unique_keys: run.seen.len() as u64,
            logical_identifier_calls: self.logical_calls.load(Ordering::Relaxed),
            logical_cuts_considered: self.logical_cuts.load(Ordering::Relaxed),
            pool_fills: self.pool_fills.load(Ordering::Relaxed),
            pool_answers: self.pool_answers.load(Ordering::Relaxed),
            direct_calls: self.direct_calls.load(Ordering::Relaxed),
            exhausted_fills: self.exhausted_fills.load(Ordering::Relaxed),
            physical_cuts_considered: self.physical_cuts.load(Ordering::Relaxed),
            key_collisions: run.collisions,
            dedup: true,
        }
    }
}

/// Analyses every program of the corpus under one constraint set, sharing
/// enumerations between structurally isomorphic blocks when
/// [`CorpusOptions::dedup`] is on.
///
/// Programs are sharded across the work-stealing scheduler (one program per task,
/// dynamic assignment); the returned selections are in input order either way, and
/// with dedup on they are byte-identical to the dedup-off reference run.
#[must_use]
pub fn run_corpus(
    programs: &[Program],
    model: &dyn CostModel,
    options: &CorpusOptions,
) -> CorpusOutcome {
    let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig::default()));
    run_corpus_warm(programs, model, options, &cache)
}

/// [`run_corpus`] against a shared (possibly pre-warmed, process-lifetime) cache.
///
/// With a fresh cache this is exactly [`run_corpus`]. With a warm cache the
/// selections are still byte-identical — pre-existing fills only turn this run's
/// fills into answers (`pool_fills` drops, `pool_answers` rises) — which is the
/// property serve mode's differential soak test asserts. Ignored when
/// [`CorpusOptions::dedup`] is off (the reference path never memoises).
#[must_use]
pub fn run_corpus_warm(
    programs: &[Program],
    model: &dyn CostModel,
    options: &CorpusOptions,
    cache: &Arc<WarmPoolCache>,
) -> CorpusOutcome {
    let blocks_seen: u64 = programs.iter().map(|p| p.block_count() as u64).sum();
    let (selections, stats, shards) = if options.dedup {
        let pool = CorpusPool::with_cache(
            options.constraints,
            model,
            options.exploration_budget,
            Arc::clone(cache),
        );
        let run = |_, program: &Program| pool.select_program(program, options.driver);
        let (selections, shards) = if options.driver.parallel && programs.len() > 1 {
            rayon::sharded_map(programs, run)
        } else {
            let selections = programs.iter().map(|p| run(0, p)).collect();
            (selections, Vec::new())
        };
        (selections, pool.stats(), shards)
    } else {
        let identifier = SingleCut::new().with_exploration_budget(options.exploration_budget);
        let run = |_, program: &Program| {
            // The per-program driver already fans out across blocks; sharding
            // programs on top would oversubscribe, so the reference path shards
            // programs only and runs each program's driver sequentially inside.
            super::select_program(
                program,
                &identifier,
                options.constraints,
                model,
                options.driver.sequential(),
            )
        };
        let (selections, shards) = if options.driver.parallel && programs.len() > 1 {
            rayon::sharded_map(programs, run)
        } else {
            let selections: Vec<SelectionResult> = programs.iter().map(|p| run(0, p)).collect();
            (selections, Vec::new())
        };
        let mut stats = CorpusStats {
            dedup: false,
            ..CorpusStats::default()
        };
        for selection in &selections {
            stats.logical_identifier_calls += selection.identifier_calls;
            stats.logical_cuts_considered += selection.cuts_considered;
        }
        stats.physical_cuts_considered = stats.logical_cuts_considered;
        stats.direct_calls = stats.logical_identifier_calls;
        (selections, stats, shards)
    };
    let mut stats = stats;
    stats.programs = programs.len() as u64;
    stats.blocks_seen = blocks_seen;
    let templates = options.templates.map(|budget| {
        super::templates::run_template_selection(
            programs,
            model,
            options.constraints,
            options.exploration_budget,
            budget,
        )
    });
    CorpusOutcome {
        selections,
        stats,
        shards,
        templates,
    }
}

/// Streams a corpus through the pool with at most `max_in_flight` programs
/// materialised at a time.
///
/// Programs are pulled from the iterator in chunks of `max_in_flight` (clamped to
/// at least 1), analysed — in parallel within a chunk when the driver allows —
/// and handed to `emit` as `(input index, program, selection)` before the next
/// chunk is pulled, so peak memory is bounded by the chunk size regardless of
/// corpus length. The pool (and therefore every fill) is shared across chunks:
/// selections are byte-identical to a [`run_corpus`] over the same programs, in
/// the same order, because canonical fills are schedule-independent.
pub fn run_corpus_streaming(
    programs: impl IntoIterator<Item = Program>,
    model: &dyn CostModel,
    options: &CorpusOptions,
    max_in_flight: usize,
    mut emit: impl FnMut(usize, Program, SelectionResult),
) -> CorpusStreamOutcome {
    let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig::default()));
    run_corpus_streaming_warm(programs, model, options, max_in_flight, &cache, &mut emit)
}

/// [`run_corpus_streaming`] against a shared (possibly pre-warmed) cache.
pub fn run_corpus_streaming_warm(
    programs: impl IntoIterator<Item = Program>,
    model: &dyn CostModel,
    options: &CorpusOptions,
    max_in_flight: usize,
    cache: &Arc<WarmPoolCache>,
    emit: &mut dyn FnMut(usize, Program, SelectionResult),
) -> CorpusStreamOutcome {
    let chunk_size = max_in_flight.max(1);
    let pool = options.dedup.then(|| {
        CorpusPool::with_cache(
            options.constraints,
            model,
            options.exploration_budget,
            Arc::clone(cache),
        )
    });
    let identifier = SingleCut::new().with_exploration_budget(options.exploration_budget);

    let mut iterator = programs.into_iter();
    let mut shards: Vec<ShardProgress> = Vec::new();
    let mut reference_stats = CorpusStats {
        dedup: options.dedup,
        ..CorpusStats::default()
    };
    let mut programs_seen = 0u64;
    let mut blocks_seen = 0u64;
    let mut next_index = 0usize;
    loop {
        let chunk: Vec<Program> = iterator.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        programs_seen += chunk.len() as u64;
        blocks_seen += chunk.iter().map(|p| p.block_count() as u64).sum::<u64>();
        let run = |_, program: &Program| match &pool {
            Some(pool) => pool.select_program(program, options.driver),
            None => super::select_program(
                program,
                &identifier,
                options.constraints,
                model,
                options.driver.sequential(),
            ),
        };
        let selections = if options.driver.parallel && chunk.len() > 1 {
            let (selections, chunk_shards) = rayon::sharded_map(&chunk, run);
            shards.extend(chunk_shards);
            selections
        } else {
            chunk.iter().map(|p| run(0, p)).collect()
        };
        for (program, selection) in chunk.into_iter().zip(selections) {
            if pool.is_none() {
                reference_stats.logical_identifier_calls += selection.identifier_calls;
                reference_stats.logical_cuts_considered += selection.cuts_considered;
            }
            emit(next_index, program, selection);
            next_index += 1;
        }
    }

    let mut stats = match &pool {
        Some(pool) => pool.stats(),
        None => {
            reference_stats.physical_cuts_considered = reference_stats.logical_cuts_considered;
            reference_stats.direct_calls = reference_stats.logical_identifier_calls;
            reference_stats
        }
    };
    stats.programs = programs_seen;
    stats.blocks_seen = blocks_seen;
    CorpusStreamOutcome { stats, shards }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;
    use std::cell::Cell;
    use std::rc::Rc;

    fn mac_program(name: &str, swap: bool) -> Program {
        let mut p = Program::new(name);
        let mut b = DfgBuilder::new("body");
        b.exec_count(100);
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let (prod, shifted) = if swap {
            let s = b.shl(y, b.imm(2));
            let m = b.mul(x, y);
            (m, s)
        } else {
            let m = b.mul(x, y);
            let s = b.shl(y, b.imm(2));
            (m, s)
        };
        let sum = b.add(prod, acc);
        let out = b.xor(sum, shifted);
        b.output("acc", out);
        p.add_block(b.finish());
        p
    }

    #[test]
    fn dedup_matches_reference_and_shares_fills() {
        let corpus: Vec<Program> = (0..6)
            .map(|i| mac_program(&format!("p{i}"), i % 2 == 1))
            .collect();
        let model = DefaultCostModel::new();
        let options = CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4));
        let deduped = run_corpus(&corpus, &model, &options);
        let reference = run_corpus(&corpus, &model, &options.with_dedup(false));
        assert_eq!(deduped.selections, reference.selections);
        assert_eq!(
            deduped.stats.logical_identifier_calls,
            reference.stats.logical_identifier_calls
        );
        assert_eq!(
            deduped.stats.logical_cuts_considered,
            reference.stats.logical_cuts_considered
        );
        // Six isomorphic one-block programs: every exclusion state is enumerated once.
        assert!(deduped.stats.pool_answers > 0);
        assert!(deduped.stats.physical_cuts_considered < reference.stats.physical_cuts_considered);
        assert_eq!(deduped.stats.key_collisions, 0);
        assert_eq!(deduped.stats.blocks_seen, 6);
        // Every slot is created by the query that fills it, so the two counts agree;
        // sharing shows up as fills staying far below the logical call count.
        assert_eq!(deduped.stats.unique_keys, deduped.stats.pool_fills);
        assert!(deduped.stats.pool_fills < deduped.stats.logical_identifier_calls);
    }

    #[test]
    fn exhausted_fills_fall_back_to_direct_searches() {
        let corpus = vec![mac_program("p0", false), mac_program("p1", true)];
        let model = DefaultCostModel::new();
        let options = CorpusOptions::new(Constraints::new(4, 2))
            .with_driver(DriverOptions::new(4))
            .with_exploration_budget(Some(3));
        let deduped = run_corpus(&corpus, &model, &options);
        let reference = run_corpus(&corpus, &model, &options.with_dedup(false));
        assert_eq!(deduped.selections, reference.selections);
        assert!(deduped.stats.exhausted_fills > 0);
        assert!(deduped.stats.direct_calls > 0);
    }

    #[test]
    fn template_reporting_is_additive_and_leaves_selections_unchanged() {
        let corpus: Vec<Program> = (0..4)
            .map(|i| mac_program(&format!("p{i}"), i % 2 == 1))
            .collect();
        let model = DefaultCostModel::new();
        let options = CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4));
        let plain = run_corpus(&corpus, &model, &options);
        assert!(plain.templates.is_none());
        let with_templates = run_corpus(
            &corpus,
            &model,
            &options.with_templates(Some(TemplateBudget::new(1e9))),
        );
        assert_eq!(plain.selections, with_templates.selections);
        assert_eq!(plain.stats, with_templates.stats);
        let report = with_templates
            .templates
            .expect("budget set → report present");
        assert!(report.templates_considered > 0);
        assert!(report.speedup >= 1.0);
    }

    #[test]
    fn empty_corpus_degrades_gracefully() {
        let model = DefaultCostModel::new();
        let options = CorpusOptions::new(Constraints::new(4, 2));
        let outcome = run_corpus(&[], &model, &options);
        assert!(outcome.selections.is_empty());
        assert_eq!(outcome.stats.blocks_seen, 0);
        assert_eq!(outcome.stats.dedup_hit_rate(), 0.0);
    }

    #[test]
    fn warm_cache_reuses_fills_across_runs_byte_identically() {
        let corpus: Vec<Program> = (0..4)
            .map(|i| mac_program(&format!("p{i}"), i % 2 == 1))
            .collect();
        let model = DefaultCostModel::new();
        let options = CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4));
        let cache = Arc::new(WarmPoolCache::new(WarmCacheConfig::default()));
        let cold = run_corpus_warm(&corpus, &model, &options, &cache);
        let warm = run_corpus_warm(&corpus, &model, &options, &cache);
        assert_eq!(cold.selections, warm.selections);
        assert_eq!(
            cold.stats.logical_cuts_considered,
            warm.stats.logical_cuts_considered
        );
        assert!(cold.stats.pool_fills > 0);
        assert_eq!(warm.stats.pool_fills, 0, "warm run refills nothing");
        assert_eq!(
            warm.stats.pool_answers, warm.stats.logical_identifier_calls,
            "every warm query is answered from the shared cache"
        );
    }

    #[test]
    fn streaming_is_byte_identical_and_bounds_in_flight_programs() {
        let corpus: Vec<Program> = (0..7)
            .map(|i| mac_program(&format!("p{i}"), i % 2 == 1))
            .collect();
        let model = DefaultCostModel::new();
        let options = CorpusOptions::new(Constraints::new(4, 2)).with_driver(DriverOptions::new(4));
        let batch = run_corpus(&corpus, &model, &options);

        for max_in_flight in [1usize, 2, 3, 16] {
            let yielded = Rc::new(Cell::new(0usize));
            let emitted = Rc::new(Cell::new(0usize));
            let peak = Rc::new(Cell::new(0usize));
            let source = {
                let yielded = Rc::clone(&yielded);
                let emitted = Rc::clone(&emitted);
                let peak = Rc::clone(&peak);
                corpus.clone().into_iter().inspect(move |_| {
                    yielded.set(yielded.get() + 1);
                    peak.set(peak.get().max(yielded.get() - emitted.get()));
                })
            };
            let mut selections = Vec::new();
            let outcome = {
                let emitted = Rc::clone(&emitted);
                run_corpus_streaming(
                    source,
                    &model,
                    &options,
                    max_in_flight,
                    |index, program, selection| {
                        emitted.set(emitted.get() + 1);
                        assert_eq!(program.name(), format!("p{index}"));
                        selections.push(selection);
                    },
                )
            };
            assert_eq!(
                selections, batch.selections,
                "max_in_flight {max_in_flight}"
            );
            assert_eq!(outcome.stats.programs, 7);
            assert_eq!(outcome.stats.blocks_seen, 7);
            assert_eq!(
                outcome.stats.logical_cuts_considered,
                batch.stats.logical_cuts_considered
            );
            // The memory ceiling: never more than one chunk of programs alive
            // between the source and the emit callback.
            assert!(
                peak.get() <= max_in_flight,
                "peak {} exceeds ceiling {max_in_flight}",
                peak.get()
            );
        }

        // The reference (dedup-off) streaming path agrees too.
        let mut selections = Vec::new();
        run_corpus_streaming(
            corpus.clone(),
            &model,
            &options.with_dedup(false),
            2,
            |_, _, selection| selections.push(selection),
        );
        assert_eq!(selections, batch.selections);
    }
}
