//! The process-lifetime warm cut-pool cache behind persistent serve mode.
//!
//! [`CorpusPool`](super::CorpusPool) proved that one canonical-coordinate fill can
//! answer every structurally isomorphic `(block, exclusion)` query exactly. This
//! module promotes that memo from run-lifetime to **process-lifetime**: a
//! [`WarmPoolCache`] outlives individual corpus runs, is shared across requests and
//! sessions, and can be snapshotted to disk and warm-started on the next boot.
//!
//! Three properties make the promotion sound:
//!
//! * **Keys carry everything a fill depends on.** A cache key is the block's
//!   [`StructuralKey`], the exclusion state in canonical positions, and the
//!   budget group — the constraint set plus exploration budget the fill ran
//!   under. The cost model is pinned per cache (`model_id`), so equal keys imply
//!   byte-identical fill inputs, and deterministic fills imply byte-identical fill
//!   contents whoever computes them, whenever.
//! * **Eviction never changes answers.** Evicting a slot only drops the memo;
//!   in-flight holders keep their `Arc` clone, and a later query under the same key
//!   re-runs the same deterministic fill. The only cost is the refill.
//! * **Snapshots validate, never trust.** The on-disk format is versioned,
//!   checksummed and model-tagged; any mismatch — truncation, corruption, version
//!   bump, different cost model — makes [`load_snapshot`](WarmPoolCache::load_snapshot)
//!   fall back to a cold start instead of erroring or loading garbage.
//!
//! Lock striping replaces the run-local pool's single `Mutex<HashMap>`: keys hash
//! onto `N` independently locked segments, so concurrent warm lookups from many
//! worker threads contend only when they land on the same stripe. `segments = 1`
//! reproduces the old global-lock behaviour (the `serve_bench` concurrent-hit row
//! measures exactly that before/after).

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::constraints::Constraints;
use crate::cut::CutEvaluation;
use crate::pool::{AttemptHistogram, ParetoStore, PoolEntry};
use crate::structural::StructuralKey;

/// Default file name of an on-disk cache snapshot inside a `--cache-dir`.
pub const SNAPSHOT_FILE: &str = "warm_pool_cache.bin";

const SNAPSHOT_MAGIC: &[u8; 8] = b"ISEWARM\x01";
const SNAPSHOT_VERSION: u32 = 1;

/// One memoised enumeration, stored entirely in canonical coordinates so that the
/// stored bytes do not depend on which isomorphic block performed the fill.
pub(crate) struct CanonicalFill {
    pub(crate) store: ParetoStore<CanonicalCandidate>,
    pub(crate) histogram: AttemptHistogram,
}

/// A recorded candidate cut: canonical node positions plus its (structure-determined,
/// hence translation-invariant) evaluation.
#[derive(Clone)]
pub(crate) struct CanonicalCandidate {
    pub(crate) positions: Vec<u32>,
    pub(crate) evaluation: CutEvaluation,
}

/// Memo entry state of one cache slot.
pub(crate) enum FillEntry {
    Complete(CanonicalFill),
    Exhausted,
}

/// The constraint-and-budget group a fill ran under.
///
/// Fills are only reusable between queries that would have enumerated identically:
/// same port budgets, byte-identical area limit (compared as `f64` bits), same node
/// budget, same exploration budget. Two corpus runs with different budget groups
/// simply occupy disjoint cache slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BudgetGroup {
    max_inputs: usize,
    max_outputs: usize,
    max_area_bits: Option<u64>,
    max_nodes: Option<usize>,
    exploration_budget: Option<u64>,
}

impl BudgetGroup {
    /// Derives the group of a fill performed under `constraints` and `budget`.
    #[must_use]
    pub fn new(constraints: &Constraints, exploration_budget: Option<u64>) -> Self {
        BudgetGroup {
            max_inputs: constraints.max_inputs,
            max_outputs: constraints.max_outputs,
            max_area_bits: constraints.max_area.map(f64::to_bits),
            max_nodes: constraints.max_nodes,
            exploration_budget,
        }
    }
}

/// Key of one cache slot: structural identity, exclusion state in canonical
/// positions, and the budget group the fill runs under.
#[derive(Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub(crate) structural: StructuralKey,
    pub(crate) excluded: Vec<u32>,
    pub(crate) group: BudgetGroup,
}

/// One cache slot: the shared fill cell plus the bookkeeping eviction reads.
struct Slot {
    cell: Arc<OnceLock<FillEntry>>,
    /// Logical timestamp of the last lookup (global monotonic counter).
    last_used: u64,
    /// Estimated retained bytes; `0` until the fill lands, which also marks the
    /// slot as not-yet-evictable (an in-flight fill must keep its slot).
    bytes: u64,
}

/// Configuration of a [`WarmPoolCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmCacheConfig {
    /// Number of mutex-striped segments; rounded up to a power of two, minimum 1.
    /// `1` reproduces a single global lock.
    pub segments: usize,
    /// Optional byte budget; exceeding it evicts least-recently-used filled slots
    /// until back under. `None` never evicts.
    pub byte_budget: Option<u64>,
    /// Identifies the cost model the cached fills are valid for. Snapshots record
    /// it and refuse to warm-start a cache with a different id.
    pub model_id: String,
}

impl Default for WarmCacheConfig {
    fn default() -> Self {
        WarmCacheConfig {
            segments: 16,
            byte_budget: None,
            model_id: "default-cost-model".to_string(),
        }
    }
}

/// Counter snapshot of a [`WarmPoolCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct WarmCacheStats {
    /// Lookups that found an already-filled slot.
    pub hits: u64,
    /// Lookups that created a slot or joined an in-flight fill.
    pub misses: u64,
    /// Fills recorded into the cache (including exhausted markers).
    pub fills: u64,
    /// Slots evicted by the byte budget.
    pub evictions: u64,
    /// Slots currently resident (filled or in flight).
    pub entries: u64,
    /// Resident slots whose fill has landed.
    pub filled_entries: u64,
    /// Estimated bytes retained by filled slots.
    pub bytes_used: u64,
    /// Number of lock stripes.
    pub segments: u64,
}

/// The process-lifetime, mutex-striped, byte-budgeted cut-pool cache.
///
/// See the module docs for the exactness argument. All methods take `&self`; the
/// cache is meant to be wrapped in an [`Arc`] and shared across worker threads and
/// corpus runs.
pub struct WarmPoolCache {
    segments: Vec<Mutex<HashMap<CacheKey, Slot>>>,
    byte_budget: Option<u64>,
    model_id: String,
    clock: AtomicU64,
    bytes_used: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    fills: AtomicU64,
    evictions: AtomicU64,
}

impl WarmPoolCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new(config: WarmCacheConfig) -> Self {
        let segments = config.segments.max(1).next_power_of_two();
        WarmPoolCache {
            segments: (0..segments).map(|_| Mutex::new(HashMap::new())).collect(),
            byte_budget: config.byte_budget,
            model_id: config.model_id,
            clock: AtomicU64::new(0),
            bytes_used: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fills: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cost-model id the cache (and its snapshots) are bound to.
    #[must_use]
    pub fn model_id(&self) -> &str {
        &self.model_id
    }

    /// Locks one segment, recovering from a poisoned mutex instead of wedging the
    /// stripe forever.
    ///
    /// A request that panics while holding the stripe lock (a panicking fill being
    /// recorded, an assertion in a callback) poisons the mutex; without recovery,
    /// every later request hashing onto the stripe would panic on `lock()` for the
    /// lifetime of the process. Recovery takes the guard out of the poison wrapper,
    /// evicts exactly the in-flight slots (their fill never landed, so joiners would
    /// wait forever; filled slots are immutable once set and remain valid) and clears
    /// the poison flag. The next query under an evicted key simply re-runs its
    /// deterministic fill.
    fn lock_segment(&self, segment: usize) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Slot>> {
        let mutex = &self.segments[segment];
        mutex.lock().unwrap_or_else(|poisoned| {
            let mut map = poisoned.into_inner();
            map.retain(|_, slot| slot.cell.get().is_some());
            mutex.clear_poison();
            map
        })
    }

    fn segment_index(&self, key: &CacheKey) -> usize {
        let mut h = key.structural.hash();
        for &p in &key.excluded {
            h = fnv1a_step(h, p as u64);
        }
        h = fnv1a_step(h, key.group.max_inputs as u64);
        h = fnv1a_step(h, key.group.max_outputs as u64);
        h = fnv1a_step(h, key.group.max_area_bits.map_or(u64::MAX, |b| b ^ 1));
        h = fnv1a_step(h, key.group.max_nodes.map_or(u64::MAX, |n| n as u64 ^ 1));
        h = fnv1a_step(h, key.group.exploration_budget.map_or(u64::MAX, |b| b ^ 1));
        // Fold the top bits down so low-entropy hashes still spread over stripes.
        ((h ^ (h >> 32)) as usize) & (self.segments.len() - 1)
    }

    /// Returns the shared fill cell of `key`, creating an empty slot on first use.
    ///
    /// A lookup that finds a filled slot counts as a hit; anything else — fresh
    /// slot or joining a fill still in flight — counts as a miss. The caller runs
    /// `get_or_init` on the returned cell and reports a landed fill through
    /// [`record_fill`](Self::record_fill).
    pub(crate) fn lookup(&self, key: &CacheKey) -> Arc<OnceLock<FillEntry>> {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        let segment = self.segment_index(key);
        let mut map = self.lock_segment(segment);
        if let Some(slot) = map.get_mut(key) {
            slot.last_used = now;
            if slot.cell.get().is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            return Arc::clone(&slot.cell);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let slot = Slot {
            cell: Arc::default(),
            last_used: now,
            bytes: 0,
        };
        let cell = Arc::clone(&slot.cell);
        map.insert(key.clone(), slot);
        cell
    }

    /// Records that the caller's `get_or_init` landed the fill for `key`, charging
    /// its estimated bytes against the budget (and evicting if over).
    pub(crate) fn record_fill(&self, key: &CacheKey, entry: &FillEntry) {
        let bytes = entry_bytes(key, entry);
        self.fills.fetch_add(1, Ordering::Relaxed);
        {
            let segment = self.segment_index(key);
            let mut map = self.lock_segment(segment);
            if let Some(slot) = map.get_mut(key) {
                slot.bytes = bytes;
            } else {
                // The slot was evicted while the fill ran (possible under a tiny
                // budget); nothing is retained, so nothing is charged.
                return;
            }
        }
        self.bytes_used.fetch_add(bytes, Ordering::Relaxed);
        self.evict_to_budget();
    }

    /// Evicts least-recently-used filled slots until back under the byte budget.
    fn evict_to_budget(&self) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        while self.bytes_used.load(Ordering::Relaxed) > budget {
            // LRU-ish under striping: scan every stripe for its oldest filled slot
            // (locking one at a time), then evict the globally oldest. Another
            // thread may touch the victim between the scan and the removal — the
            // result is merely an approximate LRU order, never incorrectness.
            let mut victim: Option<(usize, u64)> = None;
            for index in 0..self.segments.len() {
                let map = self.lock_segment(index);
                for slot in map.values() {
                    if slot.bytes > 0 && victim.is_none_or(|(_, used)| slot.last_used < used) {
                        victim = Some((index, slot.last_used));
                    }
                }
            }
            let Some((segment, last_used)) = victim else {
                return; // nothing evictable (everything in flight)
            };
            let mut map = self.lock_segment(segment);
            let key = map
                .iter()
                .find(|(_, slot)| slot.last_used == last_used && slot.bytes > 0)
                .map(|(key, _)| key.clone());
            let Some(key) = key else {
                continue; // the victim moved under us; rescan
            };
            if let Some(slot) = map.remove(&key) {
                self.bytes_used.fetch_sub(slot.bytes, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot of the cache counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> WarmCacheStats {
        let mut entries = 0u64;
        let mut filled = 0u64;
        for index in 0..self.segments.len() {
            let map = self.lock_segment(index);
            entries += map.len() as u64;
            filled += map.values().filter(|s| s.cell.get().is_some()).count() as u64;
        }
        WarmCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fills: self.fills.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            filled_entries: filled,
            bytes_used: self.bytes_used.load(Ordering::Relaxed),
            segments: self.segments.len() as u64,
        }
    }

    /// Serializes every filled slot to `path` (versioned, checksummed, sorted by
    /// key so equal cache contents produce equal snapshot bytes).
    ///
    /// Writes to a temporary sibling first and renames into place, so readers
    /// never observe a half-written snapshot. Returns the number of entries
    /// written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (snapshotting is best-effort for callers; the
    /// cache itself is untouched either way).
    pub fn save_snapshot(&self, path: &Path) -> io::Result<u64> {
        let mut slots: Vec<(CacheKey, Arc<OnceLock<FillEntry>>)> = Vec::new();
        for index in 0..self.segments.len() {
            let map = self.lock_segment(index);
            for (key, slot) in map.iter() {
                if slot.cell.get().is_some() {
                    slots.push((key.clone(), Arc::clone(&slot.cell)));
                }
            }
        }
        slots.sort_by(|(a, _), (b, _)| {
            a.structural
                .bytes()
                .cmp(b.structural.bytes())
                .then_with(|| a.excluded.cmp(&b.excluded))
                .then_with(|| format!("{:?}", a.group).cmp(&format!("{:?}", b.group)))
        });

        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        push_u32(&mut bytes, SNAPSHOT_VERSION);
        push_bytes(&mut bytes, self.model_id.as_bytes());
        push_u64(&mut bytes, slots.len() as u64);
        for (key, cell) in &slots {
            let entry = cell.get().expect("filtered to filled slots");
            encode_entry(&mut bytes, key, entry);
        }
        let checksum = fnv1a(&bytes);
        push_u64(&mut bytes, checksum);

        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(slots.len() as u64)
    }

    /// Warm-starts the cache from a snapshot at `path`.
    ///
    /// Validates magic, version, cost-model id and trailing checksum, and parses
    /// the whole file before touching the cache; **any** failure — missing file,
    /// truncation, corruption, version bump, model mismatch — returns `None` and
    /// leaves the cache exactly as it was (a cold start, never an error). Returns
    /// the number of entries loaded. Keys already resident are kept, not
    /// overwritten.
    #[must_use]
    pub fn load_snapshot(&self, path: &Path) -> Option<u64> {
        let bytes = std::fs::read(path).ok()?;
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let recorded = u64::from_le_bytes(tail.try_into().ok()?);
        if fnv1a(body) != recorded {
            return None;
        }
        let mut reader = Reader::new(body);
        if reader.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return None;
        }
        if reader.u32()? != SNAPSHOT_VERSION {
            return None;
        }
        if reader.byte_string()? != self.model_id.as_bytes() {
            return None;
        }
        let count = reader.u64()?;
        let mut loaded = Vec::new();
        for _ in 0..count {
            loaded.push(decode_entry(&mut reader)?);
        }
        if !reader.is_empty() {
            return None;
        }
        let total = loaded.len() as u64;
        for (key, entry) in loaded {
            let bytes = entry_bytes(&key, &entry);
            let now = self.clock.fetch_add(1, Ordering::Relaxed);
            let segment = self.segment_index(&key);
            let mut map = self.lock_segment(segment);
            if map.contains_key(&key) {
                continue;
            }
            let cell = OnceLock::new();
            let _ = cell.set(entry);
            map.insert(
                key,
                Slot {
                    cell: Arc::new(cell),
                    last_used: now,
                    bytes,
                },
            );
            self.bytes_used.fetch_add(bytes, Ordering::Relaxed);
        }
        Some(total)
    }
}

/// Estimated retained bytes of one filled slot (key plus entry). Deterministic in
/// the slot's content, so eviction order is reproducible across runs.
fn entry_bytes(key: &CacheKey, entry: &FillEntry) -> u64 {
    let mut bytes = 64 + key.structural.bytes().len() as u64 + 4 * key.excluded.len() as u64;
    if let FillEntry::Complete(fill) = entry {
        let (entries, _) = fill.store.parts();
        for entry in entries {
            bytes += 96 + 4 * entry.payload.positions.len() as u64;
        }
        let (_, counts, prunes) = fill.histogram.parts();
        bytes += 8 * (counts.len() + prunes.len()) as u64;
    }
    bytes
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn fnv1a_step(hash: u64, value: u64) -> u64 {
    let mut h = hash;
    for b in value.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn push_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn push_opt_u64(out: &mut Vec<u8>, value: Option<u64>) {
    match value {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            push_u64(out, v);
        }
    }
}

fn encode_entry(out: &mut Vec<u8>, key: &CacheKey, entry: &FillEntry) {
    push_bytes(out, key.structural.bytes());
    push_u32(out, key.excluded.len() as u32);
    for &p in &key.excluded {
        push_u32(out, p);
    }
    push_u64(out, key.group.max_inputs as u64);
    push_u64(out, key.group.max_outputs as u64);
    push_opt_u64(out, key.group.max_area_bits);
    push_opt_u64(out, key.group.max_nodes.map(|n| n as u64));
    push_opt_u64(out, key.group.exploration_budget);
    match entry {
        FillEntry::Exhausted => out.push(0),
        FillEntry::Complete(fill) => {
            out.push(1);
            let (entries, offered) = fill.store.parts();
            push_u64(out, offered);
            push_u32(out, entries.len() as u32);
            for entry in entries {
                push_u64(out, entry.inputs as u64);
                push_u64(out, entry.outputs as u64);
                push_u64(out, entry.score.to_bits());
                push_u64(out, entry.seq);
                push_u32(out, entry.payload.positions.len() as u32);
                for &p in &entry.payload.positions {
                    push_u32(out, p);
                }
                encode_evaluation(out, &entry.payload.evaluation);
            }
            let (fill_outputs, counts, prunes) = fill.histogram.parts();
            push_u64(out, fill_outputs as u64);
            push_u32(out, counts.len() as u32);
            for &c in counts {
                push_u64(out, c);
            }
            push_u32(out, prunes.len() as u32);
            for &c in prunes {
                push_u64(out, c);
            }
        }
    }
}

fn encode_evaluation(out: &mut Vec<u8>, evaluation: &CutEvaluation) {
    push_u64(out, evaluation.nodes as u64);
    push_u64(out, evaluation.inputs as u64);
    push_u64(out, evaluation.outputs as u64);
    out.push(u8::from(evaluation.convex));
    push_u64(out, evaluation.software_cycles);
    push_u64(out, evaluation.hardware_critical_path.to_bits());
    push_u32(out, evaluation.hardware_cycles);
    push_u64(out, evaluation.area.to_bits());
    push_u64(out, evaluation.merit.to_bits());
}

fn decode_entry(reader: &mut Reader<'_>) -> Option<(CacheKey, FillEntry)> {
    let structural = StructuralKey::from_bytes(reader.byte_string()?.to_vec());
    let excluded_len = reader.u32()? as usize;
    let mut excluded = Vec::with_capacity(excluded_len.min(1 << 16));
    for _ in 0..excluded_len {
        excluded.push(reader.u32()?);
    }
    let group = BudgetGroup {
        max_inputs: reader.usize()?,
        max_outputs: reader.usize()?,
        max_area_bits: reader.opt_u64()?,
        max_nodes: match reader.opt_u64()? {
            None => None,
            Some(v) => Some(usize::try_from(v).ok()?),
        },
        exploration_budget: reader.opt_u64()?,
    };
    let key = CacheKey {
        structural,
        excluded,
        group,
    };
    let entry = match reader.u8()? {
        0 => FillEntry::Exhausted,
        1 => {
            let offered = reader.u64()?;
            let entry_count = reader.u32()? as usize;
            let mut entries = Vec::with_capacity(entry_count.min(1 << 16));
            for _ in 0..entry_count {
                let inputs = reader.usize()?;
                let outputs = reader.usize()?;
                let score = f64::from_bits(reader.u64()?);
                let seq = reader.u64()?;
                let position_count = reader.u32()? as usize;
                let mut positions = Vec::with_capacity(position_count.min(1 << 16));
                for _ in 0..position_count {
                    positions.push(reader.u32()?);
                }
                let evaluation = decode_evaluation(reader)?;
                entries.push(PoolEntry {
                    inputs,
                    outputs,
                    score,
                    seq,
                    payload: CanonicalCandidate {
                        positions,
                        evaluation,
                    },
                });
            }
            let store = ParetoStore::from_parts(entries, offered);
            let fill_outputs = reader.usize()?;
            let count_len = reader.u32()? as usize;
            let mut counts = Vec::with_capacity(count_len.min(1 << 20));
            for _ in 0..count_len {
                counts.push(reader.u64()?);
            }
            let prune_len = reader.u32()? as usize;
            let mut prunes = Vec::with_capacity(prune_len.min(1 << 16));
            for _ in 0..prune_len {
                prunes.push(reader.u64()?);
            }
            let histogram = AttemptHistogram::from_parts(fill_outputs, counts, prunes)?;
            FillEntry::Complete(CanonicalFill { store, histogram })
        }
        _ => return None,
    };
    Some((key, entry))
}

fn decode_evaluation(reader: &mut Reader<'_>) -> Option<CutEvaluation> {
    Some(CutEvaluation {
        nodes: reader.usize()?,
        inputs: reader.usize()?,
        outputs: reader.usize()?,
        convex: reader.u8()? != 0,
        software_cycles: reader.u64()?,
        hardware_critical_path: f64::from_bits(reader.u64()?),
        hardware_cycles: reader.u32()?,
        area: f64::from_bits(reader.u64()?),
        merit: f64::from_bits(reader.u64()?),
    })
}

/// Bounds-checked little-endian reader over a snapshot body.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        if end > self.bytes.len() {
            return None;
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn opt_u64(&mut self) -> Option<Option<u64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(self.u64()?)),
            _ => None,
        }
    }

    fn byte_string(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8, group: BudgetGroup) -> CacheKey {
        CacheKey {
            structural: StructuralKey::from_bytes(vec![tag; 24]),
            excluded: vec![u32::from(tag)],
            group,
        }
    }

    fn group() -> BudgetGroup {
        BudgetGroup::new(&Constraints::new(4, 2), Some(1000))
    }

    #[test]
    fn lookup_creates_then_hits() {
        let cache = WarmPoolCache::new(WarmCacheConfig::default());
        let k = key(1, group());
        let cell = cache.lookup(&k);
        assert!(cell.get().is_none());
        let _ = cell.set(FillEntry::Exhausted);
        cache.record_fill(&k, cell.get().unwrap());
        let again = cache.lookup(&k);
        assert!(again.get().is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.fills, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.filled_entries, 1);
    }

    #[test]
    fn budget_group_distinguishes_area_bits() {
        let a = BudgetGroup::new(&Constraints::new(4, 2).with_max_area(1.5), None);
        let b = BudgetGroup::new(&Constraints::new(4, 2).with_max_area(2.5), None);
        assert_ne!(a, b);
        assert_eq!(
            a,
            BudgetGroup::new(&Constraints::new(4, 2).with_max_area(1.5), None)
        );
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        let cache = WarmPoolCache::new(WarmCacheConfig {
            segments: 4,
            byte_budget: Some(300),
            ..WarmCacheConfig::default()
        });
        // Each exhausted entry costs 64 + 24 + 4 = 92 bytes; four of them overflow
        // the 300-byte budget and evict the least recently used.
        for tag in 0..4u8 {
            let k = key(tag, group());
            let cell = cache.lookup(&k);
            let _ = cell.set(FillEntry::Exhausted);
            cache.record_fill(&k, cell.get().unwrap());
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "{stats:?}");
        assert!(stats.bytes_used <= 300, "{stats:?}");
        // The evicted key refills on next use instead of erroring.
        let k = key(0, group());
        let cell = cache.lookup(&k);
        if cell.get().is_none() {
            let _ = cell.set(FillEntry::Exhausted);
            cache.record_fill(&k, cell.get().unwrap());
        }
        assert!(cache.lookup(&k).get().is_some());
    }

    /// One panicking fill must not wedge its stripe: the next request on the same
    /// stripe still answers, the wedged in-flight slot is evicted (and refills on
    /// demand), and filled slots survive untouched.
    #[test]
    fn poisoned_stripe_recovers_and_evicts_in_flight_slots() {
        let cache = WarmPoolCache::new(WarmCacheConfig {
            segments: 1,
            ..WarmCacheConfig::default()
        });
        // A filled slot that must survive recovery.
        let done = key(1, group());
        let cell = cache.lookup(&done);
        let _ = cell.set(FillEntry::Exhausted);
        cache.record_fill(&done, cell.get().unwrap());
        // An in-flight slot (created, fill never lands) that must be evicted.
        let wedged = key(2, group());
        let in_flight = cache.lookup(&wedged);
        assert!(in_flight.get().is_none());
        // Inject a fill that panics while holding the stripe lock.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = cache.segments[0].lock().unwrap();
            panic!("injected panicking fill");
        }));
        assert!(panicked.is_err());
        assert!(cache.segments[0].is_poisoned());
        // The next request on the same stripe answers instead of panicking forever.
        let stats = cache.stats();
        assert_eq!(stats.filled_entries, 1, "the filled slot survives");
        assert_eq!(stats.entries, 1, "the in-flight slot was evicted");
        assert!(
            !cache.segments[0].is_poisoned(),
            "recovery clears the poison flag"
        );
        assert!(cache.lookup(&done).get().is_some());
        // The evicted key simply refills on its next use.
        let cell = cache.lookup(&wedged);
        assert!(cell.get().is_none());
        let _ = cell.set(FillEntry::Exhausted);
        cache.record_fill(&wedged, cell.get().unwrap());
        assert!(cache.lookup(&wedged).get().is_some());
    }

    #[test]
    fn snapshot_round_trips_and_rejects_tampering() {
        let dir = std::env::temp_dir().join(format!("ise-warm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);

        let cache = WarmPoolCache::new(WarmCacheConfig::default());
        let k = key(7, group());
        let cell = cache.lookup(&k);
        let _ = cell.set(FillEntry::Exhausted);
        cache.record_fill(&k, cell.get().unwrap());
        assert_eq!(cache.save_snapshot(&path).unwrap(), 1);

        // Round-trip into a fresh cache.
        let warm = WarmPoolCache::new(WarmCacheConfig::default());
        assert_eq!(warm.load_snapshot(&path), Some(1));
        assert!(warm.lookup(&k).get().is_some());
        assert_eq!(warm.stats().hits, 1);

        // A truncated file falls back to cold start.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let cold = WarmPoolCache::new(WarmCacheConfig::default());
        assert_eq!(cold.load_snapshot(&path), None);
        assert_eq!(cold.stats().entries, 0);

        // A corrupted byte falls back to cold start.
        let mut corrupt = bytes.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xff;
        std::fs::write(&path, &corrupt).unwrap();
        assert_eq!(cold.load_snapshot(&path), None);

        // A version bump falls back to cold start (checksum recomputed so only the
        // version check can reject).
        let mut bumped = bytes.clone();
        bumped[8] = 9;
        let body_len = bumped.len() - 8;
        let checksum = fnv1a(&bumped[..body_len]);
        bumped[body_len..].copy_from_slice(&checksum.to_le_bytes());
        std::fs::write(&path, &bumped).unwrap();
        assert_eq!(cold.load_snapshot(&path), None);

        // A different cost-model id falls back to cold start.
        std::fs::write(&path, &bytes).unwrap();
        let other = WarmPoolCache::new(WarmCacheConfig {
            model_id: "other-model".to_string(),
            ..WarmCacheConfig::default()
        });
        assert_eq!(other.load_snapshot(&path), None);

        // A missing file falls back to cold start.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(cold.load_snapshot(&path), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
