//! The program-level identification driver.
//!
//! One [`Identifier`] works on a single basic block; real applications have many blocks,
//! and the per-block searches are completely independent. The driver fans them out with
//! `rayon` and merges the results into a [`SelectionResult`] whose content is
//! **deterministic and identical whether the fan-out runs parallel or sequential**:
//! per-block outcomes are collected in block order before any cross-block decision is
//! made, statistics are summed in block order, and every tie-break is index-based.
//!
//! Two merge strategies cover all bundled algorithms, chosen automatically through
//! [`Identifier::refines_under_exclusion`]:
//!
//! * **iterative** (exact algorithms): repeatedly identify on every block whose
//!   exclusion set changed, commit the globally best candidate, exclude its nodes and
//!   re-identify that block — the Section 6.3 strategy, generalised to any identifier;
//! * **one-shot** (baselines): identify every block once, pool all disjoint candidates
//!   and commit them greedily by dynamic saving — the cross-block strategy the paper
//!   applies to the prior-art techniques.

use std::collections::HashMap;

use ise_hw::CostModel;
use ise_ir::{NodeId, Program};
use rayon::prelude::*;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::search::{IdentifiedCut, SearchOutcome};
use crate::selection::{ChosenCut, SelectionResult};

use super::Identifier;

/// Options for the program-level driver.
///
/// Construction goes through one builder path: start from [`DriverOptions::new`] (or
/// [`DriverOptions::default`], which places no bound on the instruction count) and
/// refine with the `with_*`/[`sequential`](DriverOptions::sequential) methods. The
/// fields stay public for pattern matching and serialisation, but every front-end in
/// the workspace constructs options through the builder.
///
/// # Two-level parallelism
///
/// The driver exposes two independent, composable parallelism axes; both are
/// deterministic (byte-identical to the fully sequential run, whatever the thread
/// count), so they are purely wall-clock knobs:
///
/// * **across blocks** ([`parallel`](Self::parallel)) — every basic block's search is
///   an independent `rayon` task. This is the cheap, always-worthwhile level: it has no
///   snapshot overhead and scales as long as the program has more (comparably sized)
///   blocks than cores. It is on by default.
/// * **inside a block** ([`intra_block_levels`](Self::intra_block_levels)) — the top
///   `k` levels of a block's branch-and-bound decision tree are split into up to
///   `arity^k` independent subtree tasks (see [`crate::kernel::SearchKernel`]). This is
///   the only level that helps when the work is concentrated in one large block — the
///   paper's Fig. 8 worst case, where block fan-out leaves all but one core idle. It
///   costs one state snapshot per subtree, so it only pays off when a block's search is
///   much more expensive than `O(nodes)` — as a rule of thumb, blocks of ≳30 nodes
///   under loose port constraints. `3`–`6` levels saturate typical core counts; `0`
///   (the default) disables the level. Exact searches running under an exploration
///   budget ignore the knob (a global cut budget is inherently sequential), as do the
///   linear-time baselines (no decision tree to split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct DriverOptions {
    /// Maximum number of special instructions to select (`Ninstr`).
    pub max_instructions: usize,
    /// Fan identification out across basic blocks with `rayon`. The result is
    /// byte-identical to the sequential path; this only trades wall-clock for cores.
    pub parallel: bool,
    /// Number of top decision-tree levels split into parallel subtree tasks *inside*
    /// each block (`0` = sequential within a block). Byte-identical to the sequential
    /// path; see the type-level documentation for when this level pays off.
    pub intra_block_levels: usize,
    /// Allow sweep front-ends (the [`SweepPlanner`](super::sweep::SweepPlanner),
    /// `Session::sweep`, the `fig11`/`sweep` benchmarks) to answer covered constraint
    /// pairs from a memoised [cut pool](crate::pool) instead of re-running the
    /// exponential identification per pair. Pool-backed answers are byte-identical to
    /// the direct per-pair searches — including the `identifier_calls` and
    /// `cuts_considered` accounting — so this knob only trades enumeration work for
    /// memory. It has no effect on single-pair runs. On by default; switch off to force
    /// the reference per-pair path (the CLI and benchmarks expose this as `--direct`).
    pub cut_pool: bool,
    /// Identify identical blocks once per round: blocks of one program whose stored
    /// representation and exclusion state are byte-equal (unrolled loop bodies,
    /// copy-pasted kernels) provably get byte-equal outcomes from any deterministic
    /// identifier, so [`identify_blocks`] runs the search on the first of each group
    /// and copies the outcome to the rest. Reported results and statistics are
    /// unchanged; only wall-clock drops. On by default.
    pub block_dedup: bool,
}

/// Hand-rolled (not derived) so that `intra_block_levels`, `cut_pool` and
/// `block_dedup` are *optional* on the wire: request files written before these fields
/// existed keep deserialising, defaulting to the behaviour they were written against
/// (sequential within a block, pool-backed sweeps, deduplicated identical blocks —
/// neither default changes any result).
impl<'de> serde::Deserialize<'de> for DriverOptions {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn optional<T: serde::DeserializeOwned>(
            fields: &[(String, serde::Value)],
            name: &str,
            fallback: serde::Value,
        ) -> Result<T, serde::Error> {
            let value = fields
                .iter()
                .find(|(key, _)| key == name)
                .map_or(&fallback, |(_, field)| field);
            serde::Deserialize::from_value(value).map_err(|e| {
                serde::Error::custom(format!("field `{name}` of `DriverOptions`: {e}"))
            })
        }
        let fields = serde::expect_object(value, "DriverOptions")?;
        Ok(DriverOptions {
            max_instructions: serde::expect_field(fields, "max_instructions", "DriverOptions")?,
            parallel: serde::expect_field(fields, "parallel", "DriverOptions")?,
            intra_block_levels: optional(fields, "intra_block_levels", serde::Value::Uint(0))?,
            cut_pool: optional(fields, "cut_pool", serde::Value::Bool(true))?,
            block_dedup: optional(fields, "block_dedup", serde::Value::Bool(true))?,
        })
    }
}

impl Default for DriverOptions {
    /// Parallel selection with no bound on the instruction count: the driver keeps
    /// committing instructions until no profitable cut remains.
    fn default() -> Self {
        DriverOptions::new(usize::MAX)
    }
}

impl DriverOptions {
    /// Parallel driver options selecting up to `max_instructions` instructions.
    #[must_use]
    pub fn new(max_instructions: usize) -> Self {
        DriverOptions {
            max_instructions,
            parallel: true,
            intra_block_levels: 0,
            cut_pool: true,
            block_dedup: true,
        }
    }

    /// Sets the instruction budget (`Ninstr`).
    #[must_use]
    pub fn with_max_instructions(mut self, max_instructions: usize) -> Self {
        self.max_instructions = max_instructions;
        self
    }

    /// Chooses between the `rayon`-parallel and the sequential per-block fan-out.
    #[must_use]
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Sets the number of top decision-tree levels split into parallel subtree tasks
    /// inside each block (see the type-level documentation).
    #[must_use]
    pub fn with_intra_block_levels(mut self, levels: usize) -> Self {
        self.intra_block_levels = levels;
        self
    }

    /// Enables or disables the memoised cut pool for sweep front-ends (see the field
    /// documentation; single-pair runs are unaffected either way).
    #[must_use]
    pub fn with_cut_pool(mut self, cut_pool: bool) -> Self {
        self.cut_pool = cut_pool;
        self
    }

    /// Enables or disables identical-block deduplication inside [`identify_blocks`]
    /// (see the field documentation; results are identical either way).
    #[must_use]
    pub fn with_block_dedup(mut self, block_dedup: bool) -> Self {
        self.block_dedup = block_dedup;
        self
    }

    /// Switches the per-block fan-out to the sequential path.
    #[must_use]
    pub fn sequential(self) -> Self {
        self.with_parallel(false)
    }
}

/// Runs `identifier` once on each listed block (`(block_index, exclusions)` pairs) and
/// returns the outcomes in the same order. With `options.parallel` set the per-block
/// runs are fanned out with `rayon`, and `options.intra_block_levels` additionally
/// splits each block's own decision tree; with `options.block_dedup` set, work items
/// whose block structure (in stored node order) and exclusion state are byte-equal run
/// the search once and share the outcome. The returned outcomes are unaffected by all
/// three knobs.
#[must_use]
pub fn identify_blocks(
    program: &Program,
    identifier: &dyn Identifier,
    work: &[(usize, Option<&CutSet>)],
    constraints: Constraints,
    model: &dyn CostModel,
    options: DriverOptions,
) -> Vec<SearchOutcome> {
    let run = |&(block_index, excluded): &(usize, Option<&CutSet>)| {
        identifier.identify_split(
            program.block(block_index),
            excluded,
            &constraints,
            model,
            options.intra_block_levels,
        )
    };
    if options.block_dedup && work.len() > 1 {
        // Group work items by the identity serialisation of their block plus the
        // exclusion set. Equal keys mean the blocks are node-for-node identical (same
        // opcodes, operands, flags, in the same stored order), so any deterministic
        // identifier provably returns byte-equal outcomes — run the first of each
        // group and copy its outcome to the rest.
        let mut first_of: HashMap<(Vec<u8>, Vec<NodeId>), usize> = HashMap::new();
        let mut source: Vec<usize> = Vec::with_capacity(work.len());
        for (slot, &(block_index, excluded)) in work.iter().enumerate() {
            let key = (
                crate::structural::raw_key(program.block(block_index)),
                excluded.map(|cut| cut.iter().collect()).unwrap_or_default(),
            );
            source.push(*first_of.entry(key).or_insert(slot));
        }
        let rep_slots: Vec<usize> = (0..work.len())
            .filter(|&slot| source[slot] == slot)
            .collect();
        if rep_slots.len() < work.len() {
            let rep_work: Vec<(usize, Option<&CutSet>)> =
                rep_slots.iter().map(|&slot| work[slot]).collect();
            let rep_outcomes: Vec<SearchOutcome> = if options.parallel && rep_work.len() > 1 {
                rep_work.par_iter().map(run).collect()
            } else {
                rep_work.iter().map(run).collect()
            };
            let outcome_of: HashMap<usize, &SearchOutcome> = rep_slots
                .iter()
                .zip(rep_outcomes.iter())
                .map(|(&slot, outcome)| (slot, outcome))
                .collect();
            return source.iter().map(|rep| outcome_of[rep].clone()).collect();
        }
    }
    if options.parallel && work.len() > 1 {
        work.par_iter().map(run).collect()
    } else {
        work.iter().map(run).collect()
    }
}

/// Identifies candidate instructions on every block of `program` (no exclusions) and
/// returns one outcome per block, in block order.
#[must_use]
pub fn identify_program(
    program: &Program,
    identifier: &dyn Identifier,
    constraints: Constraints,
    model: &dyn CostModel,
    options: DriverOptions,
) -> Vec<SearchOutcome> {
    let work: Vec<(usize, Option<&CutSet>)> =
        (0..program.block_count()).map(|b| (b, None)).collect();
    identify_blocks(program, identifier, &work, constraints, model, options)
}

/// Selects up to `options.max_instructions` instructions across the whole program using
/// `identifier`, with the per-block identification fanned out in parallel.
///
/// The merge strategy follows [`Identifier::refines_under_exclusion`]; see the module
/// documentation. The result is deterministic for a given input and identical for the
/// parallel and sequential paths.
#[must_use]
pub fn select_program(
    program: &Program,
    identifier: &dyn Identifier,
    constraints: Constraints,
    model: &dyn CostModel,
    options: DriverOptions,
) -> SelectionResult {
    if identifier.refines_under_exclusion() {
        select_iteratively(program, identifier, constraints, model, options)
    } else {
        select_one_shot(program, identifier, constraints, model, options)
    }
}

/// One per-block answer of a refresh round of the iterative strategy: what the
/// strategy consumes from an identifier invocation (or from a pool answer standing in
/// for one — see [`super::sweep`]).
pub(crate) struct BlockAnswer {
    /// The best candidate cut of the block under the current exclusions.
    pub best: Option<IdentifiedCut>,
    /// `cuts_considered` of the (actual or reconstructed) invocation.
    pub cuts_considered: u64,
}

/// The iterative strategy loop, generic over how a round's stale blocks are refreshed.
///
/// `refresh` receives the `(block_index, exclusions)` pairs whose exclusion set changed
/// and returns one [`BlockAnswer`] per pair, in order. Every caller — the direct driver
/// below and the pool-backed [`super::sweep::SweepPlanner`] — shares this loop, so the
/// commit order, tie-breaks and `identifier_calls` accounting cannot drift between the
/// direct and the memoised path (the differential test-suite asserts they are
/// byte-identical).
pub(crate) fn select_iteratively_core(
    program: &Program,
    max_instructions: usize,
    mut refresh: impl FnMut(&[(usize, &CutSet)]) -> Vec<BlockAnswer>,
) -> SelectionResult {
    let block_count = program.block_count();
    let mut excluded: Vec<CutSet> = program.blocks().iter().map(CutSet::for_dfg).collect();
    let mut candidate: Vec<Option<IdentifiedCut>> = vec![None; block_count];
    let mut stale: Vec<bool> = vec![true; block_count];
    // Cuts already committed per block, in commit order: a new candidate must stay
    // convex once these are contracted (see `cut::is_convex_under_contractions`),
    // otherwise the selection could not be collapsed into AFU instructions.
    let mut committed: Vec<Vec<CutSet>> = vec![Vec::new(); block_count];
    let mut result = SelectionResult {
        chosen: Vec::new(),
        total_weighted_saving: 0.0,
        identifier_calls: 0,
        cuts_considered: 0,
    };

    while result.chosen.len() < max_instructions {
        let stale_blocks: Vec<usize> = (0..block_count).filter(|&b| stale[b]).collect();
        let work: Vec<(usize, &CutSet)> = stale_blocks.iter().map(|&b| (b, &excluded[b])).collect();
        let answers = refresh(&work);
        let mut any_rejected = false;
        for (&block_index, answer) in stale_blocks.iter().zip(answers) {
            result.identifier_calls += 1;
            result.cuts_considered += answer.cuts_considered;
            let mut rejected = false;
            candidate[block_index] = answer.best.filter(|identified| {
                let dfg = program.block(block_index);
                let convex = crate::cut::is_convex_under_contractions(
                    dfg,
                    &identified.cut,
                    &committed[block_index],
                );
                if !convex {
                    // The candidate interlocks with an earlier instruction of this
                    // block (it has both ancestors and descendants inside one).
                    // Exclude only its downstream side — the nodes fed by a committed
                    // instruction — and re-identify: the upstream side remains
                    // available, so the retry can still salvage a smaller cut there.
                    // The block stays stale and no commit happens until every stale
                    // block has a valid answer.
                    let downstream = crate::cut::downstream_of(dfg, &committed[block_index]);
                    let mut blocked = CutSet::for_dfg(dfg);
                    for id in identified.cut.iter().filter(|&id| downstream.contains(id)) {
                        blocked.insert(id);
                    }
                    if blocked.is_empty() || blocked.len() == identified.cut.len() {
                        // Degenerate split: fall back to excluding the whole cut so
                        // the retry loop always makes progress.
                        blocked = identified.cut.clone();
                    }
                    excluded[block_index].union_with(&blocked);
                    rejected = true;
                }
                convex
            });
            stale[block_index] = rejected;
            any_rejected |= rejected;
        }
        if any_rejected {
            continue;
        }
        // Commit the candidate saving the most dynamic cycles (merit × block frequency);
        // ties resolve to the highest block index, exactly as in `select_iterative`
        // (the two merges share the helper, so they cannot drift apart).
        let Some((block_index, weighted)) =
            crate::selection::best_weighted_block(program, &candidate)
        else {
            break;
        };
        let Some(identified) = candidate[block_index].take() else {
            break;
        };
        if weighted <= 0.0 {
            break;
        }
        excluded[block_index].union_with(&identified.cut);
        committed[block_index].push(identified.cut.clone());
        stale[block_index] = true;
        result.total_weighted_saving += weighted;
        result.chosen.push(ChosenCut {
            block_index,
            identified,
        });
    }
    result
}

/// Iterative strategy: re-identify blocks whose exclusion set changed, commit the best.
fn select_iteratively(
    program: &Program,
    identifier: &dyn Identifier,
    constraints: Constraints,
    model: &dyn CostModel,
    options: DriverOptions,
) -> SelectionResult {
    select_iteratively_core(program, options.max_instructions, |work| {
        let work: Vec<(usize, Option<&CutSet>)> =
            work.iter().map(|&(b, excl)| (b, Some(excl))).collect();
        identify_blocks(program, identifier, &work, constraints, model, options)
            .into_iter()
            .map(|outcome| BlockAnswer {
                best: outcome.best,
                cuts_considered: outcome.stats.cuts_considered,
            })
            .collect()
    })
}

/// One-shot strategy: pool all per-block candidates, commit greedily by dynamic saving.
fn select_one_shot(
    program: &Program,
    identifier: &dyn Identifier,
    constraints: Constraints,
    model: &dyn CostModel,
    options: DriverOptions,
) -> SelectionResult {
    let outcomes = identify_program(program, identifier, constraints, model, options);
    let mut result = SelectionResult {
        chosen: Vec::new(),
        total_weighted_saving: 0.0,
        identifier_calls: program.block_count() as u64,
        cuts_considered: outcomes.iter().map(|o| o.stats.cuts_considered).sum(),
    };

    let mut pool: Vec<(usize, IdentifiedCut, f64)> = Vec::new();
    for (block_index, outcome) in outcomes.into_iter().enumerate() {
        let weight = program.block(block_index).exec_count() as f64;
        for candidate in outcome.candidates {
            let weighted = candidate.evaluation.merit * weight;
            if weighted > 0.0 {
                pool.push((block_index, candidate, weighted));
            }
        }
    }
    // Stable sort: equal savings keep block order, making the commit order deterministic.
    pool.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));

    for (block_index, candidate, weighted) in pool {
        if result.chosen.len() >= options.max_instructions {
            break;
        }
        let overlaps = result.chosen.iter().any(|chosen| {
            chosen.block_index == block_index && chosen.identified.cut.intersects(&candidate.cut)
        });
        if overlaps {
            continue;
        }
        // Skip candidates that would interlock with an already-accepted instruction of
        // the same block: collapsing the accepted cut would leave this one non-convex.
        let accepted: Vec<CutSet> = result
            .chosen
            .iter()
            .filter(|chosen| chosen.block_index == block_index)
            .map(|chosen| chosen.identified.cut.clone())
            .collect();
        if !crate::cut::is_convex_under_contractions(
            program.block(block_index),
            &candidate.cut,
            &accepted,
        ) {
            continue;
        }
        result.total_weighted_saving += weighted;
        result.chosen.push(ChosenCut {
            block_index,
            identified: candidate,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MultiCut, SingleCut};
    use crate::selection::{select_iterative, SelectionOptions};
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn toy_program() -> Program {
        let mut p = Program::new("toy");

        let mut b = DfgBuilder::new("hot_mac");
        b.exec_count(1000);
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let m = b.mul(x, y);
        let s = b.add(m, acc);
        let n = b.mul(s, y);
        let t = b.add(n, x);
        b.output("acc", t);
        p.add_block(b.finish());

        let mut b = DfgBuilder::new("warm_sat");
        b.exec_count(100);
        let v = b.input("v");
        let lo = b.input("lo");
        let hi = b.input("hi");
        let clipped_hi = b.min(v, hi);
        let clipped = b.max(clipped_hi, lo);
        let scaled = b.shl(clipped, b.imm(1));
        b.output("o", scaled);
        p.add_block(b.finish());

        // A single one-cycle operation: replacing it with a one-cycle instruction saves
        // nothing, so no identifier ever proposes a cut here.
        let mut b = DfgBuilder::new("cold_bits");
        b.exec_count(1);
        let a = b.input("a");
        let c = b.input("c");
        let x1 = b.xor(a, c);
        b.output("o", x1);
        p.add_block(b.finish());

        p
    }

    #[test]
    fn parallel_and_sequential_paths_are_identical() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        for identifier in [&SingleCut::new() as &dyn Identifier, &MultiCut::new(2)] {
            for constraints in [Constraints::new(2, 1), Constraints::new(4, 2)] {
                let parallel =
                    select_program(&p, identifier, constraints, &model, DriverOptions::new(8));
                let sequential = select_program(
                    &p,
                    identifier,
                    constraints,
                    &model,
                    DriverOptions::new(8).sequential(),
                );
                assert_eq!(parallel, sequential, "{}", identifier.name());
            }
        }
    }

    #[test]
    fn single_cut_driver_reproduces_select_iterative() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        for constraints in [Constraints::new(2, 1), Constraints::new(4, 2)] {
            for ninstr in [1usize, 2, 8] {
                let legacy =
                    select_iterative(&p, constraints, &model, SelectionOptions::new(ninstr));
                let engine = select_program(
                    &p,
                    &SingleCut::new(),
                    constraints,
                    &model,
                    DriverOptions::new(ninstr),
                );
                assert_eq!(legacy, engine, "{constraints}, Ninstr={ninstr}");
            }
        }
    }

    #[test]
    fn driver_respects_the_instruction_budget_and_block_disjointness() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        let result = select_program(
            &p,
            &SingleCut::new(),
            Constraints::new(4, 2),
            &model,
            DriverOptions::new(2),
        );
        assert!(result.len() <= 2);
        for i in 0..result.chosen.len() {
            for j in i + 1..result.chosen.len() {
                if result.chosen[i].block_index == result.chosen[j].block_index {
                    assert!(!result.chosen[i]
                        .identified
                        .cut
                        .intersects(&result.chosen[j].identified.cut));
                }
            }
        }
    }

    #[test]
    fn identify_program_returns_one_outcome_per_block() {
        let p = toy_program();
        let model = DefaultCostModel::new();
        let outcomes = identify_program(
            &p,
            &SingleCut::new(),
            Constraints::new(4, 2),
            &model,
            DriverOptions::default(),
        );
        assert_eq!(outcomes.len(), p.block_count());
        // The hot MAC block has a profitable cut; the cold logic block does not.
        assert!(outcomes[0].best.is_some());
        assert!(outcomes[2].best.is_none());
    }

    #[test]
    fn identical_blocks_share_one_search_without_changing_results() {
        // A program of repeated copies of the same block (an unrolled loop): the
        // deduplicated driver must return outcomes byte-identical to the reference
        // per-block path, statistics included.
        let mut p = Program::new("unrolled");
        for i in 0..4 {
            let mut b = DfgBuilder::new(format!("body_{i}"));
            b.exec_count(500);
            let x = b.input("x");
            let y = b.input("y");
            let acc = b.input("acc");
            let m = b.mul(x, y);
            let s = b.add(m, acc);
            b.output("acc", s);
            p.add_block(b.finish());
        }
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(4, 2);
        let deduped = identify_program(
            &p,
            &SingleCut::new(),
            constraints,
            &model,
            DriverOptions::default().sequential(),
        );
        let reference = identify_program(
            &p,
            &SingleCut::new(),
            constraints,
            &model,
            DriverOptions::default()
                .sequential()
                .with_block_dedup(false),
        );
        assert_eq!(deduped, reference);
        assert!(deduped.iter().all(|o| o == &deduped[0]));

        // Selection across the duplicates also matches the reference end to end.
        let fast = select_program(
            &p,
            &SingleCut::new(),
            constraints,
            &model,
            DriverOptions::new(4).sequential(),
        );
        let slow = select_program(
            &p,
            &SingleCut::new(),
            constraints,
            &model,
            DriverOptions::new(4).sequential().with_block_dedup(false),
        );
        assert_eq!(fast, slow);
        assert_eq!(fast.chosen.len(), 4);
    }

    #[test]
    fn options_deserialise_from_the_pre_split_wire_format() {
        // Request files written before `intra_block_levels` existed must keep parsing,
        // defaulting to the sequential-within-a-block behaviour.
        let old = r#"{"max_instructions": 4, "parallel": true}"#;
        let options: DriverOptions = serde::json::from_str(old).expect("old wire format");
        assert_eq!(options, DriverOptions::new(4));

        // The PR 3 wire format (no `cut_pool`) keeps parsing, defaulting to the
        // pool-backed sweep behaviour (which changes no single-pair result).
        let pr3 = r#"{"max_instructions": 4, "parallel": true, "intra_block_levels": 3}"#;
        let options: DriverOptions = serde::json::from_str(pr3).expect("PR 3 wire format");
        assert_eq!(options, DriverOptions::new(4).with_intra_block_levels(3));

        // The PR 6 wire format (no `block_dedup`) keeps parsing, defaulting to
        // deduplicated identical blocks (which changes no result).
        let pr6 = r#"{"max_instructions": 4, "parallel": true, "intra_block_levels": 3, "cut_pool": false}"#;
        let options: DriverOptions = serde::json::from_str(pr6).expect("PR 6 wire format");
        assert_eq!(
            options,
            DriverOptions::new(4)
                .with_intra_block_levels(3)
                .with_cut_pool(false)
        );

        let new = r#"{"max_instructions": 4, "parallel": true, "intra_block_levels": 3, "cut_pool": false, "block_dedup": false}"#;
        let options: DriverOptions = serde::json::from_str(new).expect("current wire format");
        assert_eq!(
            options,
            DriverOptions::new(4)
                .with_intra_block_levels(3)
                .with_cut_pool(false)
                .with_block_dedup(false)
        );
        // The current format round-trips byte-identically.
        assert_eq!(
            serde::json::to_string(&options),
            new.replace(": ", ":").replace(", ", ",")
        );

        let bad = r#"{"max_instructions": 4, "parallel": true, "intra_block_levels": -1}"#;
        assert!(serde::json::from_str::<DriverOptions>(bad).is_err());
        let bad = r#"{"max_instructions": 4, "parallel": true, "cut_pool": 3}"#;
        assert!(serde::json::from_str::<DriverOptions>(bad).is_err());
    }

    #[test]
    fn empty_program_selects_nothing() {
        let p = Program::new("empty");
        let model = DefaultCostModel::new();
        let result = select_program(
            &p,
            &SingleCut::new(),
            Constraints::new(4, 2),
            &model,
            DriverOptions::new(4),
        );
        assert!(result.is_empty());
        assert_eq!(result.identifier_calls, 0);
    }
}
