//! Name-based lookup of identification algorithms.
//!
//! The registry maps stable name strings to factories producing boxed
//! [`super::Identifier`] implementations, so that benchmarks, examples, tests and future
//! front-ends (CLI flags, config files, service requests) select an algorithm by data
//! instead of by hand-written dispatch. [`IdentifierRegistry::core_algorithms`] registers
//! this crate's three algorithms; `ise_baselines::register_baselines` adds the three
//! prior-art baselines, and `ise_baselines::full_registry` returns all six.

use super::{Exhaustive, Identifier, MultiCut, SingleCut};
use crate::error::IseError;

/// Construction parameters shared by all registry factories.
///
/// One config is passed to every factory; each algorithm picks out the fields it
/// understands and ignores the rest, so a single config can drive a whole comparison
/// sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IdentifierConfig {
    /// Per-invocation exploration budget for the exact searches (`None` = unbounded).
    pub exploration_budget: Option<u64>,
    /// Number of simultaneous cuts the `"multicut"` identifier searches for.
    pub multicut_slots: usize,
    /// Largest block the `"exhaustive"` oracle will enumerate.
    pub exhaustive_node_limit: usize,
}

impl Default for IdentifierConfig {
    fn default() -> Self {
        IdentifierConfig {
            exploration_budget: None,
            multicut_slots: 2,
            exhaustive_node_limit: 20,
        }
    }
}

impl IdentifierConfig {
    /// Sets the exploration budget for the exact searches.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }

    /// Sets the number of simultaneous cuts for the `"multicut"` identifier.
    #[must_use]
    pub fn with_multicut_slots(mut self, slots: usize) -> Self {
        self.multicut_slots = slots;
        self
    }

    /// Checks that every field is inside the domain the bundled algorithms accept, so
    /// that factories never panic on request-supplied parameters.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::InvalidRequest`] when `multicut_slots` is outside `1..=255`
    /// (the limits of the underlying search).
    pub fn validate(&self) -> Result<(), IseError> {
        if !(1..=255).contains(&self.multicut_slots) {
            return Err(IseError::InvalidRequest(format!(
                "multicut_slots must be in 1..=255, got {}",
                self.multicut_slots
            )));
        }
        Ok(())
    }
}

/// A factory producing one configured identifier.
pub type IdentifierFactory = fn(&IdentifierConfig) -> Box<dyn Identifier>;

/// A registry of identification algorithms addressable by name.
///
/// Lookup is case-insensitive and treats `-` and `_` as equal, so `"MaxMISO"`,
/// `"maxmiso"` and `"max_miso"` can all resolve to the same entry as long as their
/// canonical forms match. Registering a name that canonicalises to an existing entry
/// replaces it.
#[derive(Default)]
pub struct IdentifierRegistry {
    entries: Vec<(&'static str, IdentifierFactory)>,
}

/// Canonical form used for lookup: lower-case with `_` folded to `-`.
fn canonical(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == '_' {
                '-'
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect()
}

impl IdentifierRegistry {
    /// The canonical form every lookup is performed in: lower-case with `_`
    /// folded to `-`.
    ///
    /// Exposed so that front-ends matching algorithm names outside the registry
    /// (e.g. parsing an enum from a request string) follow exactly the same
    /// rules and can never diverge from registry resolution.
    #[must_use]
    pub fn canonical_name(name: &str) -> String {
        canonical(name)
    }

    /// Creates an empty registry.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// Creates a registry holding this crate's algorithms: `"single-cut"`,
    /// `"multicut"` and `"exhaustive"`.
    #[must_use]
    pub fn core_algorithms() -> Self {
        let mut registry = Self::empty();
        registry.register("single-cut", |config| {
            Box::new(SingleCut::new().with_exploration_budget(config.exploration_budget))
        });
        registry.register("multicut", |config| {
            Box::new(
                MultiCut::new(config.multicut_slots)
                    .with_exploration_budget(config.exploration_budget),
            )
        });
        registry.register("exhaustive", |config| {
            Box::new(Exhaustive::new().with_node_limit(config.exhaustive_node_limit))
        });
        registry
    }

    /// Registers (or replaces) an algorithm under `name`.
    pub fn register(&mut self, name: &'static str, factory: IdentifierFactory) {
        let key = canonical(name);
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|(existing, _)| canonical(existing) == key)
        {
            *entry = (name, factory);
        } else {
            self.entries.push((name, factory));
        }
    }

    /// Instantiates the named algorithm with the default configuration.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::UnknownAlgorithm`] — whose message lists the registered
    /// names — when `name` does not resolve.
    pub fn create(&self, name: &str) -> Result<Box<dyn Identifier>, IseError> {
        self.create_configured(name, &IdentifierConfig::default())
    }

    /// Instantiates the named algorithm with an explicit configuration.
    ///
    /// The configuration is validated before it reaches any factory, so parameters
    /// taken from an untrusted request surface as an error instead of a panic.
    ///
    /// # Errors
    ///
    /// Returns [`IseError::UnknownAlgorithm`] when `name` does not resolve, or
    /// [`IseError::InvalidRequest`] when the configuration is out of domain.
    pub fn create_configured(
        &self,
        name: &str,
        config: &IdentifierConfig,
    ) -> Result<Box<dyn Identifier>, IseError> {
        config.validate()?;
        let key = canonical(name);
        self.entries
            .iter()
            .find(|(registered, _)| canonical(registered) == key)
            .map(|(_, factory)| factory(config))
            .ok_or_else(|| IseError::UnknownAlgorithm {
                requested: name.to_string(),
                available: self.names().iter().map(ToString::to_string).collect(),
            })
    }

    /// Returns `true` if `name` resolves to a registered algorithm.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        let key = canonical(name);
        self.entries
            .iter()
            .any(|(registered, _)| canonical(registered) == key)
    }

    /// The registered names, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(name, _)| *name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constraints;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    #[test]
    fn core_registry_resolves_its_three_algorithms() {
        let registry = IdentifierRegistry::core_algorithms();
        assert_eq!(
            registry.names(),
            vec!["single-cut", "multicut", "exhaustive"]
        );
        for name in registry.names() {
            let identifier = registry.create(name).expect("registered");
            assert_eq!(identifier.name(), name);
        }
        let err = registry.create("no-such-algorithm").unwrap_err();
        assert!(matches!(
            &err,
            crate::IseError::UnknownAlgorithm { requested, available }
                if requested == "no-such-algorithm" && available.len() == 3
        ));
        // The error message is self-diagnosing: it lists every registered name.
        let message = err.to_string();
        for name in registry.names() {
            assert!(message.contains(name), "{message}");
        }
    }

    #[test]
    fn lookup_is_case_and_separator_insensitive() {
        let registry = IdentifierRegistry::core_algorithms();
        assert!(registry.contains("Single-Cut"));
        assert!(registry.contains("single_cut"));
        assert!(registry.create("SINGLE_CUT").is_ok());
        assert!(!registry.contains("single cut"));
    }

    #[test]
    fn out_of_domain_config_is_an_error_not_a_panic() {
        let registry = IdentifierRegistry::core_algorithms();
        for slots in [0usize, 256] {
            let config = IdentifierConfig::default().with_multicut_slots(slots);
            let err = registry.create_configured("multicut", &config).unwrap_err();
            assert!(matches!(err, crate::IseError::InvalidRequest(_)), "{err}");
        }
    }

    #[test]
    fn registering_an_existing_name_replaces_it() {
        let mut registry = IdentifierRegistry::core_algorithms();
        let before = registry.names().len();
        registry.register("single_cut", |_| Box::new(SingleCut::new()));
        assert_eq!(registry.names().len(), before);
    }

    #[test]
    fn config_reaches_the_created_identifier() {
        let registry = IdentifierRegistry::core_algorithms();
        let config = IdentifierConfig::default().with_exploration_budget(Some(2));
        let identifier = registry.create_configured("single-cut", &config).unwrap();

        let mut b = DfgBuilder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.mul(x, y);
        let s = b.add(m, x);
        b.output("o", s);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let outcome = identifier.identify(&g, &Constraints::new(4, 2), &model);
        assert!(outcome.stats.budget_exhausted);
    }
}
