//! # ise-core — automatic instruction-set extension identification and selection
//!
//! This crate implements the algorithms of *Atasu, Pozzi and Ienne, "Automatic
//! Application-Specific Instruction-Set Extensions under Microarchitectural
//! Constraints"* (DAC 2003 / IJPP 31(6), 2003):
//!
//! * [`cut`] — cuts (subgraphs) of a basic-block dataflow graph and the reference
//!   implementations of `IN(S)`, `OUT(S)` and convexity;
//! * [`bitset`] — the fixed-capacity `u64`-word [`BitSet`] the kernel packs its hot
//!   per-node state into (membership, reach, source unions, precomputed masks);
//! * [`Constraints`] — the microarchitectural constraints `Nin`/`Nout` (plus optional
//!   area and size budgets);
//! * [`kernel`] — the shared branch-and-bound [`SearchKernel`](kernel::SearchKernel):
//!   one explicit-stack walk of the pruned decision tree, with the incremental
//!   bookkeeping factored into a snapshot-and-restorable
//!   [`IncrementalCutState`](kernel::IncrementalCutState) and optional deterministic
//!   intra-block subtree parallelism;
//! * [`SingleCutSearch`] — the exact single-cut identification algorithm of Section 6.1
//!   with incremental constraint checking and subtree pruning, as a kernel policy;
//! * [`MultiCutSearch`] — the multiple-cut generalisation of Section 6.2, as a kernel
//!   policy;
//! * [`selection`] — the optimal (Section 6.2) and iterative (Section 6.3) selection
//!   strategies across all basic blocks, plus an area-budgeted variant;
//! * [`collapse`] — rewriting blocks so that selected cuts become
//!   [`ise_ir::Opcode::Afu`] instructions, with extraction of the AFU datapath;
//! * [`exhaustive`] — a brute-force oracle used by the test-suite;
//! * [`engine`] — the unified identification engine: the [`Identifier`] trait shared by
//!   every algorithm (including the `ise-baselines` ones), a name-based
//!   [`IdentifierRegistry`], and a `rayon`-parallel program driver
//!   ([`select_program`]) with deterministic merging.
//!
//! # Example
//!
//! ```
//! use ise_core::{identify_single_cut, Constraints};
//! use ise_hw::DefaultCostModel;
//! use ise_ir::DfgBuilder;
//!
//! // A multiply-accumulate with saturation: a classic ISE candidate.
//! let mut b = DfgBuilder::new("sat_mac");
//! let x = b.input("x");
//! let y = b.input("y");
//! let acc = b.input("acc");
//! let prod = b.mul(x, y);
//! let sum = b.add(prod, acc);
//! let hi = b.gt(sum, b.imm(32767));
//! let sat = b.select(hi, b.imm(32767), sum);
//! b.output("acc", sat);
//! let block = b.finish();
//!
//! let model = DefaultCostModel::new();
//! let outcome = identify_single_cut(&block, Constraints::new(3, 1), &model);
//! let best = outcome.best.expect("profitable instruction found");
//! assert_eq!(best.cut.len(), 4);        // the whole saturating MAC
//! assert!(best.evaluation.merit > 0.0); // cycles saved per execution
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod collapse;
mod constraints;
pub mod cut;
pub mod engine;
mod error;
pub mod exhaustive;
pub mod kernel;
pub mod multicut;
pub mod pool;
mod search;
pub mod selection;
pub mod structural;

pub use bitset::BitSet;
pub use constraints::Constraints;
pub use cut::{CutEvaluation, CutSet};
pub use engine::{
    extract_templates, identify_blocks, run_corpus, run_corpus_streaming,
    run_corpus_streaming_warm, run_corpus_warm, run_template_selection, select_program,
    select_templates, select_templates_budgeted, select_templates_exhaustive, sweep_program,
    BudgetGroup, CorpusOptions, CorpusOutcome, CorpusPool, CorpusStats, CorpusStreamOutcome,
    DriverOptions, Identifier, IdentifierConfig, IdentifierRegistry, SiteRef, SweepPlanner,
    SweepStats, Template, TemplateBudget, TemplateReport, TemplateSelectPolicy, TemplateSelection,
    WarmCacheConfig, WarmCacheStats, WarmPoolCache, SNAPSHOT_FILE,
};
pub use error::IseError;
pub use kernel::reference::{identify_single_cut_reference, ReferenceCutState};
pub use multicut::{identify_multiple_cuts, MultiCutOutcome, MultiCutSearch};
pub use search::{identify_single_cut, IdentifiedCut, SearchOutcome, SearchStats, SingleCutSearch};
pub use selection::{
    select_iterative, select_optimal, select_under_area, ChosenCut, SelectionOptions,
    SelectionResult,
};
pub use structural::{StructuralForm, StructuralKey};
