//! The shared branch-and-bound search kernel.
//!
//! The paper's central data structure — the pruned binary search tree over a
//! reverse-topological ordering of one basic block (Section 6.1) — used to be
//! reimplemented three times: by the single-cut search, by the `(M+1)`-ary multiple-cut
//! generalisation and by the exhaustive oracle. This module factors the tree walk out
//! into one explicit-stack kernel with pluggable decision hooks, so each algorithm is a
//! thin [`SearchPolicy`] over the same machinery:
//!
//! * [`BlockContext`] — the immutable per-block data every search precomputes once: the
//!   consumers-before-producers ordering, deduplicated operand sources, per-node cost
//!   model evaluations, the blocked-node mask, and the word-packed per-node masks
//!   (consumers, ancestors, descendants, operand sources) plus the remaining
//!   software-cycle mass per level that drive the bitset state and the frontier bound;
//! * [`IncrementalCutState`] — the snapshot-and-restorable incremental bookkeeping for
//!   *one* cut under construction (`IN(S)`, `OUT(S)`, convexity reachability, software
//!   cost, hardware critical path, area), packed into [`BitSet`]s so each decision is a
//!   handful of AND-with-mask word operations, undone through an internal LIFO journal;
//! * [`SearchPolicy`] — the per-algorithm hooks: how many branches a decision level has,
//!   how to apply/undo one branch, and when to offer a candidate to the incumbent;
//! * [`Incumbent`] — the incumbent solution plus the ascending log of its improvements,
//!   which makes deterministic subtree merging possible (see below);
//! * [`SearchKernel`] — the driver: a sequential explicit-stack depth-first walk, or a
//!   two-phase parallel walk that splits the decision tree at its top `split_levels`
//!   levels into independent subtree tasks, fans them out with `rayon`, and merges
//!   incumbents and [`SearchStats`] in subtree-index order.
//!
//! The [`mod@reference`] submodule retains the original `Vec<bool>`-based state
//! ([`ReferenceCutState`](reference::ReferenceCutState)) as an executable specification:
//! the property suite pits the bitset state against it decision by decision, and the
//! scaling bench uses it as the "before" baseline.
//!
//! # The word-packed state
//!
//! Per decided node the state keeps two bits — cut membership and the convexity reach
//! flag — plus the running union of the members' operand-source masks. The per-node
//! feasibility checks then collapse to mask tests against [`BlockContext`]
//! precomputations:
//!
//! * *external consumer* (for `OUT(S)`): `consumers(v) ⊄ cut`, one AND-NOT-with-mask
//!   scan;
//! * *convexity probe*: `consumers(v) ∩ reach ≠ ∅`, one AND-with-mask scan — `reach`
//!   holds exactly the decided-outside nodes with a downstream path into the cut;
//! * *reach maintenance* (on deciding a node outside): `descendants(v) ∩ cut ≠ ∅`.
//!   Nodes are decided consumers-first, so every descendant of `v` is decided before
//!   `v` and later cut growth only adds ancestors — the flag, once computed, stays
//!   correct without propagation;
//! * *`IN(S)`*: popcount of `(source-node union) AND NOT cut` plus popcount of the
//!   block-input union, both maintained by journalled word-wise unions.
//!
//! # The frontier bound
//!
//! [`BoundCheck`] carries an optimistic upper bound on the merit reachable in the
//! subtree below a decision: the merit the cut would reach if every not-yet-decided,
//! non-blocked node (the *remaining frontier*, whose software-cycle mass is precomputed
//! per level) joined it for free — software mass is additive while the hardware
//! critical path can only grow, so `cut_merit(software + mass, critical_path)` can only
//! overestimate. When even that bound cannot beat the incumbent threshold the subtree
//! is pruned: at a 1-branch this is counted as [`SearchStats::pruned_bound`] (a new
//! category inside the `cuts_considered` identity), at a software branch as
//! [`SearchStats::bound_subtree_prunes`] (no cut is attempted, so `cuts_considered` is
//! not bumped). The default threshold is zero — an incumbent starts at score zero and
//! only strictly positive offers win, so a subtree whose bound is `≤ 0` contains no
//! answer. A zero threshold depends only on the tree path (never on the visit order),
//! which keeps the parallel walk byte-identical and pool fills reconstructable;
//! policies that opt into the sharper incumbent-score threshold must declare
//! [`SearchPolicy::requires_sequential`].
//!
//! # Determinism of the parallel walk
//!
//! The incumbent never influences pruning (the tree is cut by the *constraints* and the
//! path-determined zero-threshold bound, not by the evolving objective), so the set of
//! visited tree nodes — and therefore every counter in [`SearchStats`] except
//! `best_updates` — is identical however the tree is partitioned. `best_updates` and
//! the identity of the returned cut *do* depend on visit order: a sequential search
//! only improves its incumbent when a candidate beats the best seen anywhere so far. To
//! reproduce that exactly, each subtree records the ascending merit sequence of its
//! local improvements; the merge replays those sequences in subtree-index (=
//! depth-first) order against the running global best. The result — incumbent,
//! `best_updates` and all — is byte-identical to the sequential walk, for any thread
//! count.
//!
//! An [exploration budget](SearchKernel::exploration_budget) is a *global* cap on the
//! cuts considered and is inherently sequential; when one is set the kernel always runs
//! the sequential walk, whatever `split_levels` says.

pub mod reference;

use ise_hw::{cut_merit, CostModel, HardwareDelayModel};
use ise_ir::{Dfg, NodeId, Operand};
use rayon::prelude::*;

use crate::bitset::BitSet;
use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};
use crate::search::{IdentifiedCut, SearchStats};

/// Upper bound on the number of subtree tasks one parallel search may create.
///
/// The split depth is clamped so that `arity ^ split_levels` never exceeds this; the
/// decomposition stays deterministic (it depends only on the clamped depth, never on the
/// thread count) and the snapshot memory stays bounded.
const MAX_SUBTREE_TASKS: u64 = 4096;

/// Deduplicated external value source of a node, precomputed for the incremental
/// `IN(S)` bookkeeping.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// The result of another operation node (by node index).
    Node(usize),
    /// A block input variable (by input index).
    Input(usize),
}

/// Immutable per-block search context shared by every policy.
///
/// Holds the search ordering and all per-node precomputations so that constructing a
/// policy is cheap and the hot loop touches only dense arrays and `u64`-word masks.
/// The mask precomputation costs `O(n²/64)` words of memory and time; see the README's
/// SearchKernel section for when that pays off (in short: always, for any block the
/// exponential search itself can afford).
pub struct BlockContext<'a> {
    /// The basic block under search.
    pub dfg: &'a Dfg,
    /// The cost model scoring candidate cuts.
    pub model: &'a dyn CostModel,
    /// The microarchitectural constraints pruning the tree.
    pub constraints: Constraints,
    /// Search order: every node appears after all of its consumers.
    order: Vec<NodeId>,
    /// Deduplicated operand sources per node.
    sources: Vec<Vec<Source>>,
    /// Nodes that may never enter a cut (memory operations, collapsed AFU nodes, nodes
    /// excluded by the caller).
    blocked: Vec<bool>,
    is_output_source: Vec<bool>,
    software_cost: Vec<u32>,
    hardware_delay: Vec<f64>,
    area_cost: Vec<f64>,
    /// Per node: its direct consumer nodes, as a node mask.
    consumers_mask: Vec<BitSet>,
    /// Per node: its strict descendants (transitive consumers), as a node mask.
    descendants: Vec<BitSet>,
    /// Per node: its strict ancestors (transitive producers), as a node mask.
    ancestors: Vec<BitSet>,
    /// Per node: its deduplicated node sources, as a node mask.
    node_src_mask: Vec<BitSet>,
    /// Per node: its deduplicated block-input sources, as an input mask.
    input_src_mask: Vec<BitSet>,
    /// `suffix_mass[ℓ]` = total software cycles of the non-blocked nodes decided at
    /// levels `ℓ..` — the most the remaining frontier can still add to any cut.
    suffix_mass: Vec<u64>,
}

impl<'a> BlockContext<'a> {
    /// Precomputes the search context for one block.
    #[must_use]
    pub fn new(dfg: &'a Dfg, constraints: Constraints, model: &'a dyn CostModel) -> Self {
        let n = dfg.node_count();
        let inputs = dfg.input_count();
        let mut sources = Vec::with_capacity(n);
        let mut blocked = Vec::with_capacity(n);
        let mut is_output_source = Vec::with_capacity(n);
        let mut software_cost = Vec::with_capacity(n);
        let mut hardware_delay = Vec::with_capacity(n);
        let mut area_cost = Vec::with_capacity(n);
        let mut node_src_mask = Vec::with_capacity(n);
        let mut input_src_mask = Vec::with_capacity(n);
        for (id, node) in dfg.iter_nodes() {
            let mut node_sources: Vec<Source> = Vec::new();
            for operand in &node.operands {
                let source = match *operand {
                    Operand::Node(m) => Source::Node(m.index()),
                    Operand::Input(p) => Source::Input(p.index()),
                    Operand::Imm(_) => continue,
                };
                let duplicate = node_sources.iter().any(|s| match (s, &source) {
                    (Source::Node(a), Source::Node(b)) => a == b,
                    (Source::Input(a), Source::Input(b)) => a == b,
                    _ => false,
                });
                if !duplicate {
                    node_sources.push(source);
                }
            }
            let mut nodes_mask = BitSet::with_capacity(n);
            let mut inputs_mask = BitSet::with_capacity(inputs);
            for source in &node_sources {
                match *source {
                    Source::Node(m) => nodes_mask.set(m),
                    Source::Input(p) => inputs_mask.set(p),
                }
            }
            node_src_mask.push(nodes_mask);
            input_src_mask.push(inputs_mask);
            sources.push(node_sources);
            blocked.push(node.is_forbidden_in_afu());
            is_output_source.push(dfg.is_output_source(id));
            software_cost.push(model.software_cycles(node));
            hardware_delay.push(model.hardware_delay(node));
            area_cost.push(model.hardware_area(node));
        }
        // Canonical consumers-first order: structurally determined (certificate
        // tie-breaks), so isomorphic blocks walk isomorphic search trees — the
        // invariant the corpus-level pool sharing in `engine::corpus` relies on.
        let order = ise_ir::canon::canonical_consumers_first(dfg);
        // Consumers-first: when a node is reached, all of its consumers (hence all of
        // its descendants) already carry their final masks.
        let mut consumers_mask = vec![BitSet::with_capacity(n); n];
        let mut descendants = vec![BitSet::with_capacity(n); n];
        for &id in &order {
            let index = id.index();
            let mut desc = BitSet::with_capacity(n);
            for c in dfg.consumers(id) {
                consumers_mask[index].set(c.index());
                desc.set(c.index());
                desc.union_with(&descendants[c.index()]);
            }
            descendants[index] = desc;
        }
        // Producers-first (the reversed order) gives the dual ancestor masks.
        let mut ancestors = vec![BitSet::with_capacity(n); n];
        for &id in order.iter().rev() {
            let index = id.index();
            let mut anc = BitSet::with_capacity(n);
            for source in &sources[index] {
                if let Source::Node(m) = *source {
                    anc.set(m);
                    anc.union_with(&ancestors[m]);
                }
            }
            ancestors[index] = anc;
        }
        let mut ctx = BlockContext {
            dfg,
            model,
            constraints,
            order,
            sources,
            blocked,
            is_output_source,
            software_cost,
            hardware_delay,
            area_cost,
            consumers_mask,
            descendants,
            ancestors,
            node_src_mask,
            input_src_mask,
            suffix_mass: Vec::new(),
        };
        ctx.recompute_suffix_mass();
        ctx
    }

    /// Additionally forbids the given nodes from entering any cut.
    pub fn block_nodes(&mut self, excluded: &CutSet) {
        for id in excluded.iter() {
            if id.index() < self.blocked.len() {
                self.blocked[id.index()] = true;
            }
        }
        // Blocked nodes can never contribute software mass to a cut.
        self.recompute_suffix_mass();
    }

    fn recompute_suffix_mass(&mut self) {
        let depth = self.order.len();
        let mut mass = vec![0u64; depth + 1];
        for level in (0..depth).rev() {
            let index = self.order[level].index();
            let cost = if self.blocked[index] {
                0
            } else {
                u64::from(self.software_cost[index])
            };
            mass[level] = mass[level + 1] + cost;
        }
        self.suffix_mass = mass;
    }

    /// Number of decision levels (= operation nodes of the block).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.order.len()
    }

    /// The node decided at `level` of the search tree.
    #[must_use]
    pub fn node_at(&self, level: usize) -> NodeId {
        self.order[level]
    }

    /// Returns `true` if `node` may never enter a cut.
    #[must_use]
    pub fn is_blocked(&self, node: NodeId) -> bool {
        self.blocked[node.index()]
    }

    /// Software cycles the cost model assigns to `node`.
    #[must_use]
    pub fn node_software_cost(&self, node: NodeId) -> u32 {
        self.software_cost[node.index()]
    }

    /// Total software cycles of the non-blocked nodes still undecided at levels
    /// `level..` — the frontier mass feeding the optimistic bound.
    #[must_use]
    pub fn remaining_mass(&self, level: usize) -> u64 {
        self.suffix_mass[level.min(self.suffix_mass.len() - 1)]
    }

    /// The strict descendants (transitive consumers) of `node`, as a node mask.
    #[must_use]
    pub fn descendants_of(&self, node: NodeId) -> &BitSet {
        &self.descendants[node.index()]
    }

    /// The strict ancestors (transitive producers) of `node`, as a node mask. Dual to
    /// [`descendants_of`](Self::descendants_of): `u ∈ ancestors(v)` iff
    /// `v ∈ descendants(u)`.
    #[must_use]
    pub fn ancestors_of(&self, node: NodeId) -> &BitSet {
        &self.ancestors[node.index()]
    }
}

/// One reversible mutation of an [`IncrementalCutState`], kept on its LIFO journal.
#[derive(Debug, Clone)]
enum UndoEntry {
    /// `add` was applied to `node`; the scalar accumulators held these values before,
    /// and the source unions journalled this many words on the spill stack.
    Added {
        node: NodeId,
        outputs: usize,
        software: u64,
        critical_path: f64,
        hardware_cycles: u32,
        area: f64,
        spilled_nodes: u32,
        spilled_inputs: u32,
    },
    /// `mark_outside` was applied to `node`; its reach bit held `reached`.
    MarkedOutside { node: NodeId, reached: bool },
}

/// Result of probing whether a node can join a cut, before mutating anything.
#[derive(Debug, Clone, Copy)]
pub struct AddProbe {
    /// `OUT(S ∪ {node})` — the output-port count after the addition.
    pub outputs: usize,
    /// Whether the grown cut remains convex.
    pub convex: bool,
}

/// The frontier-aware bound evaluated by [`IncrementalCutState::try_add_probed`] after
/// the paper's structural checks (output ports → convexity → node budget).
///
/// `optimistic` is an upper bound on the objective reachable anywhere in the subtree
/// below the attempt; when it cannot *strictly* beat `threshold`, the subtree is pruned
/// and counted as [`SearchStats::pruned_bound`]. With the default zero threshold the
/// bound depends only on the tree path, so the pruned tree is identical for any subtree
/// partition (the determinism gates rely on this). The incumbent-score threshold is
/// sharper but visit-order-dependent, hence sequential-only; it may also carry
/// `input_floor`, the input-port constraint applied to the *monotone* part of `IN(S)`
/// (block-input sources can never be covered by later producers, so their count only
/// grows down the subtree — unlike full `IN(S)`, which the paper shows is unusable for
/// pruning).
#[derive(Debug, Clone, Copy)]
pub struct BoundCheck {
    /// Upper bound on the objective reachable in the subtree below the attempt.
    pub optimistic: f64,
    /// The score the subtree must strictly beat to be worth exploring.
    pub threshold: f64,
    /// `Nin`, when the monotone block-input floor may prune (incumbent mode only).
    pub input_floor: Option<usize>,
}

impl BoundCheck {
    /// A check that never prunes (used by callers that must enumerate exhaustively).
    #[must_use]
    pub fn disabled() -> Self {
        BoundCheck {
            optimistic: f64::INFINITY,
            threshold: 0.0,
            input_floor: None,
        }
    }

    /// The zero-threshold frontier bound with its outcome already decided in the
    /// integer domain (see [`IncrementalCutState::frontier_dead_with`]). Avoids
    /// re-deriving the floating-point optimistic merit on the hot path: the default
    /// bound almost never fires, so its evaluation cost must stay near zero.
    #[must_use]
    pub fn frontier(dead: bool) -> Self {
        BoundCheck {
            optimistic: if dead { 0.0 } else { f64::INFINITY },
            threshold: 0.0,
            input_floor: None,
        }
    }
}

/// Snapshot-and-restorable incremental bookkeeping for one cut under construction.
///
/// Maintains `IN(S)`, `OUT(S)`, the convexity reachability frontier, and the software /
/// critical-path / area accumulators exactly as Section 6.1 of the paper prescribes,
/// with the per-node booleans packed into [`BitSet`]s (see the module docs for the mask
/// identities). Every mutation pushes an entry onto an internal journal, so a search
/// can unwind decisions in LIFO order with [`undo_last`](Self::undo_last) — and because
/// the whole state is `Clone`, a parallel search can snapshot it at any tree node and
/// hand the copy to a subtree task.
///
/// The mask identities assume the walk discipline every kernel policy follows: nodes
/// are decided (added via `try_add*` or marked outside) in the consumers-first order of
/// the [`BlockContext`] and undone in LIFO order. [`reference::ReferenceCutState`]
/// implements the same API without masks and is the executable specification the
/// property suite checks this type against.
#[derive(Debug, Clone)]
pub struct IncrementalCutState {
    /// Membership of the cut.
    cut: BitSet,
    /// Decided-outside nodes with a downstream path into the cut.
    reach: BitSet,
    /// For nodes in the cut: longest downstream delay path within the cut, including
    /// the node's own delay. Entries of nodes outside the cut are kept at `0.0`
    /// (restored on undo, and debug-asserted on add).
    longest_path: Vec<f64>,
    /// Union of the members' node sources (members included once covered).
    src_nodes: BitSet,
    /// Union of the members' block-input sources.
    src_inputs: BitSet,
    /// Members of the cut, in insertion order.
    members: Vec<NodeId>,
    outputs: usize,
    software: u64,
    critical_path: f64,
    /// `cycles_for_delay(critical_path)`, maintained incrementally so the merit and the
    /// zero-threshold frontier bound never re-derive the ceiling on the hot path.
    hardware_cycles: u32,
    area: f64,
    journal: Vec<UndoEntry>,
    /// Word journal of the source-union mutations, shared by both source sets.
    spill: Vec<(u32, u64)>,
}

impl IncrementalCutState {
    /// Fresh (empty-cut) state for a block.
    #[must_use]
    pub fn new(ctx: &BlockContext<'_>) -> Self {
        let n = ctx.dfg.node_count();
        IncrementalCutState {
            cut: BitSet::with_capacity(n),
            reach: BitSet::with_capacity(n),
            longest_path: vec![0.0; n],
            src_nodes: BitSet::with_capacity(n),
            src_inputs: BitSet::with_capacity(ctx.dfg.input_count()),
            members: Vec::new(),
            outputs: 0,
            software: 0,
            critical_path: 0.0,
            hardware_cycles: 0,
            area: 0.0,
            journal: Vec::new(),
            spill: Vec::new(),
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cut has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `IN(S)` of the current cut: popcount of the uncovered node sources plus the
    /// block-input sources.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.src_nodes.count_and_not(&self.cut) + self.src_inputs.count()
    }

    /// `OUT(S)` of the current cut.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Accumulated software cycles of the members.
    #[must_use]
    pub fn software(&self) -> u64 {
        self.software
    }

    /// Critical-path delay of the cut's datapath.
    #[must_use]
    pub fn critical_path(&self) -> f64 {
        self.critical_path
    }

    /// Accumulated normalised datapath area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Merit `M(S)` of the current cut.
    ///
    /// Bit-identical to [`cut_merit`] on the accumulated quantities: `hardware_cycles`
    /// caches `cycles_for_delay(critical_path)` exactly (both are maintained in the
    /// same journalled add/undo), and `u32 → f64` is lossless.
    #[must_use]
    pub fn merit(&self) -> f64 {
        debug_assert_eq!(
            self.hardware_cycles,
            HardwareDelayModel::cycles_for_delay(self.critical_path)
        );
        self.software as f64 - f64::from(self.hardware_cycles)
    }

    /// Returns `true` if `node` is a member of the cut.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.cut.get(node.index())
    }

    /// Upper bound on the merit reachable in the subtree below adding the node at
    /// `level`: the whole remaining frontier (this node included) joins the cut for
    /// free, while the critical path keeps its current value — software mass is
    /// additive and the critical path can only grow, so this only overestimates.
    #[must_use]
    pub fn optimistic_with(&self, ctx: &BlockContext<'_>, level: usize) -> f64 {
        let node = ctx.node_at(level);
        cut_merit(
            self.software + u64::from(ctx.node_software_cost(node)) + ctx.remaining_mass(level + 1),
            self.critical_path,
        )
    }

    /// Upper bound on the merit reachable in the subtree below leaving the node at
    /// `level` in software (the node's own cycles are excluded from the frontier mass).
    #[must_use]
    pub fn optimistic_without(&self, ctx: &BlockContext<'_>, level: usize) -> f64 {
        cut_merit(
            self.software + ctx.remaining_mass(level + 1),
            self.critical_path,
        )
    }

    /// `optimistic_with(ctx, level) <= 0`, decided entirely in the integer domain.
    ///
    /// Exact: the optimistic merit is `S as f64 − C as f64` with `S` the software mass
    /// (far below 2⁵³) and `C` the cached hardware cycles, and comparing two losslessly
    /// converted integers as `f64` orders them identically to the integers themselves.
    /// This is the hot-path form of the default (zero-threshold) frontier bound — no
    /// ceiling, no conversions, two adds and a compare.
    #[must_use]
    pub fn frontier_dead_with(&self, ctx: &BlockContext<'_>, level: usize) -> bool {
        let node = ctx.node_at(level);
        self.software + u64::from(ctx.node_software_cost(node)) + ctx.remaining_mass(level + 1)
            <= u64::from(self.hardware_cycles)
    }

    /// `optimistic_without(ctx, level) <= 0`, decided entirely in the integer domain
    /// (see [`frontier_dead_with`](Self::frontier_dead_with) for the exactness
    /// argument).
    #[must_use]
    pub fn frontier_dead_without(&self, ctx: &BlockContext<'_>, level: usize) -> bool {
        self.software + ctx.remaining_mass(level + 1) <= u64::from(self.hardware_cycles)
    }

    /// Checks the output-port count and convexity of the cut grown by `node`, without
    /// mutating anything: two AND-with-mask scans against the precomputed masks.
    #[must_use]
    pub fn probe_add(&self, ctx: &BlockContext<'_>, node: NodeId) -> AddProbe {
        let index = node.index();
        let consumers = &ctx.consumers_mask[index];
        let has_external_consumer =
            ctx.is_output_source[index] || consumers.intersects_complement(&self.cut);
        let convex = !consumers.intersects(&self.reach);
        AddProbe {
            outputs: self.outputs + usize::from(has_external_consumer),
            convex,
        }
    }

    /// The shared 1-branch attempt used by every pruning policy: counts the cut,
    /// probes it, applies the paper's pruning rules in their canonical order
    /// (output ports → convexity → node budget → frontier bound), and on success adds
    /// `node`.
    ///
    /// Returns `false` — with the matching `pruned_*` counter bumped and the state
    /// untouched — when the branch (and its whole subtree) is eliminated. Living here
    /// once, this block cannot drift apart between the single-cut and multiple-cut
    /// policies, whose per-cut counting and pruning are required to be identical.
    pub fn try_add(
        &mut self,
        ctx: &BlockContext<'_>,
        node: NodeId,
        bound: BoundCheck,
        stats: &mut SearchStats,
    ) -> bool {
        let probe = self.probe_add(ctx, node);
        self.try_add_probed(ctx, node, probe, bound, stats)
    }

    /// The counting-and-pruning half of [`try_add`](Self::try_add), for callers that
    /// already hold the [`AddProbe`] (the pool-fill policy probes first so it can record
    /// the attempt before classifying it). The probe **must** come from
    /// [`probe_add`](Self::probe_add) on the current state.
    pub fn try_add_probed(
        &mut self,
        ctx: &BlockContext<'_>,
        node: NodeId,
        probe: AddProbe,
        bound: BoundCheck,
        stats: &mut SearchStats,
    ) -> bool {
        stats.cuts_considered += 1;
        let within_node_budget = ctx
            .constraints
            .max_nodes
            .is_none_or(|limit| self.len() < limit);
        if probe.outputs > ctx.constraints.max_outputs {
            stats.pruned_output += 1;
            return false;
        }
        if !probe.convex {
            stats.pruned_convexity += 1;
            return false;
        }
        if !within_node_budget {
            stats.pruned_node_budget += 1;
            return false;
        }
        if bound.optimistic <= bound.threshold {
            stats.pruned_bound += 1;
            return false;
        }
        if let Some(limit) = bound.input_floor {
            // Monotone floor on IN(S): block-input sources are never covered later.
            if self.src_inputs.count_or(&ctx.input_src_mask[node.index()]) > limit {
                stats.pruned_bound += 1;
                return false;
            }
        }
        stats.feasible_cuts += 1;
        self.add(ctx, node, probe.outputs);
        true
    }

    /// Adds `node` to the cut, maintaining every quantity incrementally.
    ///
    /// `new_outputs` is the output count probed by [`probe_add`](Self::probe_add); it is
    /// passed back in so the fan-out scan is not repeated.
    pub fn add(&mut self, ctx: &BlockContext<'_>, node: NodeId, new_outputs: usize) {
        let index = node.index();
        // Incremental IN(S): union the node's source masks, journalling overwritten
        // words; covered sources are subtracted by popcount against the cut mask.
        let spilled_nodes = self
            .src_nodes
            .union_with_spill(&ctx.node_src_mask[index], &mut self.spill);
        let spilled_inputs = self
            .src_inputs
            .union_with_spill(&ctx.input_src_mask[index], &mut self.spill);
        self.journal.push(UndoEntry::Added {
            node,
            outputs: self.outputs,
            software: self.software,
            critical_path: self.critical_path,
            hardware_cycles: self.hardware_cycles,
            area: self.area,
            spilled_nodes,
            spilled_inputs,
        });
        // Incremental critical path: consumers inside the cut are already final.
        let downstream = ctx
            .dfg
            .consumers(node)
            .iter()
            .filter(|c| self.cut.get(c.index()))
            .map(|c| self.longest_path[c.index()])
            .fold(0.0f64, f64::max);
        let path_through_node = downstream + ctx.hardware_delay[index];
        debug_assert_eq!(
            self.longest_path[index], 0.0,
            "stale longest_path entry: undo must reset entries of removed members"
        );
        self.longest_path[index] = path_through_node;
        if path_through_node > self.critical_path {
            self.critical_path = path_through_node;
            self.hardware_cycles = HardwareDelayModel::cycles_for_delay(path_through_node);
        }
        self.software += u64::from(ctx.software_cost[index]);
        self.area += ctx.area_cost[index];
        self.outputs = new_outputs;
        self.cut.set(index);
        self.members.push(node);
    }

    /// Records the decision to keep `node` outside the cut: one AND-with-mask test of
    /// the node's descendant mask against the cut (see the module docs for why the flag
    /// stays correct as the cut grows).
    pub fn mark_outside(&mut self, ctx: &BlockContext<'_>, node: NodeId) {
        let index = node.index();
        let reaches = ctx.descendants[index].intersects(&self.cut);
        self.journal.push(UndoEntry::MarkedOutside {
            node,
            reached: self.reach.get(index),
        });
        if reaches {
            self.reach.set(index);
        } else {
            self.reach.clear(index);
        }
    }

    /// Reverses the most recent [`add`](Self::add) or
    /// [`mark_outside`](Self::mark_outside).
    ///
    /// # Panics
    ///
    /// Panics if the journal is empty (an undo without a matching mutation is a policy
    /// bug, not a recoverable condition).
    pub fn undo_last(&mut self, _ctx: &BlockContext<'_>) {
        match self.journal.pop().expect("undo without a prior mutation") {
            UndoEntry::Added {
                node,
                outputs,
                software,
                critical_path,
                hardware_cycles,
                area,
                spilled_nodes,
                spilled_inputs,
            } => {
                let index = node.index();
                self.members.pop();
                self.cut.clear(index);
                // Reset so the next occupant of this entry starts clean (the add
                // debug-asserts this invariant).
                self.longest_path[index] = 0.0;
                for _ in 0..spilled_inputs {
                    let (word, value) = self.spill.pop().expect("input spill underflow");
                    self.src_inputs.restore_word(word, value);
                }
                for _ in 0..spilled_nodes {
                    let (word, value) = self.spill.pop().expect("node spill underflow");
                    self.src_nodes.restore_word(word, value);
                }
                self.outputs = outputs;
                self.software = software;
                self.critical_path = critical_path;
                self.hardware_cycles = hardware_cycles;
                self.area = area;
            }
            UndoEntry::MarkedOutside { node, reached } => {
                let index = node.index();
                if reached {
                    self.reach.set(index);
                } else {
                    self.reach.clear(index);
                }
            }
        }
    }

    /// Packages the current cut and its incrementally maintained evaluation.
    #[must_use]
    pub fn identified(&self, ctx: &BlockContext<'_>) -> IdentifiedCut {
        IdentifiedCut {
            cut: CutSet::from_nodes(ctx.dfg, self.members.iter().copied()),
            evaluation: CutEvaluation {
                nodes: self.members.len(),
                inputs: self.inputs(),
                outputs: self.outputs,
                convex: true,
                software_cycles: self.software,
                hardware_critical_path: self.critical_path,
                hardware_cycles: ctx.model.cycles_for_delay(self.critical_path),
                area: self.area,
                merit: self.merit(),
            },
        }
    }
}

/// The incumbent solution of one (sub)tree walk, plus the ascending score log of its
/// improvements.
///
/// The log is what makes parallel subtree results mergeable without losing the
/// sequential semantics: replaying a later subtree's improvements against the running
/// global best reproduces exactly the updates the sequential walk would have made (see
/// the module documentation).
#[derive(Debug, Clone)]
pub struct Incumbent<T> {
    score: f64,
    improvements: Vec<f64>,
    payload: Option<T>,
}

impl<T> Default for Incumbent<T> {
    fn default() -> Self {
        Incumbent {
            score: 0.0,
            improvements: Vec::new(),
            payload: None,
        }
    }
}

impl<T> Incumbent<T> {
    /// An empty incumbent with score zero (candidates must strictly beat it).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// The best score offered so far (zero when none).
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Offers a candidate; the payload is only built when `score` strictly improves on
    /// the incumbent.
    pub fn offer(&mut self, score: f64, make: impl FnOnce() -> T) {
        if score > self.score {
            self.score = score;
            self.improvements.push(score);
            self.payload = Some(make());
        }
    }

    /// Number of times the incumbent improved.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.improvements.len() as u64
    }

    /// The best payload, consuming the incumbent.
    #[must_use]
    pub fn into_payload(self) -> Option<T> {
        self.payload
    }

    /// Replays `later` — the incumbent of a subtree that the sequential walk would have
    /// visited *after* everything absorbed so far — against this incumbent.
    ///
    /// Within one subtree the improvement log is strictly ascending, so the
    /// sequentially surviving improvements are exactly the suffix strictly above the
    /// current global score, and the subtree's final payload is the payload of the last
    /// survivor. This operation is associative, which is what lets the kernel fold
    /// segments and subtree results left-to-right in subtree-index order.
    pub fn absorb(&mut self, later: Incumbent<T>) {
        let first_surviving = later.improvements.partition_point(|&m| m <= self.score);
        if first_surviving < later.improvements.len() {
            self.improvements
                .extend_from_slice(&later.improvements[first_surviving..]);
            self.score = later.score;
            self.payload = later.payload;
        }
    }
}

/// The per-algorithm hooks of the shared kernel.
///
/// A policy describes one decision tree: `depth()` levels, up to
/// [`choice_count`](Self::choice_count) branches per level (tried in increasing index
/// order), and an [`apply`](Self::apply)/[`undo`](Self::undo) pair that mutates the
/// reusable search state. Returning `false` from `apply` eliminates the whole subtree
/// below that branch — the paper's subtree-elimination pruning.
pub trait SearchPolicy: Sync {
    /// The incumbent payload (e.g. one [`IdentifiedCut`], or a tuple of cuts).
    type Payload: Clone + Send;
    /// The snapshot-and-restorable search state.
    type State: Clone + Send + Sync;

    /// Number of decision levels.
    fn depth(&self) -> usize;

    /// The maximal branching factor of any level (used to bound the parallel split).
    fn max_arity(&self) -> usize;

    /// Fresh state for the root of the tree.
    fn initial_state(&self) -> Self::State;

    /// Number of branches available at `level` in `state`. Must be identical every time
    /// the walk returns to the same tree node with the same state.
    fn choice_count(&self, state: &Self::State, level: usize) -> usize;

    /// Tries to apply branch `choice` at `level`.
    ///
    /// On success the policy must leave exactly one reversible mutation per involved
    /// cut state, may update `stats`, may offer a candidate to `incumbent`, and returns
    /// `true` so the kernel descends. Returning `false` means the branch (and its whole
    /// subtree) is pruned and **no** state mutation may remain.
    fn apply(
        &self,
        state: &mut Self::State,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<Self::Payload>,
    ) -> bool;

    /// Reverses a successful [`apply`](Self::apply) of `choice` at `level`.
    fn undo(&self, state: &mut Self::State, level: usize, choice: usize);

    /// Returns `true` when the policy's pruning reads visit-order-dependent state (the
    /// incumbent-score bound threshold): the kernel then ignores any split hint, since
    /// a partitioned walk would see different incumbents and prune a different tree.
    fn requires_sequential(&self) -> bool {
        false
    }
}

/// One explicit-stack frame of the kernel's depth-first walk: the decision level, the
/// next branch to try, and the branch currently applied (awaiting its undo), if any.
#[derive(Debug, Clone, Copy)]
struct Frame {
    level: usize,
    next_choice: usize,
    applied: Option<usize>,
}

impl Frame {
    fn enter(level: usize) -> Self {
        Frame {
            level,
            next_choice: 0,
            applied: None,
        }
    }
}

/// One ordered merge unit of the parallel walk: either incumbent/stats accumulated
/// inline while enumerating tree-top prefixes, or the result of subtree task `n`.
enum MergeUnit<T> {
    Inline(Incumbent<T>, SearchStats),
    Task(usize),
}

/// The shared branch-and-bound driver. See the module documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchKernel {
    /// Number of top decision-tree levels split into independent parallel subtree
    /// tasks; `0` runs the classic sequential walk.
    pub split_levels: usize,
    /// Optional global cap on [`SearchStats::cuts_considered`], after which the walk
    /// stops and reports its incumbent. Forces the sequential walk.
    pub exploration_budget: Option<u64>,
}

impl SearchKernel {
    /// A sequential kernel with no budget.
    #[must_use]
    pub fn sequential() -> Self {
        SearchKernel::default()
    }

    /// Sets the number of top levels fanned out as parallel subtree tasks.
    #[must_use]
    pub fn with_split_levels(mut self, levels: usize) -> Self {
        self.split_levels = levels;
        self
    }

    /// Sets (or clears) the exploration budget.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }

    /// Runs the policy's search tree to completion and returns the best payload plus
    /// the search statistics. Parallel and sequential walks return identical results.
    #[must_use]
    pub fn run<P: SearchPolicy>(&self, policy: &P) -> (Option<P::Payload>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut incumbent = Incumbent::empty();
        let split = self.effective_split(policy);
        if split == 0 {
            let mut state = policy.initial_state();
            walk(
                policy,
                &mut state,
                0,
                self.exploration_budget,
                &mut stats,
                &mut incumbent,
            );
        } else {
            self.run_split(policy, split, &mut stats, &mut incumbent);
        }
        stats.best_updates = incumbent.updates();
        (incumbent.into_payload(), stats)
    }

    /// The split depth actually used: clamped below the tree depth, disabled entirely
    /// under an exploration budget or a sequential-only policy, and bounded so the task
    /// count stays reasonable.
    fn effective_split<P: SearchPolicy>(&self, policy: &P) -> usize {
        if self.exploration_budget.is_some() || policy.requires_sequential() {
            return 0;
        }
        let depth = policy.depth();
        let mut split = self.split_levels.min(depth.saturating_sub(1));
        let arity = policy.max_arity().max(2) as u64;
        while split > 0
            && arity
                .checked_pow(split as u32)
                .is_none_or(|tasks| tasks > MAX_SUBTREE_TASKS)
        {
            split -= 1;
        }
        split
    }

    /// The two-phase parallel walk: enumerate tree-top prefixes sequentially (recording
    /// inline evaluations and state snapshots in depth-first order), solve the subtrees
    /// in parallel, and fold everything back together in subtree-index order.
    fn run_split<P: SearchPolicy>(
        &self,
        policy: &P,
        split: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<P::Payload>,
    ) {
        let mut units: Vec<MergeUnit<P::Payload>> = Vec::new();
        let mut tasks: Vec<P::State> = Vec::new();
        let mut segment_incumbent = Incumbent::empty();
        let mut segment_stats = SearchStats::default();

        // Enumerate the tree-top prefixes with the same walk as everything else, the
        // frontier stopping at `split`: each surviving prefix closes the inline segment
        // accumulated since the previous snapshot and hands its subtree to a task.
        let mut state = policy.initial_state();
        walk_range(
            policy,
            &mut state,
            0,
            split,
            None,
            &mut segment_stats,
            &mut segment_incumbent,
            |state, stats, incumbent| {
                units.push(MergeUnit::Inline(
                    std::mem::take(incumbent),
                    std::mem::take(stats),
                ));
                units.push(MergeUnit::Task(tasks.len()));
                tasks.push(state.clone());
            },
        );
        units.push(MergeUnit::Inline(segment_incumbent, segment_stats));

        let mut results: Vec<Option<(Incumbent<P::Payload>, SearchStats)>> = tasks
            .par_iter()
            .map(|snapshot| {
                let mut state = snapshot.clone();
                let mut stats = SearchStats::default();
                let mut incumbent = Incumbent::empty();
                walk(policy, &mut state, split, None, &mut stats, &mut incumbent);
                Some((incumbent, stats))
            })
            .collect();

        for unit in units {
            let (unit_incumbent, unit_stats) = match unit {
                MergeUnit::Inline(incumbent, stats) => (incumbent, stats),
                MergeUnit::Task(index) => results[index].take().expect("each task used once"),
            };
            incumbent.absorb(unit_incumbent);
            merge_stats(stats, &unit_stats);
        }
    }
}

/// Sums the effort counters of `other` into `stats` (everything except `best_updates`,
/// which the kernel recomputes from the merged incumbent).
fn merge_stats(stats: &mut SearchStats, other: &SearchStats) {
    stats.cuts_considered += other.cuts_considered;
    stats.feasible_cuts += other.feasible_cuts;
    stats.pruned_output += other.pruned_output;
    stats.pruned_convexity += other.pruned_convexity;
    stats.pruned_node_budget += other.pruned_node_budget;
    stats.pruned_bound += other.pruned_bound;
    stats.bound_subtree_prunes += other.bound_subtree_prunes;
    stats.budget_exhausted |= other.budget_exhausted;
}

fn budget_left(stats: &SearchStats, budget: Option<u64>) -> bool {
    budget.is_none_or(|limit| stats.cuts_considered < limit)
}

/// The sequential explicit-stack depth-first walk from `start_level` to the leaves.
///
/// Replicates the recursion of the original per-algorithm searches exactly: the budget
/// is checked once on entering a level (covering all of its branches), candidates are
/// evaluated inside `apply` — i.e. before descending — and branches are tried in
/// increasing choice order.
fn walk<P: SearchPolicy>(
    policy: &P,
    state: &mut P::State,
    start_level: usize,
    budget: Option<u64>,
    stats: &mut SearchStats,
    incumbent: &mut Incumbent<P::Payload>,
) {
    walk_range(
        policy,
        state,
        start_level,
        policy.depth(),
        budget,
        stats,
        incumbent,
        |_, _, _| {},
    );
}

/// The one explicit-stack depth-first walk every kernel mode runs on: descends from
/// `start_level` down to (but never into) `frontier`, calling `on_frontier` for each
/// successfully applied choice whose child level *is* the frontier. The full sequential
/// walk is `frontier == depth` with a no-op frontier hook; the parallel prefix
/// enumeration is `frontier == split` with a snapshot hook. Keeping a single loop is
/// what guarantees the two modes can never diverge in traversal order.
#[allow(clippy::too_many_arguments)]
fn walk_range<P: SearchPolicy>(
    policy: &P,
    state: &mut P::State,
    start_level: usize,
    frontier: usize,
    budget: Option<u64>,
    stats: &mut SearchStats,
    incumbent: &mut Incumbent<P::Payload>,
    mut on_frontier: impl FnMut(&mut P::State, &mut SearchStats, &mut Incumbent<P::Payload>),
) {
    if start_level >= frontier {
        return;
    }
    if !budget_left(stats, budget) {
        stats.budget_exhausted = true;
        return;
    }
    let mut stack = vec![Frame::enter(start_level)];
    while let Some(&Frame { level, .. }) = stack.last() {
        let top = stack.len() - 1;
        if let Some(choice) = stack[top].applied.take() {
            policy.undo(state, level, choice);
        }
        if stack[top].next_choice >= policy.choice_count(state, level) {
            stack.pop();
            continue;
        }
        let choice = stack[top].next_choice;
        stack[top].next_choice += 1;
        if !policy.apply(state, level, choice, stats, incumbent) {
            continue;
        }
        stack[top].applied = Some(choice);
        if level + 1 == frontier {
            on_frontier(state, stats, incumbent);
            continue;
        }
        if !budget_left(stats, budget) {
            stats.budget_exhausted = true;
            continue;
        }
        stack.push(Frame::enter(level + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    /// The incremental state agrees with the reference implementations of `crate::cut`
    /// after every add along a growing cut, and the journal restores it exactly.
    #[test]
    fn incremental_state_matches_reference_and_undoes_exactly() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let mut state = IncrementalCutState::new(&ctx);
        for level in 0..ctx.depth() {
            let node = ctx.node_at(level);
            let probe = state.probe_add(&ctx, node);
            state.add(&ctx, node, probe.outputs);
            let cut = CutSet::from_nodes(&g, state.members.iter().copied());
            let reference = crate::cut::evaluate(&g, &cut, &model);
            assert_eq!(state.inputs(), reference.inputs, "level {level}");
            assert_eq!(state.outputs(), reference.outputs, "level {level}");
            assert_eq!(state.software(), reference.software_cycles);
            assert!((state.critical_path() - reference.hardware_critical_path).abs() < 1e-9);
            assert!((state.merit() - reference.merit).abs() < 1e-9);
        }
        // Unwind completely; the state must return to empty.
        for _ in 0..ctx.depth() {
            state.undo_last(&ctx);
        }
        assert!(state.is_empty());
        assert_eq!(state.inputs(), 0);
        assert_eq!(state.outputs(), 0);
        assert_eq!(state.software(), 0);
        assert!(state.journal.is_empty());
        assert!(state.spill.is_empty());
        assert!(state.cut.is_empty());
        assert!(state.src_nodes.is_empty());
        assert!(state.src_inputs.is_empty());
        assert!(state.longest_path.iter().all(|&d| d == 0.0));
    }

    /// `mark_outside` tracks the reference convexity check: after marking a node
    /// outside, probing a producer whose path runs through it reports non-convexity.
    #[test]
    fn probe_detects_nonconvexity_through_marked_nodes() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        // Search order is consumers-first: level 0 = final add, then shr/add1, then mul.
        let mut state = IncrementalCutState::new(&ctx);
        let final_add = ctx.node_at(0);
        let probe = state.probe_add(&ctx, final_add);
        state.add(&ctx, final_add, probe.outputs);
        // Leave both intermediate nodes out: paths from mul now leave the cut.
        state.mark_outside(&ctx, ctx.node_at(1));
        state.mark_outside(&ctx, ctx.node_at(2));
        let mul = ctx.node_at(3);
        assert!(!state.probe_add(&ctx, mul).convex);
        // Undo one mark: the other still breaks convexity.
        state.undo_last(&ctx);
        assert!(!state.probe_add(&ctx, mul).convex);
    }

    /// The ancestor and descendant masks are exact duals, and descendants follow the
    /// transitive consumer relation.
    #[test]
    fn ancestor_and_descendant_masks_are_dual() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let n = g.node_count();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    ctx.descendants[u].get(v),
                    ctx.ancestors[v].get(u),
                    "duality violated for ({u}, {v})"
                );
            }
        }
        // mul (decided last) has every other node as a descendant and none as ancestor.
        let mul = ctx.node_at(3);
        assert_eq!(ctx.descendants_of(mul).count(), 3);
        assert!(ctx.ancestors_of(mul).is_empty());
    }

    /// The frontier bound prunes exactly the attempts whose optimistic merit cannot
    /// beat the threshold, and `try_add_probed` counts them in the new category.
    #[test]
    fn bound_check_prunes_and_counts() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let mut state = IncrementalCutState::new(&ctx);
        let mut stats = SearchStats::default();
        let node = ctx.node_at(0);
        // A hopeless bound prunes (and leaves the state untouched) …
        let hopeless = BoundCheck {
            optimistic: 0.0,
            threshold: 0.0,
            input_floor: None,
        };
        assert!(!state.try_add(&ctx, node, hopeless, &mut stats));
        assert_eq!(stats.pruned_bound, 1);
        assert_eq!(stats.cuts_considered, 1);
        assert!(state.is_empty());
        // … a disabled one never does.
        assert!(state.try_add(&ctx, node, BoundCheck::disabled(), &mut stats));
        assert_eq!(stats.feasible_cuts, 1);
        // The input floor prunes on the monotone block-input count alone.
        state.undo_last(&ctx);
        let floored = BoundCheck {
            optimistic: f64::INFINITY,
            threshold: 0.0,
            input_floor: Some(0),
        };
        let mul = ctx.node_at(3); // reads both block inputs
        assert!(!state.try_add(&ctx, mul, floored, &mut stats));
        assert_eq!(stats.pruned_bound, 2);
    }

    /// The optimistic merit helpers combine the current cut with the remaining
    /// frontier mass: at the root the whole block is reachable, at the last level
    /// nothing is.
    #[test]
    fn optimistic_merits_track_the_frontier_mass() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let state = IncrementalCutState::new(&ctx);
        let total: u64 = (0..ctx.depth())
            .map(|l| u64::from(ctx.node_software_cost(ctx.node_at(l))))
            .sum();
        assert_eq!(ctx.remaining_mass(0), total);
        assert_eq!(ctx.remaining_mass(ctx.depth()), 0);
        // Empty cut, zero critical path: the bound is just the reachable mass.
        assert_eq!(state.optimistic_with(&ctx, 0), total as f64);
        let last = ctx.depth() - 1;
        assert_eq!(state.optimistic_without(&ctx, last), 0.0);
        // The integer-domain forms agree with the float comparisons they replace,
        // at every level of a partially built cut.
        let mut state = state;
        let mut stats = SearchStats::default();
        assert!(state.try_add(&ctx, ctx.node_at(0), BoundCheck::disabled(), &mut stats));
        for level in 0..ctx.depth() {
            assert_eq!(
                state.frontier_dead_with(&ctx, level),
                state.optimistic_with(&ctx, level) <= 0.0
            );
            assert_eq!(
                state.frontier_dead_without(&ctx, level),
                state.optimistic_without(&ctx, level) <= 0.0
            );
        }
        // Blocking a node removes its cycles from every prefix mass.
        let mut ctx2 = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let mul = ctx2.node_at(3);
        ctx2.block_nodes(&CutSet::from_nodes(&g, [mul]));
        assert_eq!(
            ctx2.remaining_mass(0),
            total - u64::from(ctx2.node_software_cost(mul))
        );
    }

    /// The replay merge reproduces the sequential update log: improvements of a later
    /// subtree only survive when they beat the running best.
    #[test]
    fn incumbent_absorb_replays_sequential_semantics() {
        let mut first: Incumbent<&'static str> = Incumbent::empty();
        first.offer(3.0, || "a3");
        first.offer(5.0, || "a5");

        let mut second: Incumbent<&'static str> = Incumbent::empty();
        second.offer(4.0, || "b4");
        second.offer(5.0, || "b5");
        second.offer(7.0, || "b7");

        let mut third: Incumbent<&'static str> = Incumbent::empty();
        third.offer(6.0, || "c6");

        let mut merged = Incumbent::empty();
        merged.absorb(first);
        merged.absorb(second);
        merged.absorb(third);
        // Sequentially: 3, 5 (first), then 7 (second; 4 and the tied 5 lose), then
        // nothing from the third.
        assert_eq!(merged.improvements, vec![3.0, 5.0, 7.0]);
        assert_eq!(merged.score(), 7.0);
        assert_eq!(merged.updates(), 3);
        assert_eq!(merged.into_payload(), Some("b7"));
    }

    #[test]
    fn split_depth_is_clamped_by_arity_and_tree_depth() {
        struct Dummy {
            sequential_only: bool,
        }
        impl SearchPolicy for Dummy {
            type Payload = ();
            type State = ();
            fn depth(&self) -> usize {
                5
            }
            fn max_arity(&self) -> usize {
                4
            }
            fn initial_state(&self) -> Self::State {}
            fn choice_count(&self, (): &Self::State, _level: usize) -> usize {
                0
            }
            fn apply(
                &self,
                (): &mut Self::State,
                _level: usize,
                _choice: usize,
                _stats: &mut SearchStats,
                _incumbent: &mut Incumbent<Self::Payload>,
            ) -> bool {
                false
            }
            fn undo(&self, (): &mut Self::State, _level: usize, _choice: usize) {}
            fn requires_sequential(&self) -> bool {
                self.sequential_only
            }
        }
        let parallel_ok = Dummy {
            sequential_only: false,
        };
        let kernel = SearchKernel::sequential().with_split_levels(64);
        // 4^k <= 4096 limits k to 6; the 5-level tree limits it further to 4.
        assert_eq!(kernel.effective_split(&parallel_ok), 4);
        let budgeted = kernel.with_exploration_budget(Some(10));
        assert_eq!(budgeted.effective_split(&parallel_ok), 0);
        // A sequential-only policy (incumbent-bound mode) disables the split entirely.
        let sequential_only = Dummy {
            sequential_only: true,
        };
        assert_eq!(kernel.effective_split(&sequential_only), 0);
    }
}
