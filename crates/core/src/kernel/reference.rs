//! The retained pre-bitset cut state, kept as an executable specification.
//!
//! [`ReferenceCutState`] is the original `Vec<bool>`/`Vec<u32>` incremental
//! bookkeeping that the word-packed [`IncrementalCutState`](super::IncrementalCutState)
//! replaced: membership and reachability as boolean arrays, `IN(S)` by per-edge
//! use-counting, `O(fan-in + fan-out)` per decision. It exists for two reasons:
//!
//! * **specification** — the seeded property suite (`tests/bitset_state.rs`) replays
//!   identical decision/undo sequences through both states and asserts every observable
//!   quantity matches, which is what ties the mask identities of the bitset state back
//!   to the paper's definitions (themselves cross-checked against `crate::cut`'s
//!   from-scratch `evaluate`/`is_convex`);
//! * **baseline** — [`identify_single_cut_reference`] runs the full pre-bitset
//!   single-cut search (sequential, no frontier bound, the original four pruning
//!   categories), and is the "before" row of the scaling bench, so the reported
//!   speedups are measured against the real predecessor rather than a guess.
//!
//! The only behavioural divergence from the historical code is the fix for the
//! documented stale-entry hazard on `longest_path`: entries are now reset on undo and
//! debug-asserted clean on add, in both implementations.

use ise_hw::{cut_merit, CostModel};
use ise_ir::{Dfg, NodeId};

use super::{AddProbe, BlockContext, Incumbent, SearchKernel, SearchPolicy, Source};
use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};
use crate::search::{IdentifiedCut, SearchOutcome, SearchStats};

/// One reversible mutation of a [`ReferenceCutState`], kept on its LIFO journal.
#[derive(Debug, Clone)]
enum ReferenceUndo {
    Added {
        node: NodeId,
        inputs: usize,
        outputs: usize,
        software: u64,
        critical_path: f64,
        area: f64,
    },
    MarkedOutside {
        node: NodeId,
        reached: bool,
    },
}

/// The original per-edge incremental cut state (see the module docs).
///
/// Exposes the same probing/mutation API as the bitset
/// [`IncrementalCutState`](super::IncrementalCutState) — minus the frontier bound,
/// which did not exist before the repacking — so differential tests can drive both
/// through identical walks.
#[derive(Debug, Clone)]
pub struct ReferenceCutState {
    in_cut: Vec<bool>,
    reaches_cut: Vec<bool>,
    longest_path: Vec<f64>,
    node_external_uses: Vec<u32>,
    input_uses: Vec<u32>,
    members: Vec<NodeId>,
    inputs: usize,
    outputs: usize,
    software: u64,
    critical_path: f64,
    area: f64,
    journal: Vec<ReferenceUndo>,
}

impl ReferenceCutState {
    /// Fresh (empty-cut) state for a block.
    #[must_use]
    pub fn new(ctx: &BlockContext<'_>) -> Self {
        let n = ctx.dfg.node_count();
        ReferenceCutState {
            in_cut: vec![false; n],
            reaches_cut: vec![false; n],
            longest_path: vec![0.0; n],
            node_external_uses: vec![0; n],
            input_uses: vec![0; ctx.dfg.input_count()],
            members: Vec::new(),
            inputs: 0,
            outputs: 0,
            software: 0,
            critical_path: 0.0,
            area: 0.0,
            journal: Vec::new(),
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cut has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `IN(S)` of the current cut.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// `OUT(S)` of the current cut.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Accumulated software cycles of the members.
    #[must_use]
    pub fn software(&self) -> u64 {
        self.software
    }

    /// Critical-path delay of the cut's datapath.
    #[must_use]
    pub fn critical_path(&self) -> f64 {
        self.critical_path
    }

    /// Accumulated normalised datapath area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Merit `M(S)` of the current cut.
    #[must_use]
    pub fn merit(&self) -> f64 {
        cut_merit(self.software, self.critical_path)
    }

    /// Returns `true` if `node` is a member of the cut.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.in_cut[node.index()]
    }

    /// Checks the output-port count and convexity of the cut grown by `node`, by
    /// scanning the node's consumer edges (the pre-mask formulation).
    #[must_use]
    pub fn probe_add(&self, ctx: &BlockContext<'_>, node: NodeId) -> AddProbe {
        let index = node.index();
        let consumers = ctx.dfg.consumers(node);
        let has_external_consumer =
            ctx.is_output_source[index] || consumers.iter().any(|c| !self.in_cut[c.index()]);
        let convex = !consumers
            .iter()
            .any(|c| !self.in_cut[c.index()] && self.reaches_cut[c.index()]);
        AddProbe {
            outputs: self.outputs + usize::from(has_external_consumer),
            convex,
        }
    }

    /// The original 1-branch attempt: count, probe, prune in the canonical order
    /// (output ports → convexity → node budget — no frontier bound), add on success.
    pub fn try_add(
        &mut self,
        ctx: &BlockContext<'_>,
        node: NodeId,
        stats: &mut SearchStats,
    ) -> bool {
        stats.cuts_considered += 1;
        let probe = self.probe_add(ctx, node);
        let within_node_budget = ctx
            .constraints
            .max_nodes
            .is_none_or(|limit| self.len() < limit);
        if probe.outputs > ctx.constraints.max_outputs {
            stats.pruned_output += 1;
            return false;
        }
        if !probe.convex {
            stats.pruned_convexity += 1;
            return false;
        }
        if !within_node_budget {
            stats.pruned_node_budget += 1;
            return false;
        }
        stats.feasible_cuts += 1;
        self.add(ctx, node, probe.outputs);
        true
    }

    /// Adds `node` to the cut, maintaining every quantity incrementally by per-edge
    /// use-counting.
    pub fn add(&mut self, ctx: &BlockContext<'_>, node: NodeId, new_outputs: usize) {
        let index = node.index();
        self.journal.push(ReferenceUndo::Added {
            node,
            inputs: self.inputs,
            outputs: self.outputs,
            software: self.software,
            critical_path: self.critical_path,
            area: self.area,
        });
        // Incremental IN(S): `node` stops being an external source, and its own external
        // sources start counting (once each).
        if self.node_external_uses[index] > 0 {
            self.inputs -= 1;
        }
        for source in &ctx.sources[index] {
            match *source {
                Source::Node(m) => {
                    self.node_external_uses[m] += 1;
                    if self.node_external_uses[m] == 1 {
                        self.inputs += 1;
                    }
                }
                Source::Input(p) => {
                    self.input_uses[p] += 1;
                    if self.input_uses[p] == 1 {
                        self.inputs += 1;
                    }
                }
            }
        }
        // Incremental critical path: consumers inside the cut are already final.
        let downstream = ctx
            .dfg
            .consumers(node)
            .iter()
            .filter(|c| self.in_cut[c.index()])
            .map(|c| self.longest_path[c.index()])
            .fold(0.0f64, f64::max);
        let path_through_node = downstream + ctx.hardware_delay[index];
        debug_assert_eq!(
            self.longest_path[index], 0.0,
            "stale longest_path entry: undo must reset entries of removed members"
        );
        self.longest_path[index] = path_through_node;
        self.critical_path = self.critical_path.max(path_through_node);
        self.software += u64::from(ctx.software_cost[index]);
        self.area += ctx.area_cost[index];
        self.outputs = new_outputs;
        self.in_cut[index] = true;
        self.members.push(node);
    }

    /// Records the decision to keep `node` outside the cut, by scanning its consumer
    /// edges for a path into the cut.
    pub fn mark_outside(&mut self, ctx: &BlockContext<'_>, node: NodeId) {
        let index = node.index();
        let reaches = ctx
            .dfg
            .consumers(node)
            .iter()
            .any(|c| self.in_cut[c.index()] || self.reaches_cut[c.index()]);
        self.journal.push(ReferenceUndo::MarkedOutside {
            node,
            reached: self.reaches_cut[index],
        });
        self.reaches_cut[index] = reaches;
    }

    /// Reverses the most recent [`add`](Self::add) or
    /// [`mark_outside`](Self::mark_outside).
    ///
    /// # Panics
    ///
    /// Panics if the journal is empty.
    pub fn undo_last(&mut self, ctx: &BlockContext<'_>) {
        match self.journal.pop().expect("undo without a prior mutation") {
            ReferenceUndo::Added {
                node,
                inputs,
                outputs,
                software,
                critical_path,
                area,
            } => {
                let index = node.index();
                self.members.pop();
                self.in_cut[index] = false;
                // Reset so the next occupant of this entry starts clean (the add
                // debug-asserts this invariant).
                self.longest_path[index] = 0.0;
                for source in &ctx.sources[index] {
                    match *source {
                        Source::Node(m) => self.node_external_uses[m] -= 1,
                        Source::Input(p) => self.input_uses[p] -= 1,
                    }
                }
                self.inputs = inputs;
                self.outputs = outputs;
                self.software = software;
                self.critical_path = critical_path;
                self.area = area;
            }
            ReferenceUndo::MarkedOutside { node, reached } => {
                self.reaches_cut[node.index()] = reached;
            }
        }
    }

    /// Packages the current cut and its incrementally maintained evaluation.
    #[must_use]
    pub fn identified(&self, ctx: &BlockContext<'_>) -> IdentifiedCut {
        IdentifiedCut {
            cut: CutSet::from_nodes(ctx.dfg, self.members.iter().copied()),
            evaluation: CutEvaluation {
                nodes: self.members.len(),
                inputs: self.inputs,
                outputs: self.outputs,
                convex: true,
                software_cycles: self.software,
                hardware_critical_path: self.critical_path,
                hardware_cycles: ctx.model.cycles_for_delay(self.critical_path),
                area: self.area,
                merit: self.merit(),
            },
        }
    }
}

/// The original single-cut policy: binary decisions over the reference state, no
/// frontier bound.
struct ReferenceSingleCutPolicy<'a> {
    ctx: &'a BlockContext<'a>,
}

impl SearchPolicy for ReferenceSingleCutPolicy<'_> {
    type Payload = IdentifiedCut;
    type State = ReferenceCutState;

    fn depth(&self) -> usize {
        self.ctx.depth()
    }

    fn max_arity(&self) -> usize {
        2
    }

    fn initial_state(&self) -> ReferenceCutState {
        ReferenceCutState::new(self.ctx)
    }

    fn choice_count(&self, _state: &ReferenceCutState, _level: usize) -> usize {
        2
    }

    fn apply(
        &self,
        state: &mut ReferenceCutState,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<IdentifiedCut>,
    ) -> bool {
        let ctx = self.ctx;
        let node = ctx.node_at(level);
        if choice == 1 {
            state.mark_outside(ctx, node);
            return true;
        }
        if ctx.is_blocked(node) {
            return false;
        }
        if !state.try_add(ctx, node, stats) {
            return false;
        }
        if state.inputs() <= ctx.constraints.max_inputs
            && ctx.constraints.budget_ok(state.area(), state.len())
        {
            incumbent.offer(state.merit(), || state.identified(ctx));
        }
        true
    }

    fn undo(&self, state: &mut ReferenceCutState, _level: usize, _choice: usize) {
        state.undo_last(self.ctx);
    }
}

/// Runs the full pre-bitset single-cut search: sequential walk, reference state, no
/// frontier bound — the historical behaviour, byte for byte (selection *and* the four
/// original stats categories).
///
/// This is the "before" measurement of the scaling bench and the search-level anchor of
/// the differential suite; production callers should use
/// [`identify_single_cut`](crate::search::identify_single_cut).
#[must_use]
pub fn identify_single_cut_reference(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
) -> SearchOutcome {
    let ctx = BlockContext::new(dfg, constraints, model);
    let policy = ReferenceSingleCutPolicy { ctx: &ctx };
    let (best, stats) = SearchKernel::sequential().run(&policy);
    SearchOutcome::from_best(best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    /// The reference search still reproduces the paper's Fig. 4 optimum, with the
    /// original four-category stats identity (no bound category).
    #[test]
    fn reference_search_matches_the_paper_example() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut_reference(&g, Constraints::new(2, 1), &model);
        let best = outcome.best.expect("a profitable cut exists");
        assert_eq!(best.cut.len(), 4);
        assert_eq!(best.evaluation.merit, 3.0);
        let stats = outcome.stats;
        assert_eq!(stats.pruned_bound, 0, "the reference search has no bound");
        assert_eq!(stats.bound_subtree_prunes, 0);
        assert_eq!(
            stats.cuts_considered,
            stats.feasible_cuts
                + stats.pruned_output
                + stats.pruned_convexity
                + stats.pruned_node_budget
        );
    }

    /// Snapshot/restore across a deep subtree leaves no stale `longest_path` entries:
    /// the regression test for the hazard documented on the original implementation.
    #[test]
    fn longest_path_entries_are_reset_across_deep_restores() {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x");
        let mut v = x;
        for _ in 0..12 {
            v = b.mul(v, x);
        }
        b.output("o", v);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let mut state = ReferenceCutState::new(&ctx);
        // Descend the all-in path to the leaves, unwind completely, then re-descend:
        // the debug assertion in `add` fails if any entry survived the restore.
        for round in 0..2 {
            for level in 0..ctx.depth() {
                let node = ctx.node_at(level);
                let probe = state.probe_add(&ctx, node);
                state.add(&ctx, node, probe.outputs);
            }
            assert_eq!(state.len(), ctx.depth(), "round {round}");
            for _ in 0..ctx.depth() {
                state.undo_last(&ctx);
            }
            assert!(state.is_empty());
            assert!(
                state.longest_path.iter().all(|&d| d == 0.0),
                "round {round}"
            );
        }
    }
}
