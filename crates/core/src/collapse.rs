//! Cut collapsing: rewriting a basic block so that a selected cut becomes a single
//! application-specific instruction.
//!
//! The identification algorithms only *choose* cuts; turning a choice into an actual
//! instruction-set extension means (a) extracting the cut into a standalone AFU
//! specification (a small dataflow graph whose inputs/outputs are the cut's `IN`/`OUT`
//! values) and (b) rewriting the original block so that the cut's nodes are replaced by
//! [`Opcode::Afu`] nodes referencing that specification. Convexity guarantees that a
//! legal def-before-use placement of the new instruction exists; this module constructs
//! it and the test-suite uses the IR interpreter to prove behavioural equivalence.
//!
//! The iterative selection algorithm of the paper merges previously identified cuts into
//! single graph nodes before searching again; collapsing also provides exactly that.

use std::collections::BTreeMap;

use ise_ir::{Dfg, Node, NodeId, Opcode, Operand, Program};

use crate::cut::{self, CutSet};
use crate::error::IseError;

/// The outcome of collapsing one cut.
#[derive(Debug, Clone, PartialEq)]
pub struct CollapseResult {
    /// The rewritten basic block, with the cut replaced by AFU nodes.
    pub rewritten: Dfg,
    /// The extracted AFU datapath (inputs = the cut's external values, outputs = the
    /// cut's externally visible results).
    pub afu_graph: Dfg,
    /// Number of values read by the new instruction.
    pub inputs: usize,
    /// Number of values produced by the new instruction.
    pub outputs: usize,
    /// Where each original node ended up: `node_map[i]` is the id of node `i`'s copy
    /// in the rewritten block, or `None` for the collapsed nodes themselves (their
    /// externally visible results live on the new AFU nodes instead).
    ///
    /// This is what lets a caller collapse *several disjoint cuts of the same block*
    /// in sequence — each collapse renumbers the survivors, and the map re-anchors the
    /// remaining cuts (see [`collapse_selection`]).
    pub node_map: Vec<Option<NodeId>>,
}

/// Extracts `cut` from `dfg` into an AFU specification graph.
///
/// The specification's input variables correspond positionally to the cut's external
/// sources (in the deterministic order returned by [`cut::input_sources`]) and its output
/// variables to the cut's output nodes (in the order returned by [`cut::output_nodes`]).
///
/// # Panics
///
/// Panics if the cut is empty.
#[must_use]
pub fn extract_afu_graph(dfg: &Dfg, cut: &CutSet, name: &str) -> Dfg {
    assert!(!cut.is_empty(), "cannot extract an empty cut");
    let sources = cut::input_sources(dfg, cut);
    let outputs = cut::output_nodes(dfg, cut);
    let mut graph = Dfg::new(name.to_string());
    let mut source_map: BTreeMap<Operand, Operand> = BTreeMap::new();
    for (i, source) in sources.iter().enumerate() {
        let port = graph.add_input(format!("in{i}"));
        source_map.insert(*source, Operand::Input(port));
    }
    let mut node_map: BTreeMap<NodeId, NodeId> = BTreeMap::new();
    for (id, node) in dfg.iter_nodes() {
        if !cut.contains(id) {
            continue;
        }
        let operands = node
            .operands
            .iter()
            .map(|operand| match *operand {
                Operand::Imm(v) => Operand::Imm(v),
                Operand::Node(n) if cut.contains(n) => Operand::Node(node_map[&n]),
                other => source_map[&other],
            })
            .collect();
        let new_id = graph.add_node(Node {
            opcode: node.opcode,
            operands,
            name: node.name.clone(),
        });
        node_map.insert(id, new_id);
    }
    for (i, output) in outputs.iter().enumerate() {
        graph.add_output(format!("out{i}"), Operand::Node(node_map[output]));
    }
    graph
}

/// Rewrites `dfg`, replacing the nodes of `cut` by AFU nodes that reference `afu_id`.
///
/// # Panics
///
/// Panics if the cut is empty, non-convex, or contains nodes that are illegal in an AFU.
/// Use [`try_collapse_cut`] to report those conditions as an error instead.
#[must_use]
pub fn collapse_cut(dfg: &Dfg, cut: &CutSet, afu_id: u16, name: &str) -> CollapseResult {
    try_collapse_cut(dfg, cut, afu_id, name).expect("cut must be collapsible")
}

/// Fallible form of [`collapse_cut`].
///
/// # Errors
///
/// Returns [`IseError::InvalidRequest`] when the cut is empty, non-convex, or contains
/// nodes (memory operations, other AFUs) that cannot be implemented in an AFU — the
/// three conditions every cut produced by the bundled identifiers satisfies by
/// construction, but that a cut taken from an external request may violate.
pub fn try_collapse_cut(
    dfg: &Dfg,
    cut: &CutSet,
    afu_id: u16,
    name: &str,
) -> Result<CollapseResult, IseError> {
    if cut.is_empty() {
        return Err(IseError::InvalidRequest(
            "cannot collapse an empty cut".to_string(),
        ));
    }
    if !cut::is_convex(dfg, cut) {
        return Err(IseError::InvalidRequest(format!(
            "cut {cut} of block `{}` is not convex",
            dfg.name()
        )));
    }
    if !cut::is_afu_legal(dfg, cut) {
        return Err(IseError::InvalidRequest(format!(
            "cut {cut} of block `{}` contains nodes that cannot be implemented in an AFU",
            dfg.name()
        )));
    }

    let afu_graph = extract_afu_graph(dfg, cut, name);
    let sources = cut::input_sources(dfg, cut);
    let output_nodes = cut::output_nodes(dfg, cut);

    // Nodes strictly downstream of the cut (and outside it) must be emitted after the
    // AFU nodes; everything else (ancestors and unrelated nodes) is emitted before.
    let mut downstream = vec![false; dfg.node_count()];
    let mut stack: Vec<NodeId> = cut.iter().collect();
    while let Some(id) = stack.pop() {
        for &consumer in dfg.consumers(id) {
            if !cut.contains(consumer) && !downstream[consumer.index()] {
                downstream[consumer.index()] = true;
                stack.push(consumer);
            }
        }
    }

    let mut rewritten = Dfg::new(dfg.name().to_string());
    rewritten.set_exec_count(dfg.exec_count());
    for (_, input) in dfg.iter_inputs() {
        rewritten.add_input(input.name.clone());
    }
    // Old operand -> new operand.
    let mut value_map: BTreeMap<Operand, Operand> = BTreeMap::new();
    for (id, _) in dfg.iter_inputs().enumerate() {
        let port = ise_ir::PortId::new(id);
        value_map.insert(Operand::Input(port), Operand::Input(port));
    }

    let remap = |value_map: &BTreeMap<Operand, Operand>, operand: &Operand| -> Operand {
        match operand {
            Operand::Imm(v) => Operand::Imm(*v),
            other => value_map[other],
        }
    };
    let emit = |rewritten: &mut Dfg,
                value_map: &mut BTreeMap<Operand, Operand>,
                id: NodeId,
                node: &Node| {
        let operands = node.operands.iter().map(|o| remap(value_map, o)).collect();
        let new_id = rewritten.add_node(Node {
            opcode: node.opcode,
            operands,
            name: node.name.clone(),
        });
        value_map.insert(Operand::Node(id), Operand::Node(new_id));
    };

    // Phase 1: ancestors of the cut and unrelated nodes.
    for (id, node) in dfg.iter_nodes() {
        if !cut.contains(id) && !downstream[id.index()] {
            emit(&mut rewritten, &mut value_map, id, node);
        }
    }
    // Phase 2: one AFU node per produced output, all reading the same external sources.
    let afu_operands: Vec<Operand> = sources.iter().map(|s| remap(&value_map, s)).collect();
    for (out, output_node) in output_nodes.iter().enumerate() {
        let new_id = rewritten.add_node(Node::named(
            Opcode::Afu {
                id: afu_id,
                out: u16::try_from(out).expect("fewer than 65536 outputs"),
            },
            afu_operands.clone(),
            name.to_string(),
        ));
        value_map.insert(Operand::Node(*output_node), Operand::Node(new_id));
    }
    // Phase 3: nodes downstream of the cut.
    for (id, node) in dfg.iter_nodes() {
        if downstream[id.index()] {
            emit(&mut rewritten, &mut value_map, id, node);
        }
    }
    // Block outputs.
    for output in dfg.iter_outputs() {
        rewritten.add_output(output.name.clone(), remap(&value_map, &output.source));
    }

    let node_map = (0..dfg.node_count())
        .map(|index| {
            let id = NodeId::new(index);
            if cut.contains(id) {
                None
            } else {
                match value_map.get(&Operand::Node(id)) {
                    Some(Operand::Node(new_id)) => Some(*new_id),
                    _ => None,
                }
            }
        })
        .collect();

    Ok(CollapseResult {
        inputs: afu_graph.input_count(),
        outputs: afu_graph.output_count(),
        rewritten,
        afu_graph,
        node_map,
    })
}

/// Collapses *every* cut of a selection into `program`, in the order the selection
/// committed them, registering one AFU per chosen instruction. Returns the AFU ids, in
/// `selection.chosen` order.
///
/// Cuts chosen from the same block are disjoint but were identified against the
/// *original* block numbering; after the first collapse of a block the surviving nodes
/// are renumbered, so each subsequent cut is re-anchored through the accumulated
/// [`CollapseResult::node_map`]s before it is collapsed.
///
/// # Errors
///
/// Returns [`IseError::InvalidRequest`] when a cut is empty, non-convex, AFU-illegal, or
/// refers to a node that a previously collapsed cut of the same block absorbed —
/// conditions no selection produced by the bundled drivers exhibits, but that a
/// selection deserialised from an external request may.
pub fn collapse_selection(
    program: &mut Program,
    selection: &crate::SelectionResult,
) -> Result<Vec<u16>, IseError> {
    // Identity maps (original node index -> current id) per block, grown lazily.
    let mut maps: BTreeMap<usize, Vec<Option<NodeId>>> = BTreeMap::new();
    let mut afu_ids = Vec::with_capacity(selection.chosen.len());
    for (step, chosen) in selection.chosen.iter().enumerate() {
        let block_index = chosen.block_index;
        if block_index >= program.block_count() {
            return Err(IseError::InvalidRequest(format!(
                "cut of step {step} names block {block_index}, but the program has only {} blocks",
                program.block_count()
            )));
        }
        let block = program.block(block_index);
        let map = maps.entry(block_index).or_insert_with(|| {
            (0..block.node_count())
                .map(|i| Some(NodeId::new(i)))
                .collect()
        });
        let remapped: Option<Vec<NodeId>> = chosen
            .identified
            .cut
            .iter()
            .map(|id| map.get(id.index()).copied().flatten())
            .collect();
        let Some(nodes) = remapped else {
            return Err(IseError::InvalidRequest(format!(
                "cut of step {step} overlaps a previously collapsed cut of block {block_index}"
            )));
        };
        let cut = CutSet::from_nodes(block, nodes);
        let afu_id = u16::try_from(program.afus().len()).map_err(|_| {
            IseError::InvalidRequest("more than 65535 AFUs in one program".to_string())
        })?;
        let name = format!("ise{afu_id}");
        let result = try_collapse_cut(block, &cut, afu_id, &name)?;
        for entry in map.iter_mut() {
            *entry = entry.and_then(|current| result.node_map[current.index()]);
        }
        let registered = program.add_afu(&name, result.afu_graph);
        debug_assert_eq!(registered, afu_id);
        program.blocks_mut()[block_index] = result.rewritten;
        afu_ids.push(afu_id);
    }
    Ok(afu_ids)
}

/// Collapses a cut of block `block_index` of `program`, registering the AFU
/// specification in the program and replacing the block in place. Returns the new AFU id.
///
/// # Panics
///
/// Panics under the same conditions as [`collapse_cut`], or if `block_index` is out of
/// range.
pub fn collapse_into_program(
    program: &mut Program,
    block_index: usize,
    cut: &CutSet,
    name: &str,
) -> u16 {
    let afu_id = u16::try_from(program.afus().len()).expect("fewer than 65536 AFUs");
    let result = collapse_cut(program.block(block_index), cut, afu_id, name);
    let registered = program.add_afu(name, result.afu_graph);
    debug_assert_eq!(registered, afu_id);
    program.blocks_mut()[block_index] = result.rewritten;
    afu_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use ise_ir::{AfuSpec, DfgBuilder};
    use std::collections::BTreeMap as Map;

    fn saturating_mac() -> Dfg {
        let mut b = DfgBuilder::new("satmac");
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let prod = b.mul(x, y);
        let sum = b.add(prod, acc);
        let too_big = b.gt(sum, b.imm(32767));
        let clipped = b.select(too_big, b.imm(32767), sum);
        let flag = b.ne(clipped, sum);
        b.output("acc", clipped);
        b.output("sat", flag);
        b.finish()
    }

    fn eval(dfg: &Dfg, afus: Vec<AfuSpec>, inputs: &[(&str, i32)]) -> Map<String, i32> {
        let mut evaluator = Evaluator::with_afus(afus);
        let bindings: Map<String, i32> = inputs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        evaluator
            .eval_block(dfg, &bindings)
            .expect("evaluation")
            .outputs
    }

    #[test]
    fn extraction_preserves_port_counts() {
        let g = saturating_mac();
        let cut = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        let afu = extract_afu_graph(&g, &cut, "mac_cmp");
        assert!(afu.validate().is_ok());
        assert_eq!(afu.input_count(), cut::input_count(&g, &cut));
        assert_eq!(afu.output_count(), cut::output_count(&g, &cut));
        assert_eq!(afu.node_count(), 3);
    }

    #[test]
    fn collapse_preserves_semantics_for_single_output_cut() {
        let g = saturating_mac();
        // Collapse {mul, add}: one external output (sum feeds the compare and select).
        let cut = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(1)]);
        let result = collapse_cut(&g, &cut, 0, "mac");
        assert!(result.rewritten.validate().is_ok());
        assert_eq!(result.outputs, 1);
        let spec = AfuSpec {
            id: 0,
            name: "mac".into(),
            graph: result.afu_graph.clone(),
        };
        for (x, y, acc) in [(3, 4, 5), (1000, 40, 1), (-7, 9, 100), (200, 300, 500)] {
            let original = eval(&g, vec![], &[("x", x), ("y", y), ("acc", acc)]);
            let rewritten = eval(
                &result.rewritten,
                vec![spec.clone()],
                &[("x", x), ("y", y), ("acc", acc)],
            );
            assert_eq!(original, rewritten, "inputs ({x}, {y}, {acc})");
        }
    }

    #[test]
    fn collapse_preserves_semantics_for_multi_output_cut() {
        let g = saturating_mac();
        // The whole block is convex and has two outputs (clipped value and the flag).
        let cut = CutSet::from_nodes(&g, g.node_ids());
        let result = collapse_cut(&g, &cut, 3, "satmac_all");
        assert!(result.rewritten.validate().is_ok());
        assert_eq!(result.outputs, 2);
        assert_eq!(
            result.rewritten.node_count(),
            2,
            "two AFU output nodes remain"
        );
        let spec = AfuSpec {
            id: 3,
            name: "satmac_all".into(),
            graph: result.afu_graph.clone(),
        };
        for (x, y, acc) in [(3, 4, 5), (1000, 40, 1), (-7, 9, 100)] {
            let original = eval(&g, vec![], &[("x", x), ("y", y), ("acc", acc)]);
            let rewritten = eval(
                &result.rewritten,
                vec![spec.clone()],
                &[("x", x), ("y", y), ("acc", acc)],
            );
            assert_eq!(original, rewritten);
        }
    }

    #[test]
    fn collapse_into_program_registers_the_afu() {
        let mut program = Program::new("app");
        program.add_block(saturating_mac());
        let cut = CutSet::from_nodes(program.block(0), [NodeId::new(0), NodeId::new(1)]);
        let afu_id = collapse_into_program(&mut program, 0, &cut, "mac");
        assert_eq!(afu_id, 0);
        assert_eq!(program.afus().len(), 1);
        assert_eq!(program.afus()[0].input_count(), 3);
        assert!(program.validate().is_ok());
        assert!(program
            .block(0)
            .iter_nodes()
            .any(|(_, n)| matches!(n.opcode, Opcode::Afu { id: 0, .. })));
    }

    #[test]
    fn collapse_selection_rejects_out_of_range_blocks_and_overlaps() {
        let mut program = Program::new("app");
        program.add_block(saturating_mac());
        let cut = CutSet::from_nodes(program.block(0), [NodeId::new(0), NodeId::new(1)]);
        let chosen = |block_index: usize| crate::ChosenCut {
            block_index,
            identified: crate::IdentifiedCut {
                cut: cut.clone(),
                evaluation: cut::evaluate(program.block(0), &cut, &ise_hw::DefaultCostModel::new()),
            },
        };
        let selection = |chosen: Vec<crate::ChosenCut>| crate::SelectionResult {
            chosen,
            total_weighted_saving: 0.0,
            identifier_calls: 0,
            cuts_considered: 0,
        };
        // A block index beyond the program must error, not panic.
        let err = collapse_selection(&mut program.clone(), &selection(vec![chosen(7)]))
            .expect_err("out-of-range block");
        assert!(err.to_string().contains("block 7"), "{err}");
        // The same cut twice overlaps itself after the first collapse.
        let err = collapse_selection(&mut program.clone(), &selection(vec![chosen(0), chosen(0)]))
            .expect_err("overlapping cuts");
        assert!(err.to_string().contains("overlaps"), "{err}");
        // The valid single-cut selection still collapses.
        let mut ok = program.clone();
        let ids = collapse_selection(&mut ok, &selection(vec![chosen(0)])).expect("valid");
        assert_eq!(ids, vec![0]);
    }

    #[test]
    #[should_panic(expected = "convex")]
    fn non_convex_cuts_are_rejected() {
        let g = saturating_mac();
        // {mul, select} is non-convex (the add and compare sit in between).
        let cut = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(3)]);
        let _ = collapse_cut(&g, &cut, 0, "bad");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_cuts_are_rejected() {
        let g = saturating_mac();
        let _ = collapse_cut(&g, &CutSet::for_dfg(&g), 0, "empty");
    }
}
