//! The shared branch-and-bound search kernel.
//!
//! The paper's central data structure — the pruned binary search tree over a
//! reverse-topological ordering of one basic block (Section 6.1) — used to be
//! reimplemented three times: by the single-cut search, by the `(M+1)`-ary multiple-cut
//! generalisation and by the exhaustive oracle. This module factors the tree walk out
//! into one explicit-stack kernel with pluggable decision hooks, so each algorithm is a
//! thin [`SearchPolicy`] over the same machinery:
//!
//! * [`BlockContext`] — the immutable per-block data every search precomputes once: the
//!   consumers-before-producers ordering, deduplicated operand sources, per-node cost
//!   model evaluations and the blocked-node mask;
//! * [`IncrementalCutState`] — the snapshot-and-restorable incremental bookkeeping for
//!   *one* cut under construction (`IN(S)`, `OUT(S)`, convexity reachability, software
//!   cost, hardware critical path, area), updated in `O(fan-in + fan-out)` per decision
//!   and undone through an internal LIFO journal;
//! * [`SearchPolicy`] — the per-algorithm hooks: how many branches a decision level has,
//!   how to apply/undo one branch, and when to offer a candidate to the incumbent;
//! * [`Incumbent`] — the incumbent solution plus the ascending log of its improvements,
//!   which makes deterministic subtree merging possible (see below);
//! * [`SearchKernel`] — the driver: a sequential explicit-stack depth-first walk, or a
//!   two-phase parallel walk that splits the decision tree at its top `split_levels`
//!   levels into independent subtree tasks, fans them out with `rayon`, and merges
//!   incumbents and [`SearchStats`] in subtree-index order.
//!
//! # Determinism of the parallel walk
//!
//! The incumbent never influences pruning (the tree is cut by the *constraints*, not by
//! a bound on the objective), so the set of visited tree nodes — and therefore every
//! counter in [`SearchStats`] except `best_updates` — is identical however the tree is
//! partitioned. `best_updates` and the identity of the returned cut *do* depend on visit
//! order: a sequential search only improves its incumbent when a candidate beats the
//! best seen anywhere so far. To reproduce that exactly, each subtree records the
//! ascending merit sequence of its local improvements; the merge replays those sequences
//! in subtree-index (= depth-first) order against the running global best. The result —
//! incumbent, `best_updates` and all — is byte-identical to the sequential walk, for any
//! thread count.
//!
//! An [exploration budget](SearchKernel::exploration_budget) is a *global* cap on the
//! cuts considered and is inherently sequential; when one is set the kernel always runs
//! the sequential walk, whatever `split_levels` says.

use ise_hw::{cut_merit, CostModel};
use ise_ir::{topo, Dfg, NodeId, Operand};
use rayon::prelude::*;

use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};
use crate::search::{IdentifiedCut, SearchStats};

/// Upper bound on the number of subtree tasks one parallel search may create.
///
/// The split depth is clamped so that `arity ^ split_levels` never exceeds this; the
/// decomposition stays deterministic (it depends only on the clamped depth, never on the
/// thread count) and the snapshot memory stays bounded.
const MAX_SUBTREE_TASKS: u64 = 4096;

/// Deduplicated external value source of a node, precomputed for the incremental
/// `IN(S)` bookkeeping.
#[derive(Debug, Clone, Copy)]
enum Source {
    /// The result of another operation node (by node index).
    Node(usize),
    /// A block input variable (by input index).
    Input(usize),
}

/// Immutable per-block search context shared by every policy.
///
/// Holds the search ordering and all per-node precomputations so that constructing a
/// policy is cheap and the hot loop touches only dense arrays.
pub struct BlockContext<'a> {
    /// The basic block under search.
    pub dfg: &'a Dfg,
    /// The cost model scoring candidate cuts.
    pub model: &'a dyn CostModel,
    /// The microarchitectural constraints pruning the tree.
    pub constraints: Constraints,
    /// Search order: every node appears after all of its consumers.
    order: Vec<NodeId>,
    /// Deduplicated operand sources per node.
    sources: Vec<Vec<Source>>,
    /// Nodes that may never enter a cut (memory operations, collapsed AFU nodes, nodes
    /// excluded by the caller).
    blocked: Vec<bool>,
    is_output_source: Vec<bool>,
    software_cost: Vec<u32>,
    hardware_delay: Vec<f64>,
    area_cost: Vec<f64>,
}

impl<'a> BlockContext<'a> {
    /// Precomputes the search context for one block.
    #[must_use]
    pub fn new(dfg: &'a Dfg, constraints: Constraints, model: &'a dyn CostModel) -> Self {
        let n = dfg.node_count();
        let mut sources = Vec::with_capacity(n);
        let mut blocked = Vec::with_capacity(n);
        let mut is_output_source = Vec::with_capacity(n);
        let mut software_cost = Vec::with_capacity(n);
        let mut hardware_delay = Vec::with_capacity(n);
        let mut area_cost = Vec::with_capacity(n);
        for (id, node) in dfg.iter_nodes() {
            let mut node_sources: Vec<Source> = Vec::new();
            for operand in &node.operands {
                let source = match *operand {
                    Operand::Node(m) => Source::Node(m.index()),
                    Operand::Input(p) => Source::Input(p.index()),
                    Operand::Imm(_) => continue,
                };
                let duplicate = node_sources.iter().any(|s| match (s, &source) {
                    (Source::Node(a), Source::Node(b)) => a == b,
                    (Source::Input(a), Source::Input(b)) => a == b,
                    _ => false,
                });
                if !duplicate {
                    node_sources.push(source);
                }
            }
            sources.push(node_sources);
            blocked.push(node.is_forbidden_in_afu());
            is_output_source.push(dfg.is_output_source(id));
            software_cost.push(model.software_cycles(node));
            hardware_delay.push(model.hardware_delay(node));
            area_cost.push(model.hardware_area(node));
        }
        BlockContext {
            dfg,
            model,
            constraints,
            order: topo::consumers_first(dfg),
            sources,
            blocked,
            is_output_source,
            software_cost,
            hardware_delay,
            area_cost,
        }
    }

    /// Additionally forbids the given nodes from entering any cut.
    pub fn block_nodes(&mut self, excluded: &CutSet) {
        for id in excluded.iter() {
            if id.index() < self.blocked.len() {
                self.blocked[id.index()] = true;
            }
        }
    }

    /// Number of decision levels (= operation nodes of the block).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.order.len()
    }

    /// The node decided at `level` of the search tree.
    #[must_use]
    pub fn node_at(&self, level: usize) -> NodeId {
        self.order[level]
    }

    /// Returns `true` if `node` may never enter a cut.
    #[must_use]
    pub fn is_blocked(&self, node: NodeId) -> bool {
        self.blocked[node.index()]
    }
}

/// One reversible mutation of an [`IncrementalCutState`], kept on its LIFO journal.
#[derive(Debug, Clone)]
enum UndoEntry {
    /// `add` was applied to `node`; the scalar accumulators held these values before.
    Added {
        node: NodeId,
        inputs: usize,
        outputs: usize,
        software: u64,
        critical_path: f64,
        area: f64,
    },
    /// `mark_outside` was applied to `node`; its reachability flag held `reached`.
    MarkedOutside { node: NodeId, reached: bool },
}

/// Result of probing whether a node can join a cut, before mutating anything.
#[derive(Debug, Clone, Copy)]
pub struct AddProbe {
    /// `OUT(S ∪ {node})` — the output-port count after the addition.
    pub outputs: usize,
    /// Whether the grown cut remains convex.
    pub convex: bool,
}

/// Snapshot-and-restorable incremental bookkeeping for one cut under construction.
///
/// Maintains `IN(S)`, `OUT(S)`, the convexity reachability frontier, and the software /
/// critical-path / area accumulators exactly as Section 6.1 of the paper prescribes,
/// in `O(fan-in + fan-out)` per decision. Every mutation pushes an entry onto an
/// internal journal, so a search can unwind decisions in LIFO order with
/// [`undo_last`](Self::undo_last) — and because the whole state is `Clone`, a parallel
/// search can snapshot it at any tree node and hand the copy to a subtree task.
#[derive(Debug, Clone)]
pub struct IncrementalCutState {
    /// Membership of the cut.
    in_cut: Vec<bool>,
    /// For nodes decided as outside: does a downstream path reach the current cut?
    reaches_cut: Vec<bool>,
    /// For nodes in the cut: longest downstream delay path within the cut, including
    /// the node's own delay. Entries of nodes outside the cut are stale and never read.
    longest_path: Vec<f64>,
    /// Number of cut members currently consuming each (outside) node.
    node_external_uses: Vec<u32>,
    /// Number of cut members currently reading each block input variable.
    input_uses: Vec<u32>,
    /// Members of the cut, in insertion order.
    members: Vec<NodeId>,
    inputs: usize,
    outputs: usize,
    software: u64,
    critical_path: f64,
    area: f64,
    journal: Vec<UndoEntry>,
}

impl IncrementalCutState {
    /// Fresh (empty-cut) state for a block.
    #[must_use]
    pub fn new(ctx: &BlockContext<'_>) -> Self {
        let n = ctx.dfg.node_count();
        IncrementalCutState {
            in_cut: vec![false; n],
            reaches_cut: vec![false; n],
            longest_path: vec![0.0; n],
            node_external_uses: vec![0; n],
            input_uses: vec![0; ctx.dfg.input_count()],
            members: Vec::new(),
            inputs: 0,
            outputs: 0,
            software: 0,
            critical_path: 0.0,
            area: 0.0,
            journal: Vec::new(),
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cut has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// `IN(S)` of the current cut.
    #[must_use]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// `OUT(S)` of the current cut.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// Accumulated software cycles of the members.
    #[must_use]
    pub fn software(&self) -> u64 {
        self.software
    }

    /// Critical-path delay of the cut's datapath.
    #[must_use]
    pub fn critical_path(&self) -> f64 {
        self.critical_path
    }

    /// Accumulated normalised datapath area.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Merit `M(S)` of the current cut.
    #[must_use]
    pub fn merit(&self) -> f64 {
        cut_merit(self.software, self.critical_path)
    }

    /// Returns `true` if `node` is a member of the cut.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.in_cut[node.index()]
    }

    /// Checks the output-port count and convexity of the cut grown by `node`, without
    /// mutating anything.
    #[must_use]
    pub fn probe_add(&self, ctx: &BlockContext<'_>, node: NodeId) -> AddProbe {
        let index = node.index();
        let consumers = ctx.dfg.consumers(node);
        let has_external_consumer =
            ctx.is_output_source[index] || consumers.iter().any(|c| !self.in_cut[c.index()]);
        let convex = !consumers
            .iter()
            .any(|c| !self.in_cut[c.index()] && self.reaches_cut[c.index()]);
        AddProbe {
            outputs: self.outputs + usize::from(has_external_consumer),
            convex,
        }
    }

    /// The shared 1-branch attempt used by every pruning policy: counts the cut,
    /// probes it, applies the paper's pruning rules in their canonical order
    /// (output ports → convexity → node budget), and on success adds `node`.
    ///
    /// Returns `false` — with the matching `pruned_*` counter bumped and the state
    /// untouched — when the branch (and its whole subtree) is eliminated. Living here
    /// once, this block cannot drift apart between the single-cut and multiple-cut
    /// policies, whose per-cut counting and pruning are required to be identical.
    pub fn try_add(
        &mut self,
        ctx: &BlockContext<'_>,
        node: NodeId,
        stats: &mut SearchStats,
    ) -> bool {
        let probe = self.probe_add(ctx, node);
        self.try_add_probed(ctx, node, probe, stats)
    }

    /// The counting-and-pruning half of [`try_add`](Self::try_add), for callers that
    /// already hold the [`AddProbe`] (the pool-fill policy probes first so it can record
    /// the attempt before classifying it). The probe **must** come from
    /// [`probe_add`](Self::probe_add) on the current state.
    pub fn try_add_probed(
        &mut self,
        ctx: &BlockContext<'_>,
        node: NodeId,
        probe: AddProbe,
        stats: &mut SearchStats,
    ) -> bool {
        stats.cuts_considered += 1;
        let within_node_budget = ctx
            .constraints
            .max_nodes
            .is_none_or(|limit| self.len() < limit);
        if probe.outputs > ctx.constraints.max_outputs {
            stats.pruned_output += 1;
            return false;
        }
        if !probe.convex {
            stats.pruned_convexity += 1;
            return false;
        }
        if !within_node_budget {
            stats.pruned_node_budget += 1;
            return false;
        }
        stats.feasible_cuts += 1;
        self.add(ctx, node, probe.outputs);
        true
    }

    /// Adds `node` to the cut, maintaining every quantity incrementally.
    ///
    /// `new_outputs` is the output count probed by [`probe_add`](Self::probe_add); it is
    /// passed back in so the fan-out scan is not repeated.
    pub fn add(&mut self, ctx: &BlockContext<'_>, node: NodeId, new_outputs: usize) {
        let index = node.index();
        self.journal.push(UndoEntry::Added {
            node,
            inputs: self.inputs,
            outputs: self.outputs,
            software: self.software,
            critical_path: self.critical_path,
            area: self.area,
        });
        // Incremental IN(S): `node` stops being an external source, and its own external
        // sources start counting (once each).
        if self.node_external_uses[index] > 0 {
            self.inputs -= 1;
        }
        for source in &ctx.sources[index] {
            match *source {
                Source::Node(m) => {
                    self.node_external_uses[m] += 1;
                    if self.node_external_uses[m] == 1 {
                        self.inputs += 1;
                    }
                }
                Source::Input(p) => {
                    self.input_uses[p] += 1;
                    if self.input_uses[p] == 1 {
                        self.inputs += 1;
                    }
                }
            }
        }
        // Incremental critical path: consumers inside the cut are already final.
        let downstream = ctx
            .dfg
            .consumers(node)
            .iter()
            .filter(|c| self.in_cut[c.index()])
            .map(|c| self.longest_path[c.index()])
            .fold(0.0f64, f64::max);
        let path_through_node = downstream + ctx.hardware_delay[index];
        self.longest_path[index] = path_through_node;
        self.critical_path = self.critical_path.max(path_through_node);
        self.software += u64::from(ctx.software_cost[index]);
        self.area += ctx.area_cost[index];
        self.outputs = new_outputs;
        self.in_cut[index] = true;
        self.members.push(node);
    }

    /// Records the decision to keep `node` outside the cut: updates the convexity
    /// reachability frontier (does a downstream path from `node` reach the cut?).
    pub fn mark_outside(&mut self, ctx: &BlockContext<'_>, node: NodeId) {
        let index = node.index();
        let reaches = ctx
            .dfg
            .consumers(node)
            .iter()
            .any(|c| self.in_cut[c.index()] || self.reaches_cut[c.index()]);
        self.journal.push(UndoEntry::MarkedOutside {
            node,
            reached: self.reaches_cut[index],
        });
        self.reaches_cut[index] = reaches;
    }

    /// Reverses the most recent [`add`](Self::add) or
    /// [`mark_outside`](Self::mark_outside).
    ///
    /// # Panics
    ///
    /// Panics if the journal is empty (an undo without a matching mutation is a policy
    /// bug, not a recoverable condition).
    pub fn undo_last(&mut self, ctx: &BlockContext<'_>) {
        match self.journal.pop().expect("undo without a prior mutation") {
            UndoEntry::Added {
                node,
                inputs,
                outputs,
                software,
                critical_path,
                area,
            } => {
                let index = node.index();
                self.members.pop();
                self.in_cut[index] = false;
                for source in &ctx.sources[index] {
                    match *source {
                        Source::Node(m) => self.node_external_uses[m] -= 1,
                        Source::Input(p) => self.input_uses[p] -= 1,
                    }
                }
                self.inputs = inputs;
                self.outputs = outputs;
                self.software = software;
                self.critical_path = critical_path;
                self.area = area;
            }
            UndoEntry::MarkedOutside { node, reached } => {
                self.reaches_cut[node.index()] = reached;
            }
        }
    }

    /// Packages the current cut and its incrementally maintained evaluation.
    #[must_use]
    pub fn identified(&self, ctx: &BlockContext<'_>) -> IdentifiedCut {
        IdentifiedCut {
            cut: CutSet::from_nodes(ctx.dfg, self.members.iter().copied()),
            evaluation: CutEvaluation {
                nodes: self.members.len(),
                inputs: self.inputs,
                outputs: self.outputs,
                convex: true,
                software_cycles: self.software,
                hardware_critical_path: self.critical_path,
                hardware_cycles: ctx.model.cycles_for_delay(self.critical_path),
                area: self.area,
                merit: self.merit(),
            },
        }
    }
}

/// The incumbent solution of one (sub)tree walk, plus the ascending score log of its
/// improvements.
///
/// The log is what makes parallel subtree results mergeable without losing the
/// sequential semantics: replaying a later subtree's improvements against the running
/// global best reproduces exactly the updates the sequential walk would have made (see
/// the module documentation).
#[derive(Debug, Clone)]
pub struct Incumbent<T> {
    score: f64,
    improvements: Vec<f64>,
    payload: Option<T>,
}

impl<T> Default for Incumbent<T> {
    fn default() -> Self {
        Incumbent {
            score: 0.0,
            improvements: Vec::new(),
            payload: None,
        }
    }
}

impl<T> Incumbent<T> {
    /// An empty incumbent with score zero (candidates must strictly beat it).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// The best score offered so far (zero when none).
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Offers a candidate; the payload is only built when `score` strictly improves on
    /// the incumbent.
    pub fn offer(&mut self, score: f64, make: impl FnOnce() -> T) {
        if score > self.score {
            self.score = score;
            self.improvements.push(score);
            self.payload = Some(make());
        }
    }

    /// Number of times the incumbent improved.
    #[must_use]
    pub fn updates(&self) -> u64 {
        self.improvements.len() as u64
    }

    /// The best payload, consuming the incumbent.
    #[must_use]
    pub fn into_payload(self) -> Option<T> {
        self.payload
    }

    /// Replays `later` — the incumbent of a subtree that the sequential walk would have
    /// visited *after* everything absorbed so far — against this incumbent.
    ///
    /// Within one subtree the improvement log is strictly ascending, so the
    /// sequentially surviving improvements are exactly the suffix strictly above the
    /// current global score, and the subtree's final payload is the payload of the last
    /// survivor. This operation is associative, which is what lets the kernel fold
    /// segments and subtree results left-to-right in subtree-index order.
    pub fn absorb(&mut self, later: Incumbent<T>) {
        let first_surviving = later.improvements.partition_point(|&m| m <= self.score);
        if first_surviving < later.improvements.len() {
            self.improvements
                .extend_from_slice(&later.improvements[first_surviving..]);
            self.score = later.score;
            self.payload = later.payload;
        }
    }
}

/// The per-algorithm hooks of the shared kernel.
///
/// A policy describes one decision tree: `depth()` levels, up to
/// [`choice_count`](Self::choice_count) branches per level (tried in increasing index
/// order), and an [`apply`](Self::apply)/[`undo`](Self::undo) pair that mutates the
/// reusable search state. Returning `false` from `apply` eliminates the whole subtree
/// below that branch — the paper's subtree-elimination pruning.
pub trait SearchPolicy: Sync {
    /// The incumbent payload (e.g. one [`IdentifiedCut`], or a tuple of cuts).
    type Payload: Clone + Send;
    /// The snapshot-and-restorable search state.
    type State: Clone + Send + Sync;

    /// Number of decision levels.
    fn depth(&self) -> usize;

    /// The maximal branching factor of any level (used to bound the parallel split).
    fn max_arity(&self) -> usize;

    /// Fresh state for the root of the tree.
    fn initial_state(&self) -> Self::State;

    /// Number of branches available at `level` in `state`. Must be identical every time
    /// the walk returns to the same tree node with the same state.
    fn choice_count(&self, state: &Self::State, level: usize) -> usize;

    /// Tries to apply branch `choice` at `level`.
    ///
    /// On success the policy must leave exactly one reversible mutation per involved
    /// cut state, may update `stats`, may offer a candidate to `incumbent`, and returns
    /// `true` so the kernel descends. Returning `false` means the branch (and its whole
    /// subtree) is pruned and **no** state mutation may remain.
    fn apply(
        &self,
        state: &mut Self::State,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<Self::Payload>,
    ) -> bool;

    /// Reverses a successful [`apply`](Self::apply) of `choice` at `level`.
    fn undo(&self, state: &mut Self::State, level: usize, choice: usize);
}

/// One explicit-stack frame of the kernel's depth-first walk: the decision level, the
/// next branch to try, and the branch currently applied (awaiting its undo), if any.
#[derive(Debug, Clone, Copy)]
struct Frame {
    level: usize,
    next_choice: usize,
    applied: Option<usize>,
}

impl Frame {
    fn enter(level: usize) -> Self {
        Frame {
            level,
            next_choice: 0,
            applied: None,
        }
    }
}

/// One ordered merge unit of the parallel walk: either incumbent/stats accumulated
/// inline while enumerating tree-top prefixes, or the result of subtree task `n`.
enum MergeUnit<T> {
    Inline(Incumbent<T>, SearchStats),
    Task(usize),
}

/// The shared branch-and-bound driver. See the module documentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchKernel {
    /// Number of top decision-tree levels split into independent parallel subtree
    /// tasks; `0` runs the classic sequential walk.
    pub split_levels: usize,
    /// Optional global cap on [`SearchStats::cuts_considered`], after which the walk
    /// stops and reports its incumbent. Forces the sequential walk.
    pub exploration_budget: Option<u64>,
}

impl SearchKernel {
    /// A sequential kernel with no budget.
    #[must_use]
    pub fn sequential() -> Self {
        SearchKernel::default()
    }

    /// Sets the number of top levels fanned out as parallel subtree tasks.
    #[must_use]
    pub fn with_split_levels(mut self, levels: usize) -> Self {
        self.split_levels = levels;
        self
    }

    /// Sets (or clears) the exploration budget.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: Option<u64>) -> Self {
        self.exploration_budget = budget;
        self
    }

    /// Runs the policy's search tree to completion and returns the best payload plus
    /// the search statistics. Parallel and sequential walks return identical results.
    #[must_use]
    pub fn run<P: SearchPolicy>(&self, policy: &P) -> (Option<P::Payload>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut incumbent = Incumbent::empty();
        let split = self.effective_split(policy);
        if split == 0 {
            let mut state = policy.initial_state();
            walk(
                policy,
                &mut state,
                0,
                self.exploration_budget,
                &mut stats,
                &mut incumbent,
            );
        } else {
            self.run_split(policy, split, &mut stats, &mut incumbent);
        }
        stats.best_updates = incumbent.updates();
        (incumbent.into_payload(), stats)
    }

    /// The split depth actually used: clamped below the tree depth, disabled entirely
    /// under an exploration budget, and bounded so the task count stays reasonable.
    fn effective_split<P: SearchPolicy>(&self, policy: &P) -> usize {
        if self.exploration_budget.is_some() {
            return 0;
        }
        let depth = policy.depth();
        let mut split = self.split_levels.min(depth.saturating_sub(1));
        let arity = policy.max_arity().max(2) as u64;
        while split > 0
            && arity
                .checked_pow(split as u32)
                .is_none_or(|tasks| tasks > MAX_SUBTREE_TASKS)
        {
            split -= 1;
        }
        split
    }

    /// The two-phase parallel walk: enumerate tree-top prefixes sequentially (recording
    /// inline evaluations and state snapshots in depth-first order), solve the subtrees
    /// in parallel, and fold everything back together in subtree-index order.
    fn run_split<P: SearchPolicy>(
        &self,
        policy: &P,
        split: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<P::Payload>,
    ) {
        let mut units: Vec<MergeUnit<P::Payload>> = Vec::new();
        let mut tasks: Vec<P::State> = Vec::new();
        let mut segment_incumbent = Incumbent::empty();
        let mut segment_stats = SearchStats::default();

        // Enumerate the tree-top prefixes with the same walk as everything else, the
        // frontier stopping at `split`: each surviving prefix closes the inline segment
        // accumulated since the previous snapshot and hands its subtree to a task.
        let mut state = policy.initial_state();
        walk_range(
            policy,
            &mut state,
            0,
            split,
            None,
            &mut segment_stats,
            &mut segment_incumbent,
            |state, stats, incumbent| {
                units.push(MergeUnit::Inline(
                    std::mem::take(incumbent),
                    std::mem::take(stats),
                ));
                units.push(MergeUnit::Task(tasks.len()));
                tasks.push(state.clone());
            },
        );
        units.push(MergeUnit::Inline(segment_incumbent, segment_stats));

        let mut results: Vec<Option<(Incumbent<P::Payload>, SearchStats)>> = tasks
            .par_iter()
            .map(|snapshot| {
                let mut state = snapshot.clone();
                let mut stats = SearchStats::default();
                let mut incumbent = Incumbent::empty();
                walk(policy, &mut state, split, None, &mut stats, &mut incumbent);
                Some((incumbent, stats))
            })
            .collect();

        for unit in units {
            let (unit_incumbent, unit_stats) = match unit {
                MergeUnit::Inline(incumbent, stats) => (incumbent, stats),
                MergeUnit::Task(index) => results[index].take().expect("each task used once"),
            };
            incumbent.absorb(unit_incumbent);
            merge_stats(stats, &unit_stats);
        }
    }
}

/// Sums the effort counters of `other` into `stats` (everything except `best_updates`,
/// which the kernel recomputes from the merged incumbent).
fn merge_stats(stats: &mut SearchStats, other: &SearchStats) {
    stats.cuts_considered += other.cuts_considered;
    stats.feasible_cuts += other.feasible_cuts;
    stats.pruned_output += other.pruned_output;
    stats.pruned_convexity += other.pruned_convexity;
    stats.pruned_node_budget += other.pruned_node_budget;
    stats.budget_exhausted |= other.budget_exhausted;
}

fn budget_left(stats: &SearchStats, budget: Option<u64>) -> bool {
    budget.is_none_or(|limit| stats.cuts_considered < limit)
}

/// The sequential explicit-stack depth-first walk from `start_level` to the leaves.
///
/// Replicates the recursion of the original per-algorithm searches exactly: the budget
/// is checked once on entering a level (covering all of its branches), candidates are
/// evaluated inside `apply` — i.e. before descending — and branches are tried in
/// increasing choice order.
fn walk<P: SearchPolicy>(
    policy: &P,
    state: &mut P::State,
    start_level: usize,
    budget: Option<u64>,
    stats: &mut SearchStats,
    incumbent: &mut Incumbent<P::Payload>,
) {
    walk_range(
        policy,
        state,
        start_level,
        policy.depth(),
        budget,
        stats,
        incumbent,
        |_, _, _| {},
    );
}

/// The one explicit-stack depth-first walk every kernel mode runs on: descends from
/// `start_level` down to (but never into) `frontier`, calling `on_frontier` for each
/// successfully applied choice whose child level *is* the frontier. The full sequential
/// walk is `frontier == depth` with a no-op frontier hook; the parallel prefix
/// enumeration is `frontier == split` with a snapshot hook. Keeping a single loop is
/// what guarantees the two modes can never diverge in traversal order.
#[allow(clippy::too_many_arguments)]
fn walk_range<P: SearchPolicy>(
    policy: &P,
    state: &mut P::State,
    start_level: usize,
    frontier: usize,
    budget: Option<u64>,
    stats: &mut SearchStats,
    incumbent: &mut Incumbent<P::Payload>,
    mut on_frontier: impl FnMut(&mut P::State, &mut SearchStats, &mut Incumbent<P::Payload>),
) {
    if start_level >= frontier {
        return;
    }
    if !budget_left(stats, budget) {
        stats.budget_exhausted = true;
        return;
    }
    let mut stack = vec![Frame::enter(start_level)];
    while let Some(&Frame { level, .. }) = stack.last() {
        let top = stack.len() - 1;
        if let Some(choice) = stack[top].applied.take() {
            policy.undo(state, level, choice);
        }
        if stack[top].next_choice >= policy.choice_count(state, level) {
            stack.pop();
            continue;
        }
        let choice = stack[top].next_choice;
        stack[top].next_choice += 1;
        if !policy.apply(state, level, choice, stats, incumbent) {
            continue;
        }
        stack[top].applied = Some(choice);
        if level + 1 == frontier {
            on_frontier(state, stats, incumbent);
            continue;
        }
        if !budget_left(stats, budget) {
            stats.budget_exhausted = true;
            continue;
        }
        stack.push(Frame::enter(level + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    /// The incremental state agrees with the reference implementations of `crate::cut`
    /// after every add along a growing cut, and the journal restores it exactly.
    #[test]
    fn incremental_state_matches_reference_and_undoes_exactly() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        let mut state = IncrementalCutState::new(&ctx);
        for level in 0..ctx.depth() {
            let node = ctx.node_at(level);
            let probe = state.probe_add(&ctx, node);
            state.add(&ctx, node, probe.outputs);
            let cut = CutSet::from_nodes(&g, state.members.iter().copied());
            let reference = crate::cut::evaluate(&g, &cut, &model);
            assert_eq!(state.inputs(), reference.inputs, "level {level}");
            assert_eq!(state.outputs(), reference.outputs, "level {level}");
            assert_eq!(state.software(), reference.software_cycles);
            assert!((state.critical_path() - reference.hardware_critical_path).abs() < 1e-9);
            assert!((state.merit() - reference.merit).abs() < 1e-9);
        }
        // Unwind completely; the state must return to empty.
        for _ in 0..ctx.depth() {
            state.undo_last(&ctx);
        }
        assert!(state.is_empty());
        assert_eq!(state.inputs(), 0);
        assert_eq!(state.outputs(), 0);
        assert_eq!(state.software(), 0);
        assert!(state.journal.is_empty());
        assert!(state.in_cut.iter().all(|&b| !b));
        assert!(state.node_external_uses.iter().all(|&u| u == 0));
    }

    /// `mark_outside` tracks the reference convexity check: after marking a node
    /// outside, probing a producer whose path runs through it reports non-convexity.
    #[test]
    fn probe_detects_nonconvexity_through_marked_nodes() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let ctx = BlockContext::new(&g, Constraints::new(8, 4), &model);
        // Search order is consumers-first: level 0 = final add, then shr/add1, then mul.
        let mut state = IncrementalCutState::new(&ctx);
        let final_add = ctx.node_at(0);
        let probe = state.probe_add(&ctx, final_add);
        state.add(&ctx, final_add, probe.outputs);
        // Leave both intermediate nodes out: paths from mul now leave the cut.
        state.mark_outside(&ctx, ctx.node_at(1));
        state.mark_outside(&ctx, ctx.node_at(2));
        let mul = ctx.node_at(3);
        assert!(!state.probe_add(&ctx, mul).convex);
        // Undo one mark: the other still breaks convexity.
        state.undo_last(&ctx);
        assert!(!state.probe_add(&ctx, mul).convex);
    }

    /// The replay merge reproduces the sequential update log: improvements of a later
    /// subtree only survive when they beat the running best.
    #[test]
    fn incumbent_absorb_replays_sequential_semantics() {
        let mut first: Incumbent<&'static str> = Incumbent::empty();
        first.offer(3.0, || "a3");
        first.offer(5.0, || "a5");

        let mut second: Incumbent<&'static str> = Incumbent::empty();
        second.offer(4.0, || "b4");
        second.offer(5.0, || "b5");
        second.offer(7.0, || "b7");

        let mut third: Incumbent<&'static str> = Incumbent::empty();
        third.offer(6.0, || "c6");

        let mut merged = Incumbent::empty();
        merged.absorb(first);
        merged.absorb(second);
        merged.absorb(third);
        // Sequentially: 3, 5 (first), then 7 (second; 4 and the tied 5 lose), then
        // nothing from the third.
        assert_eq!(merged.improvements, vec![3.0, 5.0, 7.0]);
        assert_eq!(merged.score(), 7.0);
        assert_eq!(merged.updates(), 3);
        assert_eq!(merged.into_payload(), Some("b7"));
    }

    #[test]
    fn split_depth_is_clamped_by_arity_and_tree_depth() {
        struct Dummy;
        impl SearchPolicy for Dummy {
            type Payload = ();
            type State = ();
            fn depth(&self) -> usize {
                5
            }
            fn max_arity(&self) -> usize {
                4
            }
            fn initial_state(&self) -> Self::State {}
            fn choice_count(&self, (): &Self::State, _level: usize) -> usize {
                0
            }
            fn apply(
                &self,
                (): &mut Self::State,
                _level: usize,
                _choice: usize,
                _stats: &mut SearchStats,
                _incumbent: &mut Incumbent<Self::Payload>,
            ) -> bool {
                false
            }
            fn undo(&self, (): &mut Self::State, _level: usize, _choice: usize) {}
        }
        let kernel = SearchKernel::sequential().with_split_levels(64);
        // 4^k <= 4096 limits k to 6; the 5-level tree limits it further to 4.
        assert_eq!(kernel.effective_split(&Dummy), 4);
        let budgeted = kernel.with_exploration_budget(Some(10));
        assert_eq!(budgeted.effective_split(&Dummy), 0);
    }
}
