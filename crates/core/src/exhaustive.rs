//! Brute-force enumeration oracle.
//!
//! This module enumerates *all* `2^|V|` cuts of a basic block and evaluates each one with
//! the reference (non-incremental) implementations of [`crate::cut`]. It exists purely as
//! a correctness oracle for the pruned branch-and-bound search and for the property-based
//! tests; it is exponential with no pruning and must only be used on small graphs.
//!
//! The enumeration is driven by the same [`SearchKernel`] as
//! the exact searches — a binary decision tree over the plain node-index order, with a
//! policy that never prunes — so the oracle benefits from the kernel's subtree
//! parallelism while staying independent of the *incremental* bookkeeping it checks:
//! every enumerated cut is still evaluated from scratch with the reference functions.

use ise_hw::CostModel;
use ise_ir::{Dfg, NodeId};

use crate::constraints::Constraints;
use crate::cut::{self, CutSet};
use crate::kernel::{Incumbent, SearchKernel, SearchPolicy};
use crate::search::{IdentifiedCut, SearchStats};

/// Statistics of an exhaustive enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveStats {
    /// Total number of non-empty cuts enumerated (`2^|V| - 1`).
    pub cuts_enumerated: u64,
    /// Cuts satisfying all constraints (ports, convexity, legality, budgets).
    pub feasible_cuts: u64,
}

/// Result of an exhaustive enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveOutcome {
    /// The best feasible cut with strictly positive merit, if any.
    pub best: Option<IdentifiedCut>,
    /// Enumeration statistics.
    pub stats: ExhaustiveStats,
}

/// Enumerates every cut of `dfg` and returns the best feasible one.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes; the oracle is meant for tests only and
/// larger graphs would enumerate hundreds of millions of cuts.
#[must_use]
pub fn best_cut_exhaustive(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
) -> ExhaustiveOutcome {
    best_cut_exhaustive_excluding(dfg, None, constraints, model)
}

/// Enumerates every cut of `dfg` avoiding the `excluded` nodes and returns the best
/// feasible one. This is the exclusion-aware variant used when the oracle is driven
/// through the [`crate::engine::Identifier`] trait by the iterative selection driver.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes (see [`best_cut_exhaustive`]).
#[must_use]
pub fn best_cut_exhaustive_excluding(
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    constraints: Constraints,
    model: &dyn CostModel,
) -> ExhaustiveOutcome {
    best_cut_exhaustive_split(dfg, excluded, constraints, model, 0)
}

/// The oracle's policy over the shared kernel: a binary tree over the plain node-index
/// order, with no pruning — every branch is taken, so every non-empty subset is
/// enumerated exactly once (at the decision that adds its highest-index node). Each
/// enumerated cut is checked and scored from scratch with the reference implementations
/// of [`crate::cut`].
struct ExhaustivePolicy<'a> {
    dfg: &'a Dfg,
    model: &'a dyn CostModel,
    constraints: Constraints,
    excluded: Option<&'a CutSet>,
}

impl SearchPolicy for ExhaustivePolicy<'_> {
    type Payload = IdentifiedCut;
    /// The members chosen so far, in index order.
    type State = Vec<NodeId>;

    fn depth(&self) -> usize {
        self.dfg.node_count()
    }

    fn max_arity(&self) -> usize {
        2
    }

    fn initial_state(&self) -> Vec<NodeId> {
        Vec::new()
    }

    fn choice_count(&self, _state: &Vec<NodeId>, _level: usize) -> usize {
        2
    }

    fn apply(
        &self,
        state: &mut Vec<NodeId>,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<IdentifiedCut>,
    ) -> bool {
        if choice == 1 {
            return true; // leave the node out: nothing to track
        }
        state.push(NodeId::new(level));
        stats.cuts_considered += 1;
        let cut = CutSet::from_nodes(self.dfg, state.iter().copied());
        if self.excluded.is_some_and(|banned| cut.intersects(banned)) {
            return true;
        }
        if !cut::is_afu_legal(self.dfg, &cut) {
            return true;
        }
        let evaluation = cut::evaluate(self.dfg, &cut, self.model);
        if !evaluation.convex
            || !self
                .constraints
                .ports_ok(evaluation.inputs, evaluation.outputs)
            || !self
                .constraints
                .budget_ok(evaluation.area, evaluation.nodes)
        {
            return true;
        }
        stats.feasible_cuts += 1;
        incumbent.offer(evaluation.merit, || IdentifiedCut { cut, evaluation });
        true
    }

    fn undo(&self, state: &mut Vec<NodeId>, _level: usize, choice: usize) {
        if choice == 0 {
            state.pop();
        }
    }
}

/// [`best_cut_exhaustive_excluding`] with the kernel's subtree parallelism: the top
/// `split_levels` decision levels fan out as independent tasks. The outcome is
/// byte-identical to the sequential enumeration.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes (see [`best_cut_exhaustive`]).
#[must_use]
pub fn best_cut_exhaustive_split(
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    constraints: Constraints,
    model: &dyn CostModel,
    split_levels: usize,
) -> ExhaustiveOutcome {
    let n = dfg.node_count();
    assert!(
        n <= 24,
        "exhaustive enumeration is a test oracle; {n} nodes is too large"
    );
    let policy = ExhaustivePolicy {
        dfg,
        model,
        constraints,
        excluded,
    };
    let kernel = SearchKernel::sequential().with_split_levels(split_levels);
    let (best, stats) = kernel.run(&policy);
    ExhaustiveOutcome {
        best,
        stats: ExhaustiveStats {
            cuts_enumerated: stats.cuts_considered,
            feasible_cuts: stats.feasible_cuts,
        },
    }
}

/// Enumerates every cut of `dfg` and counts how many satisfy all constraints.
#[must_use]
pub fn count_feasible_cuts(dfg: &Dfg, constraints: Constraints, model: &dyn CostModel) -> u64 {
    best_cut_exhaustive(dfg, constraints, model)
        .stats
        .feasible_cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::identify_single_cut;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn sample() -> Dfg {
        let mut b = DfgBuilder::new("sample");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let m = b.mul(x, y);
        let s = b.add(m, z);
        let c = b.gt(s, b.imm(255));
        let sat = b.select(c, b.imm(255), s);
        let t = b.xor(sat, y);
        b.output("o", t);
        b.finish()
    }

    #[test]
    fn oracle_and_search_agree_on_the_best_merit() {
        let g = sample();
        let model = DefaultCostModel::new();
        for constraints in Constraints::paper_sweep() {
            let oracle = best_cut_exhaustive(&g, constraints, &model);
            let fast = identify_single_cut(&g, constraints, &model);
            let oracle_merit = oracle.best.as_ref().map_or(0.0, |b| b.evaluation.merit);
            let fast_merit = fast.best.as_ref().map_or(0.0, |b| b.evaluation.merit);
            assert_eq!(oracle_merit, fast_merit, "constraints {constraints}");
        }
    }

    #[test]
    fn enumeration_counts_all_cuts() {
        let g = sample();
        let model = DefaultCostModel::new();
        let outcome = best_cut_exhaustive(&g, Constraints::new(4, 2), &model);
        assert_eq!(outcome.stats.cuts_enumerated, (1 << g.node_count()) - 1);
        assert!(outcome.stats.feasible_cuts > 0);
        assert!(outcome.stats.feasible_cuts < outcome.stats.cuts_enumerated);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oracle_refuses_large_graphs() {
        let mut b = DfgBuilder::new("big");
        let x = b.input("x");
        let mut v = x;
        for _ in 0..30 {
            v = b.add(v, b.imm(1));
        }
        b.output("o", v);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let _ = best_cut_exhaustive(&g, Constraints::new(2, 1), &model);
    }
}
