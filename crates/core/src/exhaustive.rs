//! Brute-force enumeration oracle.
//!
//! This module enumerates *all* `2^|V|` cuts of a basic block and evaluates each one with
//! the reference (non-incremental) implementations of [`crate::cut`]. It exists purely as
//! a correctness oracle for the pruned branch-and-bound search and for the property-based
//! tests; it is exponential with no pruning and must only be used on small graphs.

use ise_hw::CostModel;
use ise_ir::{Dfg, NodeId};

use crate::constraints::Constraints;
use crate::cut::{self, CutSet};
use crate::search::IdentifiedCut;

/// Statistics of an exhaustive enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExhaustiveStats {
    /// Total number of non-empty cuts enumerated (`2^|V| - 1`).
    pub cuts_enumerated: u64,
    /// Cuts satisfying all constraints (ports, convexity, legality, budgets).
    pub feasible_cuts: u64,
}

/// Result of an exhaustive enumeration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveOutcome {
    /// The best feasible cut with strictly positive merit, if any.
    pub best: Option<IdentifiedCut>,
    /// Enumeration statistics.
    pub stats: ExhaustiveStats,
}

/// Enumerates every cut of `dfg` and returns the best feasible one.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes; the oracle is meant for tests only and
/// larger graphs would enumerate hundreds of millions of cuts.
#[must_use]
pub fn best_cut_exhaustive(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
) -> ExhaustiveOutcome {
    best_cut_exhaustive_excluding(dfg, None, constraints, model)
}

/// Enumerates every cut of `dfg` avoiding the `excluded` nodes and returns the best
/// feasible one. This is the exclusion-aware variant used when the oracle is driven
/// through the [`crate::engine::Identifier`] trait by the iterative selection driver.
///
/// # Panics
///
/// Panics if the graph has more than 24 nodes (see [`best_cut_exhaustive`]).
#[must_use]
pub fn best_cut_exhaustive_excluding(
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    constraints: Constraints,
    model: &dyn CostModel,
) -> ExhaustiveOutcome {
    let n = dfg.node_count();
    assert!(
        n <= 24,
        "exhaustive enumeration is a test oracle; {n} nodes is too large"
    );
    let mut stats = ExhaustiveStats::default();
    let mut best: Option<IdentifiedCut> = None;
    for mask in 1u64..(1u64 << n) {
        stats.cuts_enumerated += 1;
        let cut = CutSet::from_nodes(
            dfg,
            (0..n).filter(|i| mask & (1 << i) != 0).map(NodeId::new),
        );
        if excluded.is_some_and(|banned| cut.intersects(banned)) {
            continue;
        }
        if !cut::is_afu_legal(dfg, &cut) {
            continue;
        }
        let evaluation = cut::evaluate(dfg, &cut, model);
        if !evaluation.convex
            || !constraints.ports_ok(evaluation.inputs, evaluation.outputs)
            || !constraints.budget_ok(evaluation.area, evaluation.nodes)
        {
            continue;
        }
        stats.feasible_cuts += 1;
        if evaluation.merit > best.as_ref().map_or(0.0, |b| b.evaluation.merit) {
            best = Some(IdentifiedCut { cut, evaluation });
        }
    }
    ExhaustiveOutcome { best, stats }
}

/// Enumerates every cut of `dfg` and counts how many satisfy all constraints.
#[must_use]
pub fn count_feasible_cuts(dfg: &Dfg, constraints: Constraints, model: &dyn CostModel) -> u64 {
    best_cut_exhaustive(dfg, constraints, model)
        .stats
        .feasible_cuts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::identify_single_cut;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn sample() -> Dfg {
        let mut b = DfgBuilder::new("sample");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let m = b.mul(x, y);
        let s = b.add(m, z);
        let c = b.gt(s, b.imm(255));
        let sat = b.select(c, b.imm(255), s);
        let t = b.xor(sat, y);
        b.output("o", t);
        b.finish()
    }

    #[test]
    fn oracle_and_search_agree_on_the_best_merit() {
        let g = sample();
        let model = DefaultCostModel::new();
        for constraints in Constraints::paper_sweep() {
            let oracle = best_cut_exhaustive(&g, constraints, &model);
            let fast = identify_single_cut(&g, constraints, &model);
            let oracle_merit = oracle.best.as_ref().map_or(0.0, |b| b.evaluation.merit);
            let fast_merit = fast.best.as_ref().map_or(0.0, |b| b.evaluation.merit);
            assert_eq!(oracle_merit, fast_merit, "constraints {constraints}");
        }
    }

    #[test]
    fn enumeration_counts_all_cuts() {
        let g = sample();
        let model = DefaultCostModel::new();
        let outcome = best_cut_exhaustive(&g, Constraints::new(4, 2), &model);
        assert_eq!(outcome.stats.cuts_enumerated, (1 << g.node_count()) - 1);
        assert!(outcome.stats.feasible_cuts > 0);
        assert!(outcome.stats.feasible_cuts < outcome.stats.cuts_enumerated);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn oracle_refuses_large_graphs() {
        let mut b = DfgBuilder::new("big");
        let x = b.input("x");
        let mut v = x;
        for _ in 0..30 {
            v = b.add(v, b.imm(1));
        }
        b.output("o", v);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let _ = best_cut_exhaustive(&g, Constraints::new(2, 1), &model);
    }
}
