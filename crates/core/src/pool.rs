//! CutPool: enumerate once, answer every `(Nin, Nout)` constraint pair.
//!
//! The paper's Fig. 11 experiment sweeps the port constraints and re-runs the
//! exponential identification for every pair, yet the searches are nested: any cut
//! feasible under `(2, 1)` is feasible under every looser pair, and the branch-and-bound
//! tree walked under tight constraints is exactly a pruned subtree of the walk under
//! loose ones. This module exploits that monotonicity with a memoised *cut pool*:
//!
//! * [`fill_single_cut`] / [`fill_multicut`] run the exact search **once** under the
//!   loosest constraints of a sweep, with a recording [`SearchPolicy`] (`PoolFill`) that
//!   keeps every non-dominated candidate instead of a single incumbent;
//! * [`FilledPool`] / [`FilledTuplePool`] answer any *covered* query pair — same area
//!   and node budgets, ports no looser than the fill — with the **byte-identical**
//!   result a direct search under that pair would return, including the
//!   `cuts_considered` accounting, without walking the tree again.
//!
//! # Why the answers are exact
//!
//! Three facts make the reconstruction exact rather than approximate:
//!
//! 1. **`OUT(S)` is monotone along the search order.** Nodes are decided
//!    consumers-first, so a node added later can never be a consumer of an earlier
//!    member: growing a cut never removes a write port. Hence a cut is reachable in the
//!    walk under `Nout = q` exactly when its own output count is `≤ q`, and a pruned
//!    1-branch is attempted under `q` exactly when the largest output count applied on
//!    its tree path is `≤ q`.
//! 2. **The incumbent is order-determined.** A search returns the depth-first-earliest
//!    cut of maximal merit among the qualifying candidates. Keeping, per `(IN, OUT)`
//!    signature, the earliest maximal-merit candidate — and dropping any candidate that
//!    is port-dominated by an earlier one of no lesser merit — preserves the exact
//!    answer of *every* covered query ([`ParetoStore`]).
//! 3. **The effort counters are histogram-reconstructible.** Every 1-branch attempt of
//!    the loose walk is recorded as `(prefix max OUT, probed OUT, convex, node-budget,
//!    frontier-bound)`; a query aggregates the attempts its own walk would have made and
//!    classifies them in the canonical pruning order (output → convexity → node budget →
//!    frontier bound), reproducing [`SearchStats`] exactly — except `best_updates`,
//!    which would require the full offer log and is reported as zero by pool answers
//!    (see [`AttemptHistogram`]). The frontier bound is *query-independent*: its zero
//!    threshold and its optimistic value depend only on the tree path, never on the
//!    ports or the incumbent, so the fill observes the exact bound outcome every covered
//!    query would. Software-branch subtree prunes (which attempt no cut) are tallied per
//!    prefix in a side vector and summed the same way.
//!
//! Exploration budgets truncate the walk by *visit order* and therefore cannot be
//! reconstructed from a differently-constrained enumeration: a fill that exhausts its
//! budget is reported as [`FillOutcome::Exhausted`] and the caller must fall back to
//! direct per-pair searches. A fill that completes strictly *within* the budget is
//! valid for every covered query, because the tighter walks consider no more cuts than
//! the fill did and so never hit the budget either.

use std::sync::Mutex;

use ise_hw::{cut_merit, CostModel};
use ise_ir::Dfg;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::kernel::{
    BlockContext, BoundCheck, IncrementalCutState, Incumbent, SearchKernel, SearchPolicy,
};
use crate::search::{IdentifiedCut, SearchStats};

/// One candidate kept by a [`ParetoStore`]: the payload plus its query signature.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolEntry<P> {
    /// `IN` of the candidate (for tuples: the maximum over the member cuts).
    pub inputs: usize,
    /// `OUT` of the candidate (for tuples: the maximum over the member cuts).
    pub outputs: usize,
    /// The candidate's objective (merit, or summed merit for tuples).
    pub score: f64,
    /// Depth-first enumeration index, used to break score ties the way the
    /// sequential incumbent does (first visitor wins).
    pub seq: u64,
    /// The recorded candidate.
    pub payload: P,
}

/// The Pareto-pruned candidate store of one pool fill.
///
/// An entry is kept only while no earlier-or-better entry dominates it on
/// `(inputs, outputs, score)`; conversely a new entry evicts every stored entry it
/// strictly beats. The store therefore holds at most one entry per `(IN, OUT)`
/// signature and answers a query by a linear scan in enumeration order.
#[derive(Debug, Clone)]
pub struct ParetoStore<P> {
    entries: Vec<PoolEntry<P>>,
    offered: u64,
}

impl<P> Default for ParetoStore<P> {
    fn default() -> Self {
        ParetoStore {
            entries: Vec::new(),
            offered: 0,
        }
    }
}

impl<P> ParetoStore<P> {
    /// Offers a candidate; `make` is only invoked when the candidate survives the
    /// domination check (so payloads are built lazily).
    ///
    /// Candidates with non-positive score are discarded outright: the incumbent of a
    /// direct search starts at score zero and only strictly greater offers win, so such
    /// a candidate can never be any query's answer.
    pub fn offer(&mut self, inputs: usize, outputs: usize, score: f64, make: impl FnOnce() -> P) {
        let seq = self.offered;
        self.offered += 1;
        if score <= 0.0 {
            return;
        }
        // An earlier entry with no wider ports and no lesser score makes this candidate
        // unreachable as an answer: any query admitting it admits the earlier entry,
        // which either scores higher or — on an exact tie — was visited first.
        if self
            .entries
            .iter()
            .any(|e| e.inputs <= inputs && e.outputs <= outputs && e.score >= score)
        {
            return;
        }
        // Conversely, evict entries this candidate strictly beats on every axis.
        self.entries
            .retain(|e| !(inputs <= e.inputs && outputs <= e.outputs && score > e.score));
        self.entries.push(PoolEntry {
            inputs,
            outputs,
            score,
            seq,
            payload: make(),
        });
    }

    /// The answer a direct search under `(max_inputs, max_outputs)` would return: the
    /// earliest-enumerated candidate of maximal score among those within the ports.
    #[must_use]
    pub fn answer(&self, max_inputs: usize, max_outputs: usize) -> Option<&PoolEntry<P>> {
        let mut best: Option<&PoolEntry<P>> = None;
        for entry in &self.entries {
            if entry.inputs > max_inputs || entry.outputs > max_outputs {
                continue;
            }
            // Ties go to the smallest enumeration index — exactly the sequential
            // incumbent rule (a later equal-score candidate never replaces the first).
            if best.is_none_or(|b| {
                entry.score > b.score || (entry.score == b.score && entry.seq < b.seq)
            }) {
                best = Some(entry);
            }
        }
        best
    }

    /// Maps every stored payload through `f`, preserving the signatures, scores and
    /// enumeration indices that drive [`answer`](Self::answer).
    ///
    /// The corpus engine uses this to re-express recorded cuts in canonical node
    /// coordinates, so one fill can be translated onto any structurally isomorphic
    /// block (see `crate::structural`).
    #[must_use]
    pub fn map<Q>(self, mut f: impl FnMut(P) -> Q) -> ParetoStore<Q> {
        ParetoStore {
            entries: self
                .entries
                .into_iter()
                .map(|e| PoolEntry {
                    inputs: e.inputs,
                    outputs: e.outputs,
                    score: e.score,
                    seq: e.seq,
                    payload: f(e.payload),
                })
                .collect(),
            offered: self.offered,
        }
    }

    /// Number of stored (non-dominated) candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no candidate survived.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The raw `(entries, offered)` state, for snapshot serialization.
    pub(crate) fn parts(&self) -> (&[PoolEntry<P>], u64) {
        (&self.entries, self.offered)
    }

    /// Rebuilds a store from snapshot state without re-running domination checks.
    ///
    /// Only valid for entry lists previously produced by [`parts`](Self::parts) —
    /// the invariants (non-dominated, positive scores, `seq < offered`) are the
    /// loader's responsibility to preserve by round-tripping bytes faithfully.
    pub(crate) fn from_parts(entries: Vec<PoolEntry<P>>, offered: u64) -> Self {
        ParetoStore { entries, offered }
    }
}

/// Histogram of every 1-branch attempt of a pool fill, sufficient to reconstruct the
/// [`SearchStats`] of a direct search under any covered output-port constraint.
///
/// Each attempt is keyed by the largest `OUT` applied on its tree path (`prefix`), the
/// probed `OUT` of the attempt itself, and its convexity / node-budget / frontier-bound
/// flags. A walk under `Nout = q` makes exactly the attempts with `prefix ≤ q` and
/// classifies each in the canonical order: output ports first, then convexity, the node
/// budget, and last the frontier bound. The bound flag is query-independent (zero
/// threshold, path-determined optimistic value), so recording it once at fill time is
/// exact for every covered query. Software-branch subtree prunes — the bound firing at
/// a 0-branch, where no cut is attempted — are tallied per prefix in
/// `subtree_prunes` and reconstructed by the same prefix cutoff.
///
/// `best_updates` is *not* reconstructible from a histogram (it depends on the full
/// offer order) and is reported as zero by [`reconstruct`](Self::reconstruct); pool
/// consumers only aggregate `cuts_considered`, which is exact.
#[derive(Debug, Clone)]
pub struct AttemptHistogram {
    fill_outputs: usize,
    counts: Vec<u64>,
    subtree_prunes: Vec<u64>,
}

impl AttemptHistogram {
    fn new(fill_outputs: usize) -> Self {
        AttemptHistogram {
            fill_outputs,
            counts: vec![0; (fill_outputs + 1) * (fill_outputs + 2) * 8],
            subtree_prunes: vec![0; fill_outputs + 1],
        }
    }

    fn index(
        &self,
        prefix: usize,
        probed: usize,
        convex: bool,
        within_budget: bool,
        bound_ok: bool,
    ) -> usize {
        (((prefix * (self.fill_outputs + 2) + probed) * 2 + usize::from(convex)) * 2
            + usize::from(within_budget))
            * 2
            + usize::from(bound_ok)
    }

    fn record(
        &mut self,
        prefix: usize,
        probed: usize,
        convex: bool,
        within_budget: bool,
        bound_ok: bool,
    ) {
        let index = self.index(prefix, probed, convex, within_budget, bound_ok);
        self.counts[index] += 1;
    }

    fn record_subtree_prune(&mut self, prefix: usize) {
        self.subtree_prunes[prefix] += 1;
    }

    /// Reconstructs the statistics of a direct search under `Nout = max_outputs`.
    #[must_use]
    pub fn reconstruct(&self, max_outputs: usize) -> SearchStats {
        let mut stats = SearchStats::default();
        let query = max_outputs.min(self.fill_outputs);
        for prefix in 0..=query {
            stats.bound_subtree_prunes += self.subtree_prunes[prefix];
            for probed in 0..=self.fill_outputs + 1 {
                for convex in [false, true] {
                    for within_budget in [false, true] {
                        for bound_ok in [false, true] {
                            let n = self.counts
                                [self.index(prefix, probed, convex, within_budget, bound_ok)];
                            if n == 0 {
                                continue;
                            }
                            stats.cuts_considered += n;
                            if probed > max_outputs {
                                stats.pruned_output += n;
                            } else if !convex {
                                stats.pruned_convexity += n;
                            } else if !within_budget {
                                stats.pruned_node_budget += n;
                            } else if !bound_ok {
                                stats.pruned_bound += n;
                            } else {
                                stats.feasible_cuts += n;
                            }
                        }
                    }
                }
            }
        }
        stats
    }

    /// The raw `(fill_outputs, counts, subtree_prunes)` state, for snapshots.
    pub(crate) fn parts(&self) -> (usize, &[u64], &[u64]) {
        (self.fill_outputs, &self.counts, &self.subtree_prunes)
    }

    /// Rebuilds a histogram from snapshot state, validating the table geometry.
    ///
    /// Returns `None` when the vector lengths do not match `fill_outputs` — the
    /// snapshot loader treats that as corruption and falls back to a cold start.
    pub(crate) fn from_parts(
        fill_outputs: usize,
        counts: Vec<u64>,
        subtree_prunes: Vec<u64>,
    ) -> Option<Self> {
        if counts.len() != (fill_outputs + 1) * (fill_outputs + 2) * 8
            || subtree_prunes.len() != fill_outputs + 1
        {
            return None;
        }
        Some(AttemptHistogram {
            fill_outputs,
            counts,
            subtree_prunes,
        })
    }
}

/// Shared recording state of one pool fill (candidates plus the attempt histogram).
#[derive(Debug)]
struct FillRecorder<P> {
    store: ParetoStore<P>,
    histogram: AttemptHistogram,
}

/// A completed single-cut pool fill for one basic block and one exclusion set.
#[derive(Debug, Clone)]
pub struct FilledPool {
    /// The constraints the enumeration ran under.
    pub fill: Constraints,
    /// The non-dominated candidate cuts.
    pub store: ParetoStore<IdentifiedCut>,
    /// The attempt histogram for effort reconstruction.
    pub histogram: AttemptHistogram,
    /// Cuts considered by the fill enumeration itself (the physical cost of the fill).
    pub fill_cuts_considered: u64,
}

/// A completed multiple-cut pool fill (per block and per simultaneous-cut count `M`).
#[derive(Debug, Clone)]
pub struct FilledTuplePool {
    /// The constraints the enumeration ran under.
    pub fill: Constraints,
    /// The non-dominated candidate tuples.
    pub store: ParetoStore<Vec<IdentifiedCut>>,
    /// The attempt histogram for effort reconstruction.
    pub histogram: AttemptHistogram,
    /// Assignments considered by the fill enumeration itself.
    pub fill_cuts_considered: u64,
}

/// Result of attempting a pool fill.
#[derive(Debug, Clone)]
pub enum FillOutcome<T> {
    /// The enumeration completed; the pool answers every covered query exactly.
    Complete(T),
    /// The enumeration hit its exploration budget; callers must fall back to direct
    /// per-pair searches (a truncated walk is visit-order-dependent and cannot be
    /// reconstructed under different constraints).
    Exhausted {
        /// Cuts considered before the budget stopped the fill.
        fill_cuts_considered: u64,
    },
}

/// Returns `true` when a pool filled under `fill` can answer queries under `query`:
/// ports no looser than the fill, and byte-identical area / node budgets (both budgets
/// participate in pruning or candidate qualification and must match exactly).
#[must_use]
pub fn covers(fill: &Constraints, query: &Constraints) -> bool {
    query.max_inputs <= fill.max_inputs
        && query.max_outputs <= fill.max_outputs
        && query.max_area == fill.max_area
        && query.max_nodes == fill.max_nodes
}

/// Answer of one pool query, standing in for a direct search's outcome.
#[derive(Debug, Clone)]
pub struct PoolAnswer<P> {
    /// The payload the direct search would have returned.
    pub best: Option<P>,
    /// The reconstructed statistics (`best_updates` is reported as zero; see
    /// [`AttemptHistogram`]).
    pub stats: SearchStats,
}

impl FilledPool {
    /// Answers a covered query pair with the byte-identical result of a direct
    /// [`SingleCutSearch`](crate::SingleCutSearch) under `query`.
    ///
    /// # Panics
    ///
    /// Panics if `query` is not covered by the fill constraints (callers check
    /// [`covers`] and fall back to a direct search instead).
    #[must_use]
    pub fn answer(&self, query: &Constraints) -> PoolAnswer<IdentifiedCut> {
        assert!(covers(&self.fill, query), "query not covered by the fill");
        let best = self
            .store
            .answer(query.max_inputs, query.max_outputs)
            .map(|entry| entry.payload.clone());
        PoolAnswer {
            best,
            stats: self.histogram.reconstruct(query.max_outputs),
        }
    }
}

impl FilledTuplePool {
    /// Answers a covered query pair with the byte-identical cut tuple a direct
    /// [`MultiCutSearch`](crate::MultiCutSearch) under `query` would return.
    ///
    /// # Panics
    ///
    /// Panics if `query` is not covered by the fill constraints.
    #[must_use]
    pub fn answer(&self, query: &Constraints) -> PoolAnswer<Vec<IdentifiedCut>> {
        assert!(covers(&self.fill, query), "query not covered by the fill");
        let best = self
            .store
            .answer(query.max_inputs, query.max_outputs)
            .map(|entry| entry.payload.clone());
        PoolAnswer {
            best,
            stats: self.histogram.reconstruct(query.max_outputs),
        }
    }
}

/// Search state of the recording policies: the cut bookkeeping plus the running
/// maximum of the output counts applied on the current tree path (one stack entry per
/// applied decision, so undo is uniform).
#[derive(Debug, Clone)]
struct FillState<C> {
    cuts: C,
    prefix_out: Vec<usize>,
}

impl<C> FillState<C> {
    fn new(cuts: C) -> Self {
        FillState {
            cuts,
            prefix_out: vec![0],
        }
    }

    fn prefix(&self) -> usize {
        *self.prefix_out.last().expect("prefix stack never empties")
    }
}

/// The recording single-cut policy: the same decisions, pruning and counting as the
/// incumbent-driven policy in `crate::search`, but every attempt goes into the
/// histogram and every qualifying candidate into the Pareto store.
struct SingleCutFillPolicy<'a> {
    ctx: &'a BlockContext<'a>,
    recorder: Mutex<FillRecorder<IdentifiedCut>>,
}

impl SearchPolicy for SingleCutFillPolicy<'_> {
    type Payload = ();
    type State = FillState<IncrementalCutState>;

    fn depth(&self) -> usize {
        self.ctx.depth()
    }

    fn max_arity(&self) -> usize {
        2
    }

    fn initial_state(&self) -> Self::State {
        FillState::new(IncrementalCutState::new(self.ctx))
    }

    fn choice_count(&self, _state: &Self::State, _level: usize) -> usize {
        2
    }

    fn apply(
        &self,
        state: &mut Self::State,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        _incumbent: &mut Incumbent<()>,
    ) -> bool {
        let ctx = self.ctx;
        let node = ctx.node_at(level);
        if choice == 1 {
            let prefix = state.prefix();
            // The same path-determined zero-threshold bound the direct search applies
            // at its software branch; a pruned subtree is recorded per prefix so covered
            // queries reconstruct their own `bound_subtree_prunes`.
            if state.cuts.frontier_dead_without(ctx, level) {
                stats.bound_subtree_prunes += 1;
                let mut recorder = self.recorder.lock().expect("fill runs sequentially");
                recorder.histogram.record_subtree_prune(prefix);
                return false;
            }
            state.cuts.mark_outside(ctx, node);
            state.prefix_out.push(prefix);
            return true;
        }
        if ctx.is_blocked(node) {
            return false;
        }
        let prefix = state.prefix();
        let probe = state.cuts.probe_add(ctx, node);
        let within_budget = ctx
            .constraints
            .max_nodes
            .is_none_or(|limit| state.cuts.len() < limit);
        let dead = state.cuts.frontier_dead_with(ctx, level);
        let bound = BoundCheck::frontier(dead);
        let mut recorder = self.recorder.lock().expect("fill runs sequentially");
        recorder
            .histogram
            .record(prefix, probe.outputs, probe.convex, within_budget, !dead);
        if !state.cuts.try_add_probed(ctx, node, probe, bound, stats) {
            return false;
        }
        // Candidate qualification mirrors the single-cut offer: the input-port check
        // and the area / node budgets apply only here, never as pruning.
        if state.cuts.inputs() <= ctx.constraints.max_inputs
            && ctx
                .constraints
                .budget_ok(state.cuts.area(), state.cuts.len())
        {
            recorder.store.offer(
                state.cuts.inputs(),
                state.cuts.outputs(),
                state.cuts.merit(),
                || state.cuts.identified(ctx),
            );
        }
        drop(recorder);
        state.prefix_out.push(prefix.max(probe.outputs));
        true
    }

    fn undo(&self, state: &mut Self::State, _level: usize, _choice: usize) {
        state.prefix_out.pop();
        state.cuts.undo_last(self.ctx);
    }
}

/// The recording `(M+1)`-ary policy mirroring `crate::multicut`: every assignment
/// attempt is histogrammed, every qualifying tuple offered to the store with the
/// signature `(max IN, max OUT, summed merit)` over its non-empty member cuts.
struct MultiCutFillPolicy<'a> {
    ctx: &'a BlockContext<'a>,
    num_cuts: usize,
    recorder: Mutex<FillRecorder<Vec<IdentifiedCut>>>,
}

impl MultiCutFillPolicy<'_> {
    /// Number of cut slots the current node may be assigned to (symmetry breaking:
    /// slot `k` opens only once slots `0..k` are in use) — identical to the
    /// incumbent-driven policy.
    fn assignable(&self, state: &FillState<Vec<IncrementalCutState>>) -> usize {
        let used = state.cuts.iter().take_while(|cut| !cut.is_empty()).count();
        (used + 1).min(self.num_cuts)
    }

    /// The tuple's current summed merit — the additive base of the frontier bound,
    /// identical to the incumbent-driven policy's.
    fn base_merit(state: &FillState<Vec<IncrementalCutState>>) -> f64 {
        state.cuts.iter().map(IncrementalCutState::merit).sum()
    }

    /// Offers the current assignment: every non-empty cut must satisfy the input-port
    /// and budget constraints of the *fill*; tighter query ports are applied at answer
    /// time through the recorded signature.
    fn consider_candidate(
        &self,
        state: &FillState<Vec<IncrementalCutState>>,
        recorder: &mut FillRecorder<Vec<IdentifiedCut>>,
    ) {
        let mut total = 0.0;
        let mut max_in = 0;
        let mut max_out = 0;
        for cut in &state.cuts {
            if cut.is_empty() {
                continue;
            }
            if cut.inputs() > self.ctx.constraints.max_inputs
                || !self.ctx.constraints.budget_ok(cut.area(), cut.len())
            {
                return;
            }
            total += cut.merit();
            max_in = max_in.max(cut.inputs());
            max_out = max_out.max(cut.outputs());
        }
        recorder.store.offer(max_in, max_out, total, || {
            state
                .cuts
                .iter()
                .filter(|cut| !cut.is_empty())
                .map(|cut| cut.identified(self.ctx))
                .filter(|c| c.evaluation.merit > 0.0)
                .collect()
        });
    }
}

impl SearchPolicy for MultiCutFillPolicy<'_> {
    type Payload = ();
    type State = FillState<Vec<IncrementalCutState>>;

    fn depth(&self) -> usize {
        self.ctx.depth()
    }

    fn max_arity(&self) -> usize {
        self.num_cuts + 1
    }

    fn initial_state(&self) -> Self::State {
        FillState::new(vec![IncrementalCutState::new(self.ctx); self.num_cuts])
    }

    fn choice_count(&self, state: &Self::State, level: usize) -> usize {
        if self.ctx.is_blocked(self.ctx.node_at(level)) {
            1
        } else {
            self.assignable(state) + 1
        }
    }

    fn apply(
        &self,
        state: &mut Self::State,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        _incumbent: &mut Incumbent<()>,
    ) -> bool {
        let ctx = self.ctx;
        let node = ctx.node_at(level);
        let blocked = ctx.is_blocked(node);
        let software_choice = if blocked { 0 } else { self.assignable(state) };
        let prefix = state.prefix();
        if choice == software_choice {
            // Same path-determined zero-threshold bound as the direct `(M+1)`-ary
            // policy's software branch, recorded per prefix for reconstruction.
            let optimistic = Self::base_merit(state) + ctx.remaining_mass(level + 1) as f64;
            if optimistic <= 0.0 {
                stats.bound_subtree_prunes += 1;
                let mut recorder = self.recorder.lock().expect("fill runs sequentially");
                recorder.histogram.record_subtree_prune(prefix);
                return false;
            }
            for cut in &mut state.cuts {
                cut.mark_outside(ctx, node);
            }
            state.prefix_out.push(prefix);
            return true;
        }
        let probe = state.cuts[choice].probe_add(ctx, node);
        let within_budget = ctx
            .constraints
            .max_nodes
            .is_none_or(|limit| state.cuts[choice].len() < limit);
        let slot = &state.cuts[choice];
        let bound = BoundCheck {
            optimistic: Self::base_merit(state) - slot.merit()
                + cut_merit(
                    slot.software() + u64::from(ctx.node_software_cost(node)),
                    slot.critical_path(),
                )
                + ctx.remaining_mass(level + 1) as f64,
            threshold: 0.0,
            input_floor: None,
        };
        let mut recorder = self.recorder.lock().expect("fill runs sequentially");
        recorder.histogram.record(
            prefix,
            probe.outputs,
            probe.convex,
            within_budget,
            bound.optimistic > bound.threshold,
        );
        if !state.cuts[choice].try_add_probed(ctx, node, probe, bound, stats) {
            return false;
        }
        for (slot, cut) in state.cuts.iter_mut().enumerate() {
            if slot != choice {
                cut.mark_outside(ctx, node);
            }
        }
        self.consider_candidate(state, &mut recorder);
        drop(recorder);
        state.prefix_out.push(prefix.max(probe.outputs));
        true
    }

    fn undo(&self, state: &mut Self::State, _level: usize, _choice: usize) {
        state.prefix_out.pop();
        for cut in state.cuts.iter_mut().rev() {
            cut.undo_last(self.ctx);
        }
    }
}

/// Returns `true` when a fill that ran under `budget` completed strictly within it, so
/// that every covered (hence no-larger) query walk is guaranteed untruncated too.
fn fill_complete(stats: &SearchStats, budget: Option<u64>) -> bool {
    !stats.budget_exhausted && budget.is_none_or(|limit| stats.cuts_considered < limit)
}

/// Enumerates every candidate cut of `dfg` under the (loose) `fill` constraints and
/// returns the memoisable pool, honouring `excluded` exactly as a direct search would.
///
/// The fill always runs sequentially: recording is visit-order-sensitive, and a fill is
/// performed once per sweep whereas its answers are served many times.
#[must_use]
pub fn fill_single_cut(
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    fill: Constraints,
    model: &dyn CostModel,
    budget: Option<u64>,
) -> FillOutcome<FilledPool> {
    let mut ctx = BlockContext::new(dfg, fill, model);
    if let Some(excluded) = excluded {
        ctx.block_nodes(excluded);
    }
    let policy = SingleCutFillPolicy {
        ctx: &ctx,
        recorder: Mutex::new(FillRecorder {
            store: ParetoStore::default(),
            histogram: AttemptHistogram::new(fill.max_outputs),
        }),
    };
    let kernel = SearchKernel::sequential().with_exploration_budget(budget);
    let (_, stats) = kernel.run(&policy);
    let recorder = policy
        .recorder
        .into_inner()
        .expect("fill mutex is never poisoned");
    if !fill_complete(&stats, budget) {
        return FillOutcome::Exhausted {
            fill_cuts_considered: stats.cuts_considered,
        };
    }
    FillOutcome::Complete(FilledPool {
        fill,
        store: recorder.store,
        histogram: recorder.histogram,
        fill_cuts_considered: stats.cuts_considered,
    })
}

/// Enumerates every candidate `num_cuts`-tuple of `dfg` under the (loose) `fill`
/// constraints and returns the memoisable tuple pool.
#[must_use]
pub fn fill_multicut(
    dfg: &Dfg,
    excluded: Option<&CutSet>,
    fill: Constraints,
    model: &dyn CostModel,
    num_cuts: usize,
    budget: Option<u64>,
) -> FillOutcome<FilledTuplePool> {
    let mut ctx = BlockContext::new(dfg, fill, model);
    if let Some(excluded) = excluded {
        ctx.block_nodes(excluded);
    }
    let policy = MultiCutFillPolicy {
        ctx: &ctx,
        num_cuts,
        recorder: Mutex::new(FillRecorder {
            store: ParetoStore::default(),
            histogram: AttemptHistogram::new(fill.max_outputs),
        }),
    };
    let kernel = SearchKernel::sequential().with_exploration_budget(budget);
    let (_, stats) = kernel.run(&policy);
    let recorder = policy
        .recorder
        .into_inner()
        .expect("fill mutex is never poisoned");
    if !fill_complete(&stats, budget) {
        return FillOutcome::Exhausted {
            fill_cuts_considered: stats.cuts_considered,
        };
    }
    FillOutcome::Complete(FilledTuplePool {
        fill,
        store: recorder.store,
        histogram: recorder.histogram,
        fill_cuts_considered: stats.cuts_considered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicut::MultiCutSearch;
    use crate::search::SingleCutSearch;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    fn expect_complete<T>(outcome: FillOutcome<T>) -> T {
        match outcome {
            FillOutcome::Complete(pool) => pool,
            FillOutcome::Exhausted { .. } => panic!("fill unexpectedly exhausted"),
        }
    }

    /// The pool answer equals the direct search — cut identity *and* every reconstructed
    /// counter — for all paper pairs covered by an `(8, 4)` fill, on the Fig. 4 block
    /// and on seeded random DAGs.
    #[test]
    fn pool_answers_match_direct_single_cut_searches() {
        let model = DefaultCostModel::new();
        let fill = Constraints::new(8, 4);
        let mut graphs = vec![fig4()];
        for seed in 0..12u64 {
            graphs.push(ise_ir_random(seed));
        }
        for dfg in &graphs {
            let pool = expect_complete(fill_single_cut(dfg, None, fill, &model, None));
            for query in Constraints::paper_sweep() {
                assert!(covers(&fill, &query));
                let direct = SingleCutSearch::new(dfg, query, &model).run();
                let answer = pool.answer(&query);
                assert_eq!(answer.best, direct.best, "{} under {query}", dfg.name());
                let stats = answer.stats;
                assert_eq!(stats.cuts_considered, direct.stats.cuts_considered);
                assert_eq!(stats.feasible_cuts, direct.stats.feasible_cuts);
                assert_eq!(stats.pruned_output, direct.stats.pruned_output);
                assert_eq!(stats.pruned_convexity, direct.stats.pruned_convexity);
                assert_eq!(stats.pruned_node_budget, direct.stats.pruned_node_budget);
                assert_eq!(stats.pruned_bound, direct.stats.pruned_bound);
                assert_eq!(
                    stats.bound_subtree_prunes,
                    direct.stats.bound_subtree_prunes
                );
                assert!(!stats.budget_exhausted);
            }
        }
    }

    /// A deterministic little random DAG without depending on `ise-workloads`
    /// (which would be a dependency cycle).
    fn ise_ir_random(seed: u64) -> Dfg {
        let mut b = DfgBuilder::new(format!("rand{seed}"));
        let mut values = vec![b.input("a"), b.input("c"), b.input("d")];
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..12 {
            let lhs = values[(next() as usize) % values.len()];
            let rhs = values[(next() as usize) % values.len()];
            let v = match next() % 4 {
                0 => b.mul(lhs, rhs),
                1 => b.add(lhs, rhs),
                2 => b.xor(lhs, rhs),
                _ => b.sub(lhs, rhs),
            };
            values.push(v);
            if i % 5 == 4 {
                b.output(format!("o{i}"), v);
            }
        }
        let last = *values.last().expect("at least one value");
        b.output("out", last);
        b.finish()
    }

    /// Exclusions are honoured exactly as a direct `with_excluded` search.
    #[test]
    fn pool_honours_exclusions() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let fill = Constraints::new(8, 4);
        let query = Constraints::new(4, 2);
        let full = SingleCutSearch::new(&g, query, &model).run();
        let excluded = full.best.expect("profitable cut").cut;
        let pool = expect_complete(fill_single_cut(&g, Some(&excluded), fill, &model, None));
        let direct = SingleCutSearch::new(&g, query, &model)
            .with_excluded(&excluded)
            .run();
        let answer = pool.answer(&query);
        assert_eq!(answer.best, direct.best);
        assert_eq!(answer.stats.cuts_considered, direct.stats.cuts_considered);
    }

    /// Multicut tuple answers equal the direct `(M+1)`-ary search.
    #[test]
    fn tuple_pool_answers_match_direct_multicut_searches() {
        let model = DefaultCostModel::new();
        let fill = Constraints::new(8, 4);
        for seed in 0..8u64 {
            let dfg = ise_ir_random(seed);
            for m in [1usize, 2, 3] {
                let pool = expect_complete(fill_multicut(&dfg, None, fill, &model, m, None));
                for query in [
                    Constraints::new(2, 1),
                    Constraints::new(4, 2),
                    Constraints::new(8, 4),
                ] {
                    let direct = MultiCutSearch::new(&dfg, query, &model, m).run();
                    let answer = pool.answer(&query);
                    let direct_payload = if direct.cuts.is_empty() {
                        None
                    } else {
                        Some(direct.cuts.clone())
                    };
                    // The store keeps the *unsorted* payload; sort like the search does.
                    let answered = answer.best.map(|mut cuts| {
                        cuts.sort_by(|a, b| {
                            b.evaluation
                                .merit
                                .partial_cmp(&a.evaluation.merit)
                                .unwrap_or(std::cmp::Ordering::Equal)
                        });
                        cuts
                    });
                    assert_eq!(answered, direct_payload, "seed {seed}, M={m}, {query}");
                    assert_eq!(
                        answer.stats.cuts_considered, direct.stats.cuts_considered,
                        "seed {seed}, M={m}, {query}"
                    );
                    assert_eq!(
                        answer.stats.pruned_bound, direct.stats.pruned_bound,
                        "seed {seed}, M={m}, {query}"
                    );
                    assert_eq!(
                        answer.stats.bound_subtree_prunes, direct.stats.bound_subtree_prunes,
                        "seed {seed}, M={m}, {query}"
                    );
                }
            }
        }
    }

    /// A fill that hits its exploration budget reports `Exhausted` instead of serving
    /// wrong answers; a fill that completes within the budget stays valid.
    #[test]
    fn budget_exhausted_fills_are_rejected() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let fill = Constraints::new(8, 4);
        match fill_single_cut(&g, None, fill, &model, Some(2)) {
            FillOutcome::Exhausted {
                fill_cuts_considered,
            } => assert!(fill_cuts_considered >= 2),
            FillOutcome::Complete(_) => panic!("a 2-cut budget must exhaust on fig4"),
        }
        let generous = expect_complete(fill_single_cut(&g, None, fill, &model, Some(1_000)));
        let unbudgeted = expect_complete(fill_single_cut(&g, None, fill, &model, None));
        assert_eq!(
            generous.fill_cuts_considered,
            unbudgeted.fill_cuts_considered
        );
    }

    /// The Pareto store keeps at most one entry per `(IN, OUT)` signature and breaks
    /// score ties in favour of the earliest candidate.
    #[test]
    fn pareto_store_prunes_and_tie_breaks() {
        let mut store: ParetoStore<&'static str> = ParetoStore::default();
        store.offer(2, 1, 3.0, || "first");
        store.offer(2, 1, 3.0, || "tied-later"); // dropped: same signature, tie
        store.offer(3, 2, 2.0, || "dominated"); // dropped: wider ports, lower score
        store.offer(2, 1, 5.0, || "better"); // evicts "first"
        store.offer(1, 1, 1.0, || "narrow"); // kept: narrower ports
        assert_eq!(store.len(), 2);
        assert_eq!(store.answer(2, 1).map(|e| e.payload), Some("better"));
        assert_eq!(store.answer(1, 1).map(|e| e.payload), Some("narrow"));
        assert_eq!(store.answer(0, 1), None);
        store.offer(1, 1, -1.0, || "non-positive"); // never an answer
        assert_eq!(store.len(), 2);
    }

    /// Covered pairs require equal budgets and no-looser ports.
    #[test]
    fn coverage_rules() {
        let fill = Constraints::new(8, 4);
        assert!(covers(&fill, &Constraints::new(2, 1)));
        assert!(covers(&fill, &Constraints::new(8, 4)));
        assert!(!covers(&fill, &Constraints::new(9, 4)));
        assert!(!covers(&fill, &Constraints::new(8, 5)));
        assert!(!covers(&fill, &Constraints::new(2, 1).with_max_nodes(4)));
        assert!(!covers(&fill, &Constraints::new(2, 1).with_max_area(1.0)));
        let budgeted_fill = Constraints::new(8, 4).with_max_nodes(6);
        assert!(covers(
            &budgeted_fill,
            &Constraints::new(4, 2).with_max_nodes(6)
        ));
    }

    /// Empty and single-node blocks degrade gracefully.
    #[test]
    fn degenerate_blocks() {
        let model = DefaultCostModel::new();
        let empty = Dfg::new("empty");
        let pool = expect_complete(fill_single_cut(
            &empty,
            None,
            Constraints::new(8, 4),
            &model,
            None,
        ));
        let answer = pool.answer(&Constraints::new(2, 1));
        assert!(answer.best.is_none());
        assert_eq!(answer.stats.cuts_considered, 0);

        let mut b = DfgBuilder::new("one");
        let x = b.input("x");
        let y = b.input("y");
        let v = b.mul(x, y);
        b.output("o", v);
        let single = b.finish();
        let pool = expect_complete(fill_single_cut(
            &single,
            None,
            Constraints::new(8, 4),
            &model,
            None,
        ));
        for query in [Constraints::new(2, 1), Constraints::new(8, 4)] {
            let direct = SingleCutSearch::new(&single, query, &model).run();
            let answer = pool.answer(&query);
            assert_eq!(answer.best, direct.best);
            assert_eq!(answer.stats.cuts_considered, direct.stats.cuts_considered);
        }
    }
}
