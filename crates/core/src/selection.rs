//! Selection of up to `Ninstr` instructions across all basic blocks (Problem 2).
//!
//! Two strategies are provided, mirroring Sections 6.2 and 6.3 of the paper:
//!
//! * [`select_optimal`] — drives the multiple-cut identification algorithm with a growing
//!   per-block cut count, choosing at each step the block whose next cut yields the
//!   largest improvement. It provably reaches the optimum with at most
//!   `Ninstr + Nbb − 1` identifier invocations (Fig. 10 of the paper), but each
//!   invocation is itself exponential and becomes impractical on large blocks.
//! * [`select_iterative`] — the practical heuristic: repeatedly run the *single*-cut
//!   identification on every block, commit the globally best cut, exclude its nodes, and
//!   repeat until `Ninstr` cuts are chosen or no profitable cut remains.
//!
//! Both return a [`SelectionResult`] which can be turned into the application-level
//! speed-up report used by the Fig. 11 experiments.
//!
//! As an extension (anticipated as future work in Section 9), [`select_under_area`]
//! performs the same iterative selection under a global area budget.

use ise_hw::speedup::{SelectedInstruction, SpeedupReport};
use ise_hw::{CostModel, SoftwareLatencyModel};
use ise_ir::Program;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::multicut::MultiCutSearch;
use crate::search::{IdentifiedCut, SingleCutSearch};

/// One instruction chosen by a selection algorithm.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChosenCut {
    /// Index of the basic block the cut belongs to.
    pub block_index: usize,
    /// The cut and its evaluation.
    pub identified: IdentifiedCut,
}

impl ChosenCut {
    /// Dynamic cycle saving contributed by this instruction (merit × block frequency).
    #[must_use]
    pub fn weighted_saving(&self, program: &Program) -> f64 {
        self.identified.evaluation.merit * program.block(self.block_index).exec_count() as f64
    }
}

/// Result of a selection run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SelectionResult {
    /// The chosen instructions, in the order they were committed.
    pub chosen: Vec<ChosenCut>,
    /// Total dynamic cycles saved (sum of merit × block frequency).
    pub total_weighted_saving: f64,
    /// Number of identification-algorithm invocations performed.
    pub identifier_calls: u64,
    /// Total number of cuts considered across all identifier invocations.
    pub cuts_considered: u64,
}

impl SelectionResult {
    /// Number of chosen instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chosen.len()
    }

    /// Returns `true` if no instruction was selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chosen.is_empty()
    }

    /// Total normalised datapath area of the selected instructions.
    #[must_use]
    pub fn total_area(&self) -> f64 {
        self.chosen
            .iter()
            .map(|c| c.identified.evaluation.area)
            .sum()
    }

    /// Builds the application-level speed-up report for this selection.
    #[must_use]
    pub fn speedup_report(
        &self,
        program: &Program,
        software: &SoftwareLatencyModel,
    ) -> SpeedupReport {
        let instructions = self
            .chosen
            .iter()
            .map(|c| SelectedInstruction {
                block_index: c.block_index,
                saving_per_execution: c.identified.evaluation.merit,
                exec_count: program.block(c.block_index).exec_count(),
                area: c.identified.evaluation.area,
                inputs: c.identified.evaluation.inputs,
                outputs: c.identified.evaluation.outputs,
                nodes: c.identified.evaluation.nodes,
            })
            .collect();
        SpeedupReport::for_program(program, software, instructions)
    }
}

/// Options shared by the selection drivers.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SelectionOptions {
    /// Maximum number of special instructions to select (`Ninstr`).
    pub max_instructions: usize,
    /// Optional per-identifier-invocation exploration budget (number of cuts considered)
    /// after which a run returns its incumbent instead of the proven optimum.
    pub exploration_budget: Option<u64>,
}

impl SelectionOptions {
    /// Creates options for selecting up to `max_instructions` instructions.
    #[must_use]
    pub fn new(max_instructions: usize) -> Self {
        SelectionOptions {
            max_instructions,
            exploration_budget: None,
        }
    }

    /// Sets a per-invocation exploration budget.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: u64) -> Self {
        self.exploration_budget = Some(budget);
        self
    }
}

/// Picks the block whose cached candidate saves the most dynamic cycles (merit ×
/// block execution count); ties resolve to the highest block index.
///
/// Shared by [`select_iterative`] and the engine driver's iterative merge, so the
/// two strategies — whose results are asserted byte-identical by the test-suite —
/// can never drift apart.
pub(crate) fn best_weighted_block(
    program: &Program,
    candidate: &[Option<IdentifiedCut>],
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (block_index, identified) in candidate.iter().enumerate() {
        let Some(identified) = identified.as_ref() else {
            continue;
        };
        let weighted = identified.evaluation.merit * program.block(block_index).exec_count() as f64;
        if best.is_none_or(|(_, best_weighted)| weighted >= best_weighted) {
            best = Some((block_index, weighted));
        }
    }
    best
}

/// Iterative selection (Section 6.3): repeatedly identify the best single cut over all
/// blocks, commit it, exclude its nodes and continue.
#[must_use]
pub fn select_iterative(
    program: &Program,
    constraints: Constraints,
    model: &dyn CostModel,
    options: SelectionOptions,
) -> SelectionResult {
    // Delegates to the engine's shared iterative loop (commit order, interlock guard
    // and accounting live in exactly one place; the test-suite asserts this function
    // and the engine driver are byte-identical).
    crate::engine::driver::select_iteratively_core(program, options.max_instructions, |work| {
        work.iter()
            .map(|&(block_index, excluded)| {
                let dfg = program.block(block_index);
                let mut search =
                    SingleCutSearch::new(dfg, constraints, model).with_excluded(excluded);
                if let Some(budget) = options.exploration_budget {
                    search = search.with_exploration_budget(budget);
                }
                let outcome = search.run();
                crate::engine::driver::BlockAnswer {
                    best: outcome.best,
                    cuts_considered: outcome.stats.cuts_considered,
                }
            })
            .collect()
    })
}

/// Optimal selection (Section 6.2): grow the per-block cut count greedily on marginal
/// improvements, using the multiple-cut identification algorithm.
#[must_use]
pub fn select_optimal(
    program: &Program,
    constraints: Constraints,
    model: &dyn CostModel,
    options: SelectionOptions,
) -> SelectionResult {
    select_optimal_core(
        program,
        options.max_instructions,
        |result, block_index, m| {
            let dfg = program.block(block_index);
            let mut search = MultiCutSearch::new(dfg, constraints, model, m);
            if let Some(budget) = options.exploration_budget {
                search = search.with_exploration_budget(budget);
            }
            let outcome = search.run();
            result.identifier_calls += 1;
            result.cuts_considered += outcome.stats.cuts_considered;
            let weight = dfg.exec_count() as f64;
            (outcome.total_merit * weight, outcome.cuts)
        },
    )
}

/// The optimal strategy loop, generic over how one `(block, M)` multiple-cut
/// identification is performed.
///
/// `run_identifier` must account its own `identifier_calls`/`cuts_considered` on the
/// passed result and return the weighted total merit plus the identified tuple. The
/// direct [`select_optimal`] and the pool-backed sweep planner
/// (`ise_core::engine::sweep`) share this loop, so the growth order and tie-breaks
/// cannot drift between the two paths.
pub(crate) fn select_optimal_core(
    program: &Program,
    max_instructions: usize,
    mut run_identifier: impl FnMut(&mut SelectionResult, usize, usize) -> (f64, Vec<IdentifiedCut>),
) -> SelectionResult {
    let block_count = program.block_count();
    let mut result = SelectionResult {
        chosen: Vec::new(),
        total_weighted_saving: 0.0,
        identifier_calls: 0,
        cuts_considered: 0,
    };
    if block_count == 0 || max_instructions == 0 {
        return result;
    }

    // best_total[b][m] = weighted total merit of the best m simultaneous cuts in block b.
    let mut best_total: Vec<Vec<f64>> = vec![vec![0.0]; block_count];
    let mut best_cuts: Vec<Vec<Vec<IdentifiedCut>>> = vec![vec![Vec::new()]; block_count];
    let mut committed: Vec<usize> = vec![0; block_count];

    // Initial improvements: one cut per block.
    for block_index in 0..block_count {
        let (total, cuts) = run_identifier(&mut result, block_index, 1);
        best_total[block_index].push(total);
        best_cuts[block_index].push(cuts);
    }

    while result.chosen.len() < max_instructions {
        // The improvement of adding the (committed+1)-th cut to each block.
        let best_block = (0..block_count).max_by(|&a, &b| {
            let ia = best_total[a][committed[a] + 1] - best_total[a][committed[a]];
            let ib = best_total[b][committed[b] + 1] - best_total[b][committed[b]];
            ia.partial_cmp(&ib).unwrap_or(std::cmp::Ordering::Equal)
        });
        let Some(block_index) = best_block else { break };
        let improvement = best_total[block_index][committed[block_index] + 1]
            - best_total[block_index][committed[block_index]];
        if improvement <= 0.0 {
            break;
        }
        committed[block_index] += 1;
        result.total_weighted_saving += improvement;
        result.chosen.push(ChosenCut {
            block_index,
            // The concrete cut attributed to this step is refined below once the final
            // per-block counts are known; store the best current solution's extra cut.
            identified: best_cuts[block_index][committed[block_index]]
                .last()
                .cloned()
                .unwrap_or_else(|| best_cuts[block_index][committed[block_index]][0].clone()),
        });

        if result.chosen.len() >= max_instructions {
            break;
        }
        // Refresh the improvement of the chosen block by solving it with one more cut.
        let next_m = committed[block_index] + 1;
        if best_total[block_index].len() <= next_m {
            let (total, cuts) = run_identifier(&mut result, block_index, next_m);
            best_total[block_index].push(total);
            best_cuts[block_index].push(cuts);
        }
    }

    // Replace the per-step attributions by the final optimal per-block solutions, which
    // is what the total saving corresponds to.
    let mut chosen = Vec::new();
    let mut total = 0.0;
    for block_index in 0..block_count {
        let m = committed[block_index];
        if m == 0 {
            continue;
        }
        total += best_total[block_index][m];
        for identified in &best_cuts[block_index][m] {
            chosen.push(ChosenCut {
                block_index,
                identified: identified.clone(),
            });
        }
    }
    result.chosen = chosen;
    result.total_weighted_saving = total;
    result
}

/// Iterative selection under a global normalised-area budget (future-work extension).
///
/// Candidates are committed greedily by weighted saving as in [`select_iterative`], but a
/// candidate whose datapath would exceed the remaining area budget is skipped and the
/// block is re-identified with a correspondingly tighter per-instruction area constraint.
#[must_use]
pub fn select_under_area(
    program: &Program,
    constraints: Constraints,
    model: &dyn CostModel,
    options: SelectionOptions,
    area_budget: f64,
) -> SelectionResult {
    let mut remaining = area_budget;
    let mut result = SelectionResult {
        chosen: Vec::new(),
        total_weighted_saving: 0.0,
        identifier_calls: 0,
        cuts_considered: 0,
    };
    let block_count = program.block_count();
    let mut excluded: Vec<CutSet> = program.blocks().iter().map(CutSet::for_dfg).collect();

    while result.chosen.len() < options.max_instructions && remaining > 0.0 {
        let constrained = constraints.with_max_area(remaining);
        let mut best: Option<(usize, IdentifiedCut, f64)> = None;
        for (block_index, excluded_nodes) in excluded.iter().enumerate().take(block_count) {
            let dfg = program.block(block_index);
            let mut search =
                SingleCutSearch::new(dfg, constrained, model).with_excluded(excluded_nodes);
            if let Some(budget) = options.exploration_budget {
                search = search.with_exploration_budget(budget);
            }
            let outcome = search.run();
            result.identifier_calls += 1;
            result.cuts_considered += outcome.stats.cuts_considered;
            if let Some(identified) = outcome.best {
                let weighted = identified.evaluation.merit * dfg.exec_count() as f64;
                if weighted > 0.0
                    && best
                        .as_ref()
                        .is_none_or(|(_, _, best_weighted)| weighted > *best_weighted)
                {
                    best = Some((block_index, identified, weighted));
                }
            }
        }
        let Some((block_index, identified, weighted)) = best else {
            break;
        };
        remaining -= identified.evaluation.area;
        excluded[block_index].union_with(&identified.cut);
        result.total_weighted_saving += weighted;
        result.chosen.push(ChosenCut {
            block_index,
            identified,
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    /// Three blocks with different profiles: a hot MAC block, a lukewarm saturation
    /// block, and a cold bitwise block.
    fn program() -> Program {
        let mut p = Program::new("toy");

        let mut b = DfgBuilder::new("hot_mac");
        b.exec_count(1000);
        let x = b.input("x");
        let y = b.input("y");
        let acc = b.input("acc");
        let m = b.mul(x, y);
        let s = b.add(m, acc);
        let n = b.mul(s, y);
        let t = b.add(n, x);
        b.output("acc", t);
        p.add_block(b.finish());

        let mut b = DfgBuilder::new("warm_sat");
        b.exec_count(100);
        let v = b.input("v");
        let lo = b.input("lo");
        let hi = b.input("hi");
        let clipped_hi = b.min(v, hi);
        let clipped = b.max(clipped_hi, lo);
        let scaled = b.shl(clipped, b.imm(1));
        b.output("o", scaled);
        p.add_block(b.finish());

        let mut b = DfgBuilder::new("cold_bits");
        b.exec_count(1);
        let a = b.input("a");
        let c = b.input("c");
        let x1 = b.xor(a, c);
        let x2 = b.and(x1, b.imm(0xff));
        b.output("o", x2);
        p.add_block(b.finish());

        p
    }

    #[test]
    fn iterative_selection_prefers_hot_blocks() {
        let p = program();
        let model = DefaultCostModel::new();
        let result = select_iterative(&p, Constraints::new(4, 2), &model, SelectionOptions::new(1));
        assert_eq!(result.len(), 1);
        assert_eq!(result.chosen[0].block_index, 0);
        assert!(result.total_weighted_saving > 0.0);
    }

    #[test]
    fn iterative_selection_does_not_overlap_cuts() {
        let p = program();
        let model = DefaultCostModel::new();
        let result = select_iterative(
            &p,
            Constraints::new(4, 2),
            &model,
            SelectionOptions::new(16),
        );
        // Cuts within the same block must be disjoint.
        for i in 0..result.chosen.len() {
            for j in i + 1..result.chosen.len() {
                if result.chosen[i].block_index == result.chosen[j].block_index {
                    assert!(!result.chosen[i]
                        .identified
                        .cut
                        .intersects(&result.chosen[j].identified.cut));
                }
            }
        }
        // Savings accumulate monotonically with the number of instructions allowed.
        let fewer = select_iterative(&p, Constraints::new(4, 2), &model, SelectionOptions::new(1));
        assert!(result.total_weighted_saving >= fewer.total_weighted_saving);
    }

    #[test]
    fn optimal_matches_or_beats_iterative_on_small_programs() {
        let p = program();
        let model = DefaultCostModel::new();
        for constraints in [Constraints::new(2, 1), Constraints::new(4, 2)] {
            for ninstr in [1, 2, 4] {
                let iterative =
                    select_iterative(&p, constraints, &model, SelectionOptions::new(ninstr));
                let optimal =
                    select_optimal(&p, constraints, &model, SelectionOptions::new(ninstr));
                assert!(
                    optimal.total_weighted_saving >= iterative.total_weighted_saving - 1e-9,
                    "optimal {} < iterative {} under {constraints}, Ninstr={ninstr}",
                    optimal.total_weighted_saving,
                    iterative.total_weighted_saving
                );
            }
        }
    }

    #[test]
    fn optimal_respects_the_identifier_call_bound() {
        let p = program();
        let model = DefaultCostModel::new();
        let ninstr = 4;
        let result = select_optimal(
            &p,
            Constraints::new(4, 2),
            &model,
            SelectionOptions::new(ninstr),
        );
        assert!(
            result.identifier_calls <= (ninstr + p.block_count() - 1) as u64,
            "used {} identifier calls",
            result.identifier_calls
        );
    }

    #[test]
    fn speedup_report_reflects_the_selection() {
        let p = program();
        let model = DefaultCostModel::new();
        let software = SoftwareLatencyModel::new();
        let result = select_iterative(&p, Constraints::new(4, 2), &model, SelectionOptions::new(8));
        let report = result.speedup_report(&p, &software);
        assert!(report.speedup > 1.0);
        assert!((report.saved_cycles - result.total_weighted_saving).abs() < 1e-9);
        assert_eq!(report.instructions.len(), result.len());
    }

    #[test]
    fn area_constrained_selection_respects_the_budget() {
        let p = program();
        let model = DefaultCostModel::new();
        let unconstrained =
            select_iterative(&p, Constraints::new(4, 2), &model, SelectionOptions::new(8));
        let budget = unconstrained.total_area() / 2.0;
        let constrained = select_under_area(
            &p,
            Constraints::new(4, 2),
            &model,
            SelectionOptions::new(8),
            budget,
        );
        assert!(constrained.total_area() <= budget + 1e-9);
        assert!(constrained.total_weighted_saving <= unconstrained.total_weighted_saving + 1e-9);
    }

    #[test]
    fn zero_instruction_budget_selects_nothing() {
        let p = program();
        let model = DefaultCostModel::new();
        let result = select_iterative(&p, Constraints::new(4, 2), &model, SelectionOptions::new(0));
        assert!(result.is_empty());
        let result = select_optimal(&p, Constraints::new(4, 2), &model, SelectionOptions::new(0));
        assert!(result.is_empty());
    }
}
