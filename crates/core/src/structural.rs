//! Structural (isomorphism-invariant) keys for basic-block dataflow graphs.
//!
//! Corpus-scale identification sees the same handful of kernel shapes over and over:
//! unrolled loop bodies, template-instantiated filters, copy-pasted blocks that differ
//! only in node numbering. The search kernel walks nodes in the *canonical*
//! consumers-first order ([`ise_ir::canon`]), so two blocks whose **canonical
//! serializations are byte-equal** walk literally the same branch-and-bound tree: the
//! same decisions in the same sequence, the same pruning outcomes, the same
//! incrementally accumulated floats. One enumeration can therefore answer both —
//! exactly, including the effort counters — after translating node identities through
//! the two canonical numberings.
//!
//! [`StructuralForm`] packages that contract:
//!
//! * [`StructuralForm::key`] — a [`StructuralKey`]: the canonical serialization bytes
//!   plus a 64-bit hash for cheap map lookup. Equality is **byte** equality; the hash
//!   is only a bucket hint, so a hash collision between structurally different blocks
//!   degrades to two map entries instead of ever mixing their pools.
//! * the node permutation between original [`NodeId`]s and canonical positions, used
//!   to translate cuts and exclusion sets in either direction
//!   ([`to_canonical`](StructuralForm::to_canonical) /
//!   [`cut_from_canonical`](StructuralForm::cut_from_canonical)).
//!
//! What the serialization covers is exactly what the kernel reads: opcode, immediate
//! values, the AFU-forbidden and output-source flags, operand structure (producers by
//! canonical position, block inputs by canonical port), in canonical walk order. Node
//! *names*, block names and execution counts are deliberately absent — they never
//! enter the search. Cost-model outputs are not serialized either: a memo keyed by a
//! [`StructuralKey`] is valid for one fixed cost model, which is how the corpus engine
//! uses it (one model per corpus run).
//!
//! [`raw_key`] serializes the block in *insertion* order instead. Two blocks of the
//! same program with equal raw keys are identical as stored (same indices, same
//! everything the search reads), so answers can be copied between them without any
//! translation — the cheap intra-program dedup the driver applies before the search.

use ise_ir::canon::{self, Certificates};
use ise_ir::{Dfg, NodeId, Operand};

use crate::cut::CutSet;

/// An isomorphism-invariant key of one basic block's search-relevant structure.
///
/// Two keys compare equal iff their canonical serializations are byte-equal, which
/// certifies that the two blocks walk identical search trees (see the module docs).
/// The precomputed hash only accelerates map lookup; it never decides equality.
#[derive(Debug, Clone, Eq)]
pub struct StructuralKey {
    hash: u64,
    bytes: Vec<u8>,
}

impl StructuralKey {
    /// The 64-bit lookup hash of the canonical serialization.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The canonical serialization itself.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Returns `true` when `other` has the same hash but different bytes — a hash
    /// collision between structurally different blocks. Purely diagnostic: equality
    /// is byte-based, so a collision costs a map bucket scan, never correctness.
    #[must_use]
    pub fn collides_with(&self, other: &StructuralKey) -> bool {
        self.hash == other.hash && self.bytes != other.bytes
    }

    /// Reconstitutes a key from its canonical serialization bytes, recomputing the
    /// lookup hash. A key built from the bytes of an existing key compares equal to
    /// it; the warm-cache snapshot loader relies on exactly that.
    #[must_use]
    pub fn from_bytes(bytes: Vec<u8>) -> StructuralKey {
        StructuralKey {
            hash: hash_bytes(&bytes),
            bytes,
        }
    }
}

impl PartialEq for StructuralKey {
    fn eq(&self, other: &Self) -> bool {
        // Hash first: a cheap reject for the overwhelmingly common unequal case.
        self.hash == other.hash && self.bytes == other.bytes
    }
}

impl std::hash::Hash for StructuralKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// The canonical form of one basic block: its [`StructuralKey`] plus the node
/// permutation between original identities and canonical positions.
#[derive(Debug, Clone)]
pub struct StructuralForm {
    key: StructuralKey,
    /// Original node index → canonical position.
    node_to_canon: Vec<u32>,
    /// Canonical position → original node id.
    canon_to_node: Vec<NodeId>,
}

impl StructuralForm {
    /// Computes the canonical form of `dfg`.
    #[must_use]
    pub fn of(dfg: &Dfg) -> StructuralForm {
        let certs = canon::certificates(dfg);
        StructuralForm::with_certificates(dfg, &certs)
    }

    /// [`StructuralForm::of`] with precomputed certificates.
    #[must_use]
    pub fn with_certificates(dfg: &Dfg, certs: &Certificates) -> StructuralForm {
        let canon_to_node = canon::canonical_consumers_first_with(dfg, certs);
        let mut node_to_canon = vec![0u32; dfg.node_count()];
        for (position, id) in canon_to_node.iter().enumerate() {
            node_to_canon[id.index()] = position as u32;
        }
        let port_order = canon::canonical_port_order(certs);
        let mut port_to_canon = vec![0u32; dfg.input_count()];
        for (position, &port) in port_order.iter().enumerate() {
            port_to_canon[port] = position as u32;
        }
        let bytes = serialize(dfg, |id| node_to_canon[id.index()], |p| port_to_canon[p]);
        StructuralForm {
            key: StructuralKey {
                hash: hash_bytes(&bytes),
                bytes,
            },
            node_to_canon,
            canon_to_node,
        }
    }

    /// The block's structural key.
    #[must_use]
    pub fn key(&self) -> &StructuralKey {
        &self.key
    }

    /// Translates a set of this block's nodes into sorted canonical positions.
    ///
    /// Cuts and exclusion sets in canonical coordinates are the common currency of the
    /// corpus pool: byte-equal keys guarantee that corresponding positions denote
    /// structurally corresponding nodes.
    #[must_use]
    pub fn to_canonical(&self, cut: &CutSet) -> Vec<u32> {
        let mut positions: Vec<u32> = cut
            .iter()
            .map(|id| self.node_to_canon[id.index()])
            .collect();
        positions.sort_unstable();
        positions
    }

    /// Translates canonical positions back into a [`CutSet`] over this block's nodes.
    ///
    /// # Panics
    ///
    /// Panics if a position is out of range for this block — which cannot happen for
    /// positions produced by [`to_canonical`](Self::to_canonical) on a block with an
    /// equal [`StructuralKey`] (equal keys imply equal node counts).
    #[must_use]
    pub fn cut_from_canonical(&self, dfg: &Dfg, positions: &[u32]) -> CutSet {
        CutSet::from_nodes(
            dfg,
            positions.iter().map(|&p| self.canon_to_node[p as usize]),
        )
    }

    /// Number of operation nodes of the block the form was computed for.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.canon_to_node.len()
    }
}

/// Serializes `dfg` in insertion order with identity numbering.
///
/// Equal raw keys identify blocks that are *identical as stored* — same node indices,
/// same operands, same flags — so identification answers transfer between them
/// verbatim, without canonicalization or translation. Used by the program driver to
/// dedup repeated blocks inside one program.
#[must_use]
pub fn raw_key(dfg: &Dfg) -> Vec<u8> {
    serialize(dfg, |id| id.index() as u32, |p| p as u32)
}

/// Serializes the search-relevant structure of `dfg`, numbering nodes and input ports
/// through the supplied maps and emitting nodes in ascending mapped order.
fn serialize(
    dfg: &Dfg,
    node_position: impl Fn(NodeId) -> u32,
    port_position: impl Fn(usize) -> u32,
) -> Vec<u8> {
    let n = dfg.node_count();
    let mut by_position: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    by_position.sort_unstable_by_key(|&id| node_position(id));

    let mut bytes = Vec::with_capacity(16 + n * 16);
    push_u32(&mut bytes, n as u32);
    push_u32(&mut bytes, dfg.input_count() as u32);
    for id in by_position {
        let node = dfg.node(id);
        let opcode = format!("{:?}", node.opcode);
        push_u32(&mut bytes, opcode.len() as u32);
        bytes.extend_from_slice(opcode.as_bytes());
        bytes
            .push(u8::from(node.is_forbidden_in_afu()) | (u8::from(dfg.is_output_source(id)) << 1));
        push_u32(&mut bytes, node.operands.len() as u32);
        for operand in &node.operands {
            match *operand {
                Operand::Node(m) => {
                    bytes.push(0);
                    push_u32(&mut bytes, node_position(m));
                }
                Operand::Input(port) => {
                    bytes.push(1);
                    push_u32(&mut bytes, port_position(port.index()));
                }
                Operand::Imm(v) => {
                    bytes.push(2);
                    bytes.extend_from_slice(&(v as u64).to_le_bytes());
                }
            }
        }
    }
    bytes
}

fn push_u32(bytes: &mut Vec<u8>, v: u32) {
    bytes.extend_from_slice(&v.to_le_bytes());
}

/// FNV-1a over the serialization — stable across platforms and toolchains (the std
/// hasher promises neither), which matters because hashes appear in committed
/// benchmark artefacts.
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::{DfgBuilder, Opcode};

    fn chain(swap: bool) -> Dfg {
        // Two independent subtrees XORed together; `swap` permutes insertion order
        // without changing the structure.
        let mut b = DfgBuilder::new(if swap { "chain_swapped" } else { "chain" });
        let x = b.input("x");
        let y = b.input("y");
        let three = b.imm(3);
        let (lhs, rhs) = if swap {
            let r = b.op(Opcode::Shl, &[y, three]);
            let l = b.op(Opcode::Mul, &[x, x]);
            (l, r)
        } else {
            let l = b.op(Opcode::Mul, &[x, x]);
            let r = b.op(Opcode::Shl, &[y, three]);
            (l, r)
        };
        let out = b.op(Opcode::Xor, &[lhs, rhs]);
        b.output("out", out);
        b.finish()
    }

    #[test]
    fn isomorphic_blocks_share_a_key() {
        let a = StructuralForm::of(&chain(false));
        let b = StructuralForm::of(&chain(true));
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key().hash(), b.key().hash());
        assert!(!a.key().collides_with(b.key()));
    }

    #[test]
    fn distinct_structures_get_distinct_keys() {
        let mut b = DfgBuilder::new("other");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        b.output("out", s);
        let other = StructuralForm::of(&b.finish());
        let base = StructuralForm::of(&chain(false));
        assert_ne!(base.key(), other.key());
    }

    #[test]
    fn immediates_and_flags_enter_the_key() {
        let build = |imm: i64| {
            let mut b = DfgBuilder::new("imm");
            let x = b.input("x");
            let k = b.imm(imm);
            let v = b.op(Opcode::Add, &[x, k]);
            b.output("o", v);
            b.finish()
        };
        assert_ne!(
            StructuralForm::of(&build(7)).key(),
            StructuralForm::of(&build(8)).key()
        );
    }

    #[test]
    fn cut_translation_round_trips() {
        let g0 = chain(false);
        let g1 = chain(true);
        let f0 = StructuralForm::of(&g0);
        let f1 = StructuralForm::of(&g1);
        assert_eq!(f0.key(), f1.key());
        // Every single-node cut of g0 maps to a node of g1 with the same opcode.
        for id in (0..g0.node_count()).map(NodeId::new) {
            let cut = CutSet::from_nodes(&g0, [id]);
            let positions = f0.to_canonical(&cut);
            let translated = f1.cut_from_canonical(&g1, &positions);
            assert_eq!(translated.len(), 1);
            let target = translated.iter().next().expect("one node");
            assert_eq!(g0.node(id).opcode, g1.node(target).opcode);
            // Round-trip within one block is the identity.
            assert_eq!(f0.cut_from_canonical(&g0, &positions), cut);
        }
    }

    #[test]
    fn raw_keys_detect_identical_blocks_only() {
        let g0 = chain(false);
        let g1 = chain(true);
        // Isomorphic but differently inserted: raw keys differ, canonical keys match.
        assert_ne!(raw_key(&g0), raw_key(&g1));
        assert_eq!(raw_key(&g0), raw_key(&chain(false)));
    }

    #[test]
    fn hash_collisions_are_detected_not_merged() {
        let a = StructuralKey {
            hash: 42,
            bytes: vec![1, 2, 3],
        };
        let b = StructuralKey {
            hash: 42,
            bytes: vec![4, 5, 6],
        };
        assert!(a.collides_with(&b));
        assert_ne!(a, b, "equal hashes must not imply equal keys");
        let mut map = std::collections::HashMap::new();
        map.insert(a.clone(), "a");
        map.insert(b.clone(), "b");
        assert_eq!(map.len(), 2, "colliding keys occupy separate entries");
        assert_eq!(map[&a], "a");
        assert_eq!(map[&b], "b");
    }
}
