//! Multiple-cut identification: the (M+1)-ary search tree of Section 6.2.
//!
//! To select several instructions from the *same* basic block optimally, the paper
//! generalises the binary search tree of the single-cut algorithm to a tree in which
//! every level makes `M + 1` branches: node `i` is either left in software or assigned to
//! one of the `M` cuts under construction (Fig. 9). Each cut must individually satisfy
//! the output-port, convexity and input-port constraints; the objective is the sum of the
//! cuts' merits. The same subtree-elimination arguments apply per cut.
//!
//! The search is exponential in `M·|V|` and is only practical for moderate blocks; the
//! optimal selection algorithm (Section 6.2 of the paper, [`crate::selection`]) invokes it
//! with growing `M`, and the iterative heuristic (Section 6.3) avoids it altogether.

use ise_hw::{cut_merit, CostModel};
use ise_ir::{topo, Dfg, NodeId, Operand};

use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};
use crate::search::{IdentifiedCut, SearchStats};

/// Result of a multiple-cut identification run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiCutOutcome {
    /// The selected cuts (only non-empty, positive-merit cuts are reported), sorted by
    /// decreasing merit.
    pub cuts: Vec<IdentifiedCut>,
    /// Sum of the merits of the reported cuts.
    pub total_merit: f64,
    /// Search statistics (cut counters aggregate all cuts of the tuple).
    pub stats: SearchStats,
}

#[derive(Debug, Clone, Copy, Default)]
struct CutAccum {
    inputs: usize,
    outputs: usize,
    software: u64,
    critical_path: f64,
    area: f64,
    nodes: usize,
}

#[derive(Debug, Clone, Copy)]
enum Source {
    Node(usize),
    Input(usize),
}

/// The exact multiple-cut identification algorithm.
pub struct MultiCutSearch<'a> {
    dfg: &'a Dfg,
    model: &'a dyn CostModel,
    constraints: Constraints,
    num_cuts: usize,
    blocked: Vec<bool>,
    order: Vec<NodeId>,
    sources: Vec<Vec<Source>>,
    is_output_source: Vec<bool>,
    software_cost: Vec<u32>,
    hardware_delay: Vec<f64>,
    area_cost: Vec<f64>,
    exploration_budget: Option<u64>,

    /// Cut assignment per node: 0 = software, 1..=M = cut index.
    assignment: Vec<u8>,
    /// Per cut, per decided node: does a downstream path reach that cut?
    reaches: Vec<Vec<bool>>,
    /// Longest in-cut downstream path per node (a node belongs to at most one cut).
    longest_path: Vec<f64>,
    /// Per cut: number of members consuming each external node.
    node_external_uses: Vec<Vec<u32>>,
    /// Per cut: number of members reading each block input.
    input_uses: Vec<Vec<u32>>,
    /// Per cut: members in insertion order.
    cut_stacks: Vec<Vec<NodeId>>,
    stats: SearchStats,
    best: Vec<IdentifiedCut>,
    best_total: f64,
}

impl<'a> MultiCutSearch<'a> {
    /// Prepares a search for up to `num_cuts` simultaneous cuts.
    ///
    /// # Panics
    ///
    /// Panics if `num_cuts` is zero or greater than 255.
    #[must_use]
    pub fn new(
        dfg: &'a Dfg,
        constraints: Constraints,
        model: &'a dyn CostModel,
        num_cuts: usize,
    ) -> Self {
        assert!(num_cuts >= 1, "at least one cut must be requested");
        assert!(
            num_cuts <= 255,
            "more than 255 simultaneous cuts is not supported"
        );
        let n = dfg.node_count();
        let mut sources = Vec::with_capacity(n);
        let mut blocked = Vec::with_capacity(n);
        let mut is_output_source = Vec::with_capacity(n);
        let mut software_cost = Vec::with_capacity(n);
        let mut hardware_delay = Vec::with_capacity(n);
        let mut area_cost = Vec::with_capacity(n);
        for (id, node) in dfg.iter_nodes() {
            let mut node_sources: Vec<Source> = Vec::new();
            for operand in &node.operands {
                let source = match *operand {
                    Operand::Node(m) => Source::Node(m.index()),
                    Operand::Input(p) => Source::Input(p.index()),
                    Operand::Imm(_) => continue,
                };
                let duplicate = node_sources.iter().any(|s| match (s, &source) {
                    (Source::Node(a), Source::Node(b)) => a == b,
                    (Source::Input(a), Source::Input(b)) => a == b,
                    _ => false,
                });
                if !duplicate {
                    node_sources.push(source);
                }
            }
            sources.push(node_sources);
            blocked.push(node.is_forbidden_in_afu());
            is_output_source.push(dfg.is_output_source(id));
            software_cost.push(model.software_cycles(node));
            hardware_delay.push(model.hardware_delay(node));
            area_cost.push(model.hardware_area(node));
        }
        MultiCutSearch {
            dfg,
            model,
            constraints,
            num_cuts,
            blocked,
            order: topo::consumers_first(dfg),
            sources,
            is_output_source,
            software_cost,
            hardware_delay,
            area_cost,
            exploration_budget: None,
            assignment: vec![0; n],
            reaches: vec![vec![false; n]; num_cuts],
            longest_path: vec![0.0; n],
            node_external_uses: vec![vec![0; n]; num_cuts],
            input_uses: vec![vec![0; dfg.input_count()]; num_cuts],
            cut_stacks: vec![Vec::new(); num_cuts],
            stats: SearchStats::default(),
            best: Vec::new(),
            best_total: 0.0,
        }
    }

    /// Additionally forbids the given nodes from entering any cut.
    #[must_use]
    pub fn with_excluded(mut self, excluded: &CutSet) -> Self {
        for id in excluded.iter() {
            if id.index() < self.blocked.len() {
                self.blocked[id.index()] = true;
            }
        }
        self
    }

    /// Limits the number of assignments considered before giving up on optimality.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: u64) -> Self {
        self.exploration_budget = Some(budget);
        self
    }

    /// Runs the search.
    #[must_use]
    pub fn run(mut self) -> MultiCutOutcome {
        if self.dfg.node_count() > 0 {
            let accums = vec![CutAccum::default(); self.num_cuts];
            self.explore(0, &accums);
        }
        let mut cuts = self.best;
        cuts.sort_by(|a, b| {
            b.evaluation
                .merit
                .partial_cmp(&a.evaluation.merit)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total_merit = cuts.iter().map(|c| c.evaluation.merit).sum();
        MultiCutOutcome {
            cuts,
            total_merit,
            stats: self.stats,
        }
    }

    fn budget_left(&self) -> bool {
        self.exploration_budget
            .is_none_or(|budget| self.stats.cuts_considered < budget)
    }

    fn explore(&mut self, level: usize, accums: &[CutAccum]) {
        if level == self.order.len() {
            return;
        }
        if !self.budget_left() {
            self.stats.budget_exhausted = true;
            return;
        }
        let node = self.order[level];
        let index = node.index();

        if !self.blocked[index] {
            // Symmetry breaking: a node may start cut k only if cuts 1..k-1 are in use.
            let used_cuts = self
                .cut_stacks
                .iter()
                .take_while(|stack| !stack.is_empty())
                .count();
            let reachable_cuts = (used_cuts + 1).min(self.num_cuts);
            for cut_index in 0..reachable_cuts {
                self.try_assign(level, node, cut_index, accums);
            }
        }

        // Software branch: update reachability towards every cut.
        let mut saved = Vec::with_capacity(self.num_cuts);
        for cut_index in 0..self.num_cuts {
            let reaches = self.dfg.consumers(node).iter().any(|c| {
                self.assignment[c.index()] == (cut_index + 1) as u8
                    || self.reaches[cut_index][c.index()]
            });
            saved.push(self.reaches[cut_index][index]);
            self.reaches[cut_index][index] = reaches;
        }
        self.explore(level + 1, accums);
        for (cut_index, &value) in saved.iter().enumerate() {
            self.reaches[cut_index][index] = value;
        }
    }

    fn try_assign(&mut self, level: usize, node: NodeId, cut_index: usize, accums: &[CutAccum]) {
        let index = node.index();
        let tag = (cut_index + 1) as u8;
        self.stats.cuts_considered += 1;

        let consumers = self.dfg.consumers(node);
        let has_external_consumer = self.is_output_source[index]
            || consumers.iter().any(|c| self.assignment[c.index()] != tag);
        let new_out = accums[cut_index].outputs + usize::from(has_external_consumer);
        let convex = !consumers
            .iter()
            .any(|c| self.assignment[c.index()] != tag && self.reaches[cut_index][c.index()]);
        let within_node_budget = self
            .constraints
            .max_nodes
            .is_none_or(|limit| accums[cut_index].nodes < limit);

        if new_out > self.constraints.max_outputs {
            self.stats.pruned_output += 1;
            return;
        }
        if !convex {
            self.stats.pruned_convexity += 1;
            return;
        }
        if !within_node_budget {
            self.stats.pruned_node_budget += 1;
            return;
        }
        self.stats.feasible_cuts += 1;

        // Incremental IN(S_k).
        let mut new_in = accums[cut_index].inputs;
        if self.node_external_uses[cut_index][index] > 0 {
            new_in -= 1;
        }
        for source in &self.sources[index] {
            match *source {
                Source::Node(m) => {
                    self.node_external_uses[cut_index][m] += 1;
                    if self.node_external_uses[cut_index][m] == 1 {
                        new_in += 1;
                    }
                }
                Source::Input(p) => {
                    self.input_uses[cut_index][p] += 1;
                    if self.input_uses[cut_index][p] == 1 {
                        new_in += 1;
                    }
                }
            }
        }
        let downstream = consumers
            .iter()
            .filter(|c| self.assignment[c.index()] == tag)
            .map(|c| self.longest_path[c.index()])
            .fold(0.0f64, f64::max);
        let path_through_node = downstream + self.hardware_delay[index];
        self.longest_path[index] = path_through_node;

        let mut new_accums = accums.to_vec();
        let accum = &mut new_accums[cut_index];
        accum.inputs = new_in;
        accum.outputs = new_out;
        accum.software += u64::from(self.software_cost[index]);
        accum.critical_path = accum.critical_path.max(path_through_node);
        accum.area += self.area_cost[index];
        accum.nodes += 1;

        self.assignment[index] = tag;
        self.cut_stacks[cut_index].push(node);

        // The node is *outside* every other cut, so record whether it forwards a path
        // towards them — exactly as the software branch does. Without this, cut `k`
        // could later absorb a producer whose path to the rest of `k` runs through this
        // node of cut `j`, leaving `k` non-convex (and the pair unschedulable).
        let mut saved_reaches = Vec::with_capacity(self.num_cuts);
        for other in 0..self.num_cuts {
            saved_reaches.push(self.reaches[other][index]);
            if other != cut_index {
                let other_tag = (other + 1) as u8;
                self.reaches[other][index] = consumers.iter().any(|c| {
                    self.assignment[c.index()] == other_tag || self.reaches[other][c.index()]
                });
            }
        }

        self.consider_candidate(&new_accums);
        self.explore(level + 1, &new_accums);

        // Undo.
        for (other, &value) in saved_reaches.iter().enumerate() {
            self.reaches[other][index] = value;
        }
        self.cut_stacks[cut_index].pop();
        self.assignment[index] = 0;
        for source in &self.sources[index] {
            match *source {
                Source::Node(m) => self.node_external_uses[cut_index][m] -= 1,
                Source::Input(p) => self.input_uses[cut_index][p] -= 1,
            }
        }
    }

    fn consider_candidate(&mut self, accums: &[CutAccum]) {
        // Every non-empty cut must satisfy the input-port and budget constraints.
        let mut total = 0.0;
        for accum in accums {
            if accum.nodes == 0 {
                continue;
            }
            if accum.inputs > self.constraints.max_inputs
                || !self.constraints.budget_ok(accum.area, accum.nodes)
            {
                return;
            }
            total += cut_merit(accum.software, accum.critical_path);
        }
        if total > self.best_total {
            self.best_total = total;
            self.stats.best_updates += 1;
            self.best = accums
                .iter()
                .enumerate()
                .filter(|(_, a)| a.nodes > 0)
                .map(|(k, accum)| {
                    let merit = cut_merit(accum.software, accum.critical_path);
                    IdentifiedCut {
                        cut: CutSet::from_nodes(self.dfg, self.cut_stacks[k].iter().copied()),
                        evaluation: CutEvaluation {
                            nodes: accum.nodes,
                            inputs: accum.inputs,
                            outputs: accum.outputs,
                            convex: true,
                            software_cycles: accum.software,
                            hardware_critical_path: accum.critical_path,
                            hardware_cycles: self.model.cycles_for_delay(accum.critical_path),
                            area: accum.area,
                            merit,
                        },
                    }
                })
                .filter(|c| c.evaluation.merit > 0.0)
                .collect();
        }
    }
}

/// Convenience wrapper: runs a [`MultiCutSearch`] with no exclusions.
#[must_use]
pub fn identify_multiple_cuts(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
    num_cuts: usize,
) -> MultiCutOutcome {
    MultiCutSearch::new(dfg, constraints, model, num_cuts).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::identify_single_cut;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    /// Two independent multiply-accumulate chains feeding two block outputs.
    fn two_chains() -> Dfg {
        let mut b = DfgBuilder::new("two_chains");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let e = b.input("e");
        let m1 = b.mul(a, c);
        let s1 = b.add(m1, d);
        let m2 = b.mul(d, e);
        let s2 = b.add(m2, a);
        b.output("o1", s1);
        b.output("o2", s2);
        b.finish()
    }

    #[test]
    fn one_cut_matches_single_cut_search() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let single = identify_single_cut(&g, constraints, &model);
        let multi = identify_multiple_cuts(&g, constraints, &model, 1);
        assert!((multi.total_merit - single.best_merit()).abs() < 1e-9);
        assert_eq!(multi.cuts.len(), 1);
    }

    #[test]
    fn two_cuts_capture_both_chains() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let one = identify_multiple_cuts(&g, constraints, &model, 1);
        let two = identify_multiple_cuts(&g, constraints, &model, 2);
        assert_eq!(two.cuts.len(), 2);
        assert!(two.total_merit > one.total_merit);
        // The two chains do not overlap.
        assert!(!two.cuts[0].cut.intersects(&two.cuts[1].cut));
        for cut in &two.cuts {
            assert!(cut.evaluation.inputs <= 2);
            assert_eq!(cut.evaluation.outputs, 1);
        }
    }

    #[test]
    fn extra_cut_slots_do_not_hurt() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let two = identify_multiple_cuts(&g, constraints, &model, 2);
        let four = identify_multiple_cuts(&g, constraints, &model, 4);
        assert!((four.total_merit - two.total_merit).abs() < 1e-9);
    }

    #[test]
    fn excluded_nodes_stay_in_software() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let excluded = CutSet::from_nodes(&g, [ise_ir::NodeId::new(0), ise_ir::NodeId::new(1)]);
        let outcome = MultiCutSearch::new(&g, constraints, &model, 2)
            .with_excluded(&excluded)
            .run();
        for cut in &outcome.cuts {
            assert!(!cut.cut.intersects(&excluded));
        }
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let outcome = identify_multiple_cuts(&g, Constraints::new(2, 1), &model, 2);
        let stats = outcome.stats;
        assert_eq!(
            stats.cuts_considered,
            stats.feasible_cuts
                + stats.pruned_output
                + stats.pruned_convexity
                + stats.pruned_node_budget
        );
    }

    /// Regression test: a cut must stay convex with respect to nodes assigned to *other*
    /// cuts, not only to nodes left in software. In `m1 → s → m2`, putting `m1` and `m2`
    /// in one cut with `s` in another creates a cyclic dependency between the two
    /// instructions and must be rejected.
    #[test]
    fn cuts_are_convex_with_respect_to_other_cuts() {
        let mut b = DfgBuilder::new("interleaved");
        let x = b.input("x");
        let y = b.input("y");
        let m1 = b.mul(x, y);
        let s = b.add(m1, x);
        let m2 = b.mul(s, y);
        b.output("o", m2);
        b.output("mid", s);
        let g = b.finish();
        let model = DefaultCostModel::new();
        for num_cuts in [2usize, 3] {
            let outcome = identify_multiple_cuts(&g, Constraints::new(4, 2), &model, num_cuts);
            for cut in &outcome.cuts {
                assert!(
                    crate::cut::is_convex(&g, &cut.cut),
                    "non-convex cut {:?} with {num_cuts} slots",
                    cut.cut
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cut")]
    fn zero_cuts_is_rejected() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let _ = MultiCutSearch::new(&g, Constraints::new(2, 1), &model, 0);
    }
}
