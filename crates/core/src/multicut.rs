//! Multiple-cut identification: the (M+1)-ary search tree of Section 6.2.
//!
//! To select several instructions from the *same* basic block optimally, the paper
//! generalises the binary search tree of the single-cut algorithm to a tree in which
//! every level makes `M + 1` branches: node `i` is either left in software or assigned to
//! one of the `M` cuts under construction (Fig. 9). Each cut must individually satisfy
//! the output-port, convexity and input-port constraints; the objective is the sum of the
//! cuts' merits. The same subtree-elimination arguments apply per cut.
//!
//! The search is exponential in `M·|V|` and is only practical for moderate blocks; the
//! optimal selection algorithm (Section 6.2 of the paper, [`crate::selection`]) invokes it
//! with growing `M`, and the iterative heuristic (Section 6.3) avoids it altogether.
//!
//! The tree walk is the shared [`SearchKernel`]; this module
//! supplies the `(M+1)`-ary *policy*, in which each of the `M` cuts under construction is
//! its own [`IncrementalCutState`] — the same per-cut bookkeeping the single-cut search
//! uses, instantiated `M` times.

use ise_hw::{cut_merit, CostModel};
use ise_ir::Dfg;

use crate::constraints::Constraints;
use crate::cut::CutSet;
use crate::kernel::{
    BlockContext, BoundCheck, IncrementalCutState, Incumbent, SearchKernel, SearchPolicy,
};
use crate::search::{IdentifiedCut, SearchStats};

/// Result of a multiple-cut identification run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MultiCutOutcome {
    /// The selected cuts (only non-empty, positive-merit cuts are reported), sorted by
    /// decreasing merit.
    pub cuts: Vec<IdentifiedCut>,
    /// Sum of the merits of the reported cuts.
    pub total_merit: f64,
    /// Search statistics (cut counters aggregate all cuts of the tuple).
    pub stats: SearchStats,
}

impl MultiCutOutcome {
    /// Assembles the outcome from a raw incumbent payload: sorts the tuple by
    /// decreasing merit (stable, so ties keep their enumeration order) and sums the
    /// merits *in sorted order*.
    ///
    /// Shared by [`MultiCutSearch::run`] and the pool-backed sweep answers
    /// ([`crate::pool`]), which are required to be byte-identical — building the
    /// outcome in one place means the two paths cannot drift apart.
    #[must_use]
    pub fn from_payload(payload: Option<Vec<IdentifiedCut>>, stats: SearchStats) -> Self {
        let mut cuts = payload.unwrap_or_default();
        cuts.sort_by(|a, b| {
            b.evaluation
                .merit
                .partial_cmp(&a.evaluation.merit)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let total_merit = cuts.iter().map(|c| c.evaluation.merit).sum();
        MultiCutOutcome {
            cuts,
            total_merit,
            stats,
        }
    }
}

/// The state of the multiple-cut policy: one [`IncrementalCutState`] per cut slot.
///
/// A node belongs to at most one cut, and with respect to every *other* cut it is just
/// an outside node — so assigning it updates one slot's membership and every other
/// slot's convexity frontier, through exactly the two mutations the single-cut policy
/// uses.
#[derive(Debug, Clone)]
struct MultiCutState {
    cuts: Vec<IncrementalCutState>,
}

/// The `(M+1)`-ary multiple-cut policy over the shared kernel.
///
/// Choices `0..assignable` assign the node to that cut slot (with symmetry breaking: a
/// node may start slot `k` only when slots `0..k` are in use); the last choice leaves
/// the node in software.
struct MultiCutPolicy<'a> {
    ctx: &'a BlockContext<'a>,
    num_cuts: usize,
    incumbent_bound: bool,
}

impl MultiCutPolicy<'_> {
    /// Number of cut slots the node at the current state may be assigned to.
    fn assignable(&self, state: &MultiCutState) -> usize {
        let used = state.cuts.iter().take_while(|cut| !cut.is_empty()).count();
        (used + 1).min(self.num_cuts)
    }

    /// The summed merit of the tuple as it stands (empty slots contribute zero): the
    /// base of the frontier bound. Each remaining software cycle can join at most one
    /// slot and raise that slot's merit by at most one per cycle, so
    /// `base + remaining_mass` bounds every objective reachable in the subtree.
    fn base_merit(&self, state: &MultiCutState) -> f64 {
        state.cuts.iter().map(IncrementalCutState::merit).sum()
    }

    /// Offers the current assignment to the incumbent: every non-empty cut must satisfy
    /// the input-port and budget constraints, and the objective is the summed merit.
    fn consider_candidate(
        &self,
        state: &MultiCutState,
        incumbent: &mut Incumbent<Vec<IdentifiedCut>>,
    ) {
        let mut total = 0.0;
        for cut in &state.cuts {
            if cut.is_empty() {
                continue;
            }
            if cut.inputs() > self.ctx.constraints.max_inputs
                || !self.ctx.constraints.budget_ok(cut.area(), cut.len())
            {
                return;
            }
            total += cut.merit();
        }
        incumbent.offer(total, || {
            state
                .cuts
                .iter()
                .filter(|cut| !cut.is_empty())
                .map(|cut| cut.identified(self.ctx))
                .filter(|c| c.evaluation.merit > 0.0)
                .collect()
        });
    }
}

impl SearchPolicy for MultiCutPolicy<'_> {
    type Payload = Vec<IdentifiedCut>;
    type State = MultiCutState;

    fn depth(&self) -> usize {
        self.ctx.depth()
    }

    fn max_arity(&self) -> usize {
        self.num_cuts + 1
    }

    fn initial_state(&self) -> MultiCutState {
        MultiCutState {
            cuts: vec![IncrementalCutState::new(self.ctx); self.num_cuts],
        }
    }

    fn choice_count(&self, state: &MultiCutState, level: usize) -> usize {
        if self.ctx.is_blocked(self.ctx.node_at(level)) {
            1 // software only
        } else {
            self.assignable(state) + 1
        }
    }

    fn apply(
        &self,
        state: &mut MultiCutState,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<Vec<IdentifiedCut>>,
    ) -> bool {
        let ctx = self.ctx;
        let node = ctx.node_at(level);
        let blocked = ctx.is_blocked(node);
        let software_choice = if blocked { 0 } else { self.assignable(state) };
        let threshold = if self.incumbent_bound {
            incumbent.score()
        } else {
            0.0
        };
        if choice == software_choice {
            // Software branch: the node is outside every cut — unless even the whole
            // remaining frontier cannot lift the tuple's summed merit past the
            // threshold, in which case the subtree is skipped outright.
            let optimistic = self.base_merit(state) + ctx.remaining_mass(level + 1) as f64;
            if optimistic <= threshold {
                stats.bound_subtree_prunes += 1;
                return false;
            }
            for cut in &mut state.cuts {
                cut.mark_outside(ctx, node);
            }
            return true;
        }
        // Assign the node to cut slot `choice` (shared probe/prune/count logic). The
        // bound replaces the slot's merit by its optimistic post-add value (current
        // critical path, since adding can only lengthen it) and grants the remaining
        // frontier mass on top.
        let slot = &state.cuts[choice];
        let optimistic = self.base_merit(state) - slot.merit()
            + cut_merit(
                slot.software() + u64::from(ctx.node_software_cost(node)),
                slot.critical_path(),
            )
            + ctx.remaining_mass(level + 1) as f64;
        let bound = BoundCheck {
            optimistic,
            threshold,
            input_floor: self.incumbent_bound.then_some(ctx.constraints.max_inputs),
        };
        if !state.cuts[choice].try_add(ctx, node, bound, stats) {
            return false;
        }
        // The node is *outside* every other cut, so record whether it forwards a path
        // towards them — exactly as the software branch does. Without this, cut `k`
        // could later absorb a producer whose path to the rest of `k` runs through this
        // node of cut `j`, leaving `k` non-convex (and the pair unschedulable).
        for (slot, cut) in state.cuts.iter_mut().enumerate() {
            if slot != choice {
                cut.mark_outside(ctx, node);
            }
        }
        self.consider_candidate(state, incumbent);
        true
    }

    fn undo(&self, state: &mut MultiCutState, _level: usize, _choice: usize) {
        // Both branch kinds leave exactly one journal entry per cut slot.
        for cut in state.cuts.iter_mut().rev() {
            cut.undo_last(self.ctx);
        }
    }

    fn requires_sequential(&self) -> bool {
        self.incumbent_bound
    }
}

/// The exact multiple-cut identification algorithm, as a configured front over the
/// shared [`SearchKernel`].
pub struct MultiCutSearch<'a> {
    ctx: BlockContext<'a>,
    num_cuts: usize,
    kernel: SearchKernel,
    incumbent_bound: bool,
}

impl<'a> MultiCutSearch<'a> {
    /// Prepares a search for up to `num_cuts` simultaneous cuts.
    ///
    /// # Panics
    ///
    /// Panics if `num_cuts` is zero or greater than 255.
    #[must_use]
    pub fn new(
        dfg: &'a Dfg,
        constraints: Constraints,
        model: &'a dyn CostModel,
        num_cuts: usize,
    ) -> Self {
        assert!(num_cuts >= 1, "at least one cut must be requested");
        assert!(
            num_cuts <= 255,
            "more than 255 simultaneous cuts is not supported"
        );
        MultiCutSearch {
            ctx: BlockContext::new(dfg, constraints, model),
            num_cuts,
            kernel: SearchKernel::sequential(),
            incumbent_bound: false,
        }
    }

    /// Sharpens the frontier bound's threshold from zero to the incumbent's summed
    /// merit (and enables the per-slot monotone block-input floor). The selected tuple
    /// stays identical; the effort counters shrink and become visit-order-dependent, so
    /// this forces the sequential walk. See
    /// [`SingleCutSearch::with_incumbent_bound`](crate::search::SingleCutSearch::with_incumbent_bound).
    #[must_use]
    pub fn with_incumbent_bound(mut self) -> Self {
        self.incumbent_bound = true;
        self
    }

    /// Additionally forbids the given nodes from entering any cut.
    #[must_use]
    pub fn with_excluded(mut self, excluded: &CutSet) -> Self {
        self.ctx.block_nodes(excluded);
        self
    }

    /// Limits the number of assignments considered before giving up on optimality.
    ///
    /// A budget is a global sequential cap, so it disables subtree parallelism.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: u64) -> Self {
        self.kernel.exploration_budget = Some(budget);
        self
    }

    /// Splits the top `levels` decision-tree levels into parallel subtree tasks; the
    /// outcome stays byte-identical to the sequential search.
    #[must_use]
    pub fn with_subtree_parallelism(mut self, levels: usize) -> Self {
        self.kernel.split_levels = levels;
        self
    }

    /// Runs the search.
    #[must_use]
    pub fn run(self) -> MultiCutOutcome {
        let policy = MultiCutPolicy {
            ctx: &self.ctx,
            num_cuts: self.num_cuts,
            incumbent_bound: self.incumbent_bound,
        };
        let (best, stats) = self.kernel.run(&policy);
        MultiCutOutcome::from_payload(best, stats)
    }
}

/// Convenience wrapper: runs a [`MultiCutSearch`] with no exclusions.
#[must_use]
pub fn identify_multiple_cuts(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
    num_cuts: usize,
) -> MultiCutOutcome {
    MultiCutSearch::new(dfg, constraints, model, num_cuts).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::identify_single_cut;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    /// Two independent multiply-accumulate chains feeding two block outputs.
    fn two_chains() -> Dfg {
        let mut b = DfgBuilder::new("two_chains");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let e = b.input("e");
        let m1 = b.mul(a, c);
        let s1 = b.add(m1, d);
        let m2 = b.mul(d, e);
        let s2 = b.add(m2, a);
        b.output("o1", s1);
        b.output("o2", s2);
        b.finish()
    }

    #[test]
    fn one_cut_matches_single_cut_search() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let single = identify_single_cut(&g, constraints, &model);
        let multi = identify_multiple_cuts(&g, constraints, &model, 1);
        assert!((multi.total_merit - single.best_merit()).abs() < 1e-9);
        assert_eq!(multi.cuts.len(), 1);
    }

    #[test]
    fn two_cuts_capture_both_chains() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let one = identify_multiple_cuts(&g, constraints, &model, 1);
        let two = identify_multiple_cuts(&g, constraints, &model, 2);
        assert_eq!(two.cuts.len(), 2);
        assert!(two.total_merit > one.total_merit);
        // The two chains do not overlap.
        assert!(!two.cuts[0].cut.intersects(&two.cuts[1].cut));
        for cut in &two.cuts {
            assert!(cut.evaluation.inputs <= 2);
            assert_eq!(cut.evaluation.outputs, 1);
        }
    }

    #[test]
    fn extra_cut_slots_do_not_hurt() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let two = identify_multiple_cuts(&g, constraints, &model, 2);
        let four = identify_multiple_cuts(&g, constraints, &model, 4);
        assert!((four.total_merit - two.total_merit).abs() < 1e-9);
    }

    #[test]
    fn excluded_nodes_stay_in_software() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let constraints = Constraints::new(2, 1);
        let excluded = CutSet::from_nodes(&g, [ise_ir::NodeId::new(0), ise_ir::NodeId::new(1)]);
        let outcome = MultiCutSearch::new(&g, constraints, &model, 2)
            .with_excluded(&excluded)
            .run();
        for cut in &outcome.cuts {
            assert!(!cut.cut.intersects(&excluded));
        }
    }

    #[test]
    fn stats_accounting_is_consistent() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let outcome = identify_multiple_cuts(&g, Constraints::new(2, 1), &model, 2);
        let stats = outcome.stats;
        assert_eq!(
            stats.cuts_considered,
            stats.feasible_cuts
                + stats.pruned_output
                + stats.pruned_convexity
                + stats.pruned_node_budget
                + stats.pruned_bound
        );
    }

    /// The opt-in incumbent-score bound returns the identical tuple while never
    /// exploring more assignments than the default zero-threshold bound.
    #[test]
    fn incumbent_bound_preserves_the_tuple() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        for num_cuts in [1usize, 2, 3] {
            for constraints in [Constraints::new(2, 1), Constraints::new(4, 2)] {
                let default = MultiCutSearch::new(&g, constraints, &model, num_cuts).run();
                let bounded = MultiCutSearch::new(&g, constraints, &model, num_cuts)
                    .with_incumbent_bound()
                    .run();
                assert_eq!(default.cuts, bounded.cuts, "{num_cuts} slots");
                assert_eq!(default.stats.best_updates, bounded.stats.best_updates);
                assert!(bounded.stats.cuts_considered <= default.stats.cuts_considered);
            }
        }
    }

    /// Regression test: a cut must stay convex with respect to nodes assigned to *other*
    /// cuts, not only to nodes left in software. In `m1 → s → m2`, putting `m1` and `m2`
    /// in one cut with `s` in another creates a cyclic dependency between the two
    /// instructions and must be rejected.
    #[test]
    fn cuts_are_convex_with_respect_to_other_cuts() {
        let mut b = DfgBuilder::new("interleaved");
        let x = b.input("x");
        let y = b.input("y");
        let m1 = b.mul(x, y);
        let s = b.add(m1, x);
        let m2 = b.mul(s, y);
        b.output("o", m2);
        b.output("mid", s);
        let g = b.finish();
        let model = DefaultCostModel::new();
        for num_cuts in [2usize, 3] {
            let outcome = identify_multiple_cuts(&g, Constraints::new(4, 2), &model, num_cuts);
            for cut in &outcome.cuts {
                assert!(
                    crate::cut::is_convex(&g, &cut.cut),
                    "non-convex cut {:?} with {num_cuts} slots",
                    cut.cut
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cut")]
    fn zero_cuts_is_rejected() {
        let g = two_chains();
        let model = DefaultCostModel::new();
        let _ = MultiCutSearch::new(&g, Constraints::new(2, 1), &model, 0);
    }
}
