//! Cuts (node subsets) of a dataflow graph and their microarchitectural properties.
//!
//! A *cut* `S ⊆ G` is any subset of the operation nodes of a basic block (Section 5 of
//! the paper). This module provides a compact bitset representation ([`CutSet`]) and the
//! reference implementations of the three quantities that the paper's constraints are
//! expressed on:
//!
//! * `IN(S)` — the number of distinct values entering the cut from outside (register-file
//!   read ports used by the special instruction);
//! * `OUT(S)` — the number of nodes of `S` whose value is used outside the cut
//!   (register-file write ports used);
//! * convexity — there must be no path between two nodes of `S` passing through a node
//!   outside `S`, otherwise no schedule exists once `S` is collapsed into one instruction.
//!
//! These functions recompute their result from scratch; the search algorithm maintains
//! the same quantities incrementally (see [`SingleCutSearch`](crate::SingleCutSearch)) and the property tests check
//! that both agree on random graphs and random cuts.

use std::fmt;

use ise_hw::{cut_merit, CostModel};
use ise_ir::{Dfg, NodeId, Operand};

/// A set of operation nodes of one basic block, stored as a bitset.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct CutSet {
    words: Vec<u64>,
    len: usize,
}

impl CutSet {
    /// Creates an empty cut for a graph with `capacity` nodes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        CutSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Creates an empty cut sized for the given graph.
    #[must_use]
    pub fn for_dfg(dfg: &Dfg) -> Self {
        Self::with_capacity(dfg.node_count())
    }

    /// Creates a cut from an iterator of node identifiers.
    #[must_use]
    pub fn from_nodes(dfg: &Dfg, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut set = Self::for_dfg(dfg);
        for node in nodes {
            set.insert(node);
        }
        set
    }

    /// Number of nodes in the cut.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the cut is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if the cut contains `node`.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        let index = node.index();
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1 << (index % 64)) != 0)
    }

    /// Inserts `node`; returns `true` if it was not already present.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let index = node.index();
        if index / 64 >= self.words.len() {
            self.words.resize(index / 64 + 1, 0);
        }
        let word = &mut self.words[index / 64];
        let mask = 1 << (index % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `node`; returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let index = node.index();
        if let Some(word) = self.words.get_mut(index / 64) {
            let mask = 1 << (index % 64);
            if *word & mask != 0 {
                *word &= !mask;
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Iterates over the node identifiers in the cut, in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| NodeId::new(w * 64 + b))
        })
    }

    /// Returns `true` if the two cuts share at least one node.
    #[must_use]
    pub fn intersects(&self, other: &CutSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Adds every node of `other` to this cut.
    pub fn union_with(&mut self, other: &CutSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
        self.len = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    /// Returns the node identifiers as a vector (useful for reporting).
    #[must_use]
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl FromIterator<NodeId> for CutSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let mut set = CutSet::default();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

impl Extend<NodeId> for CutSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl fmt::Display for CutSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{node}")?;
        }
        write!(f, "}}")
    }
}

/// The distinct external value sources feeding a cut: nodes outside the cut and block
/// input variables (immediates never count).
#[must_use]
pub fn input_sources(dfg: &Dfg, cut: &CutSet) -> Vec<Operand> {
    let mut sources = Vec::new();
    let mut seen_nodes = vec![false; dfg.node_count()];
    let mut seen_inputs = vec![false; dfg.input_count()];
    for id in cut.iter() {
        for operand in &dfg.node(id).operands {
            match *operand {
                Operand::Node(n) if !cut.contains(n) && !seen_nodes[n.index()] => {
                    seen_nodes[n.index()] = true;
                    sources.push(Operand::Node(n));
                }
                Operand::Input(p) if !seen_inputs[p.index()] => {
                    seen_inputs[p.index()] = true;
                    sources.push(Operand::Input(p));
                }
                _ => {}
            }
        }
    }
    sources
}

/// `IN(S)`: the number of register-file read ports needed by the cut.
#[must_use]
pub fn input_count(dfg: &Dfg, cut: &CutSet) -> usize {
    input_sources(dfg, cut).len()
}

/// The nodes of the cut whose value is consumed outside the cut (by another operation of
/// the block or by a block output variable).
#[must_use]
pub fn output_nodes(dfg: &Dfg, cut: &CutSet) -> Vec<NodeId> {
    cut.iter()
        .filter(|&id| {
            dfg.node(id).opcode.has_result()
                && (dfg.is_output_source(id) || dfg.consumers(id).iter().any(|c| !cut.contains(*c)))
        })
        .collect()
}

/// `OUT(S)`: the number of register-file write ports needed by the cut.
#[must_use]
pub fn output_count(dfg: &Dfg, cut: &CutSet) -> usize {
    output_nodes(dfg, cut).len()
}

/// Returns `true` if the cut is convex: no path from a node of `S` to another node of `S`
/// passes through a node outside `S`.
#[must_use]
pub fn is_convex(dfg: &Dfg, cut: &CutSet) -> bool {
    // Depth-first search downstream from each external consumer of a cut node, moving
    // only through nodes outside the cut; reaching the cut again disproves convexity.
    let mut visited = vec![false; dfg.node_count()];
    let mut stack: Vec<NodeId> = Vec::new();
    for id in cut.iter() {
        for &consumer in dfg.consumers(id) {
            if !cut.contains(consumer) && !visited[consumer.index()] {
                visited[consumer.index()] = true;
                stack.push(consumer);
            }
        }
    }
    while let Some(id) = stack.pop() {
        for &consumer in dfg.consumers(id) {
            if cut.contains(consumer) {
                return false;
            }
            if !visited[consumer.index()] {
                visited[consumer.index()] = true;
                stack.push(consumer);
            }
        }
    }
    true
}

/// Returns `true` if the cut stays convex once each of `groups` is contracted into a
/// single vertex.
///
/// Selecting several instructions in one block later collapses each chosen cut into one
/// AFU node, in selection order. Collapsing a cut `A` merges its nodes, so a later cut
/// `B` that has both an ancestor *and* a descendant inside `A` — two unrelated paths in
/// the original graph — gains a `B → A → B` path in the rewritten graph and stops being
/// convex, even though `A` and `B` are disjoint and each convex on its own. The
/// selection drivers therefore validate every new candidate against the cuts already
/// committed in its block with this check: a depth-first search downstream from the
/// cut's external consumers that, on entering any node of a contracted group, may leave
/// from *every* node of that group. Reaching the cut again disproves convexity in the
/// contracted graph.
///
/// `groups` must be disjoint from `cut` (the drivers guarantee this: committed nodes
/// are excluded from later searches).
#[must_use]
pub fn is_convex_under_contractions(dfg: &Dfg, cut: &CutSet, groups: &[CutSet]) -> bool {
    if groups.is_empty() {
        return is_convex(dfg, cut);
    }
    let mut group_of = vec![usize::MAX; dfg.node_count()];
    for (g, group) in groups.iter().enumerate() {
        for id in group.iter() {
            debug_assert!(!cut.contains(id), "groups must be disjoint from the cut");
            group_of[id.index()] = g;
        }
    }
    let mut visited = vec![false; dfg.node_count()];
    let mut expanded = vec![false; groups.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    let enqueue = |id: NodeId, visited: &mut Vec<bool>, stack: &mut Vec<NodeId>| {
        if !visited[id.index()] {
            visited[id.index()] = true;
            stack.push(id);
        }
    };
    for id in cut.iter() {
        for &consumer in dfg.consumers(id) {
            if !cut.contains(consumer) {
                enqueue(consumer, &mut visited, &mut stack);
            }
        }
    }
    while let Some(id) = stack.pop() {
        // Entering a contracted group means every member's consumers become reachable.
        let g = group_of[id.index()];
        if g != usize::MAX && !expanded[g] {
            expanded[g] = true;
            for member in groups[g].iter() {
                enqueue(member, &mut visited, &mut stack);
            }
        }
        for &consumer in dfg.consumers(id) {
            if cut.contains(consumer) {
                return false;
            }
            enqueue(consumer, &mut visited, &mut stack);
        }
    }
    true
}

/// The set of nodes reachable downstream from any node of `groups` (excluding the
/// group nodes themselves unless they are reachable from another group node).
///
/// Used by the iterative selection driver to resolve interlock rejections: a candidate
/// that straddles a committed cut is split along this frontier, and only its downstream
/// side is excluded before the block is re-identified — keeping the upstream side
/// available to later candidates.
#[must_use]
pub fn downstream_of(dfg: &Dfg, groups: &[CutSet]) -> CutSet {
    let mut visited = vec![false; dfg.node_count()];
    let mut stack: Vec<NodeId> = Vec::new();
    for group in groups {
        for id in group.iter() {
            for &consumer in dfg.consumers(id) {
                if !visited[consumer.index()] {
                    visited[consumer.index()] = true;
                    stack.push(consumer);
                }
            }
        }
    }
    let mut result = CutSet::for_dfg(dfg);
    while let Some(id) = stack.pop() {
        result.insert(id);
        for &consumer in dfg.consumers(id) {
            if !visited[consumer.index()] {
                visited[consumer.index()] = true;
                stack.push(consumer);
            }
        }
    }
    result
}

/// Returns `true` if every node of the cut may legally be implemented inside an AFU
/// (i.e. the cut contains no memory operation and no already-collapsed AFU node).
#[must_use]
pub fn is_afu_legal(dfg: &Dfg, cut: &CutSet) -> bool {
    cut.iter().all(|id| !dfg.node(id).is_forbidden_in_afu())
}

/// Full evaluation of one cut under a cost model.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CutEvaluation {
    /// Number of operation nodes in the cut.
    pub nodes: usize,
    /// `IN(S)` — register-file read ports used.
    pub inputs: usize,
    /// `OUT(S)` — register-file write ports used.
    pub outputs: usize,
    /// Whether the cut is convex.
    pub convex: bool,
    /// Accumulated software cycles of the cut's operations.
    pub software_cycles: u64,
    /// Critical-path delay of the cut's datapath, in normalised MAC delays.
    pub hardware_critical_path: f64,
    /// Latency of the cut as a single instruction, in cycles.
    pub hardware_cycles: u32,
    /// Normalised datapath area.
    pub area: f64,
    /// Merit `M(S)` — estimated cycles saved per execution.
    pub merit: f64,
}

/// Evaluates a cut from scratch (non-incrementally) under the given cost model.
#[must_use]
pub fn evaluate(dfg: &Dfg, cut: &CutSet, model: &dyn CostModel) -> CutEvaluation {
    let software_cycles: u64 = cut
        .iter()
        .map(|id| u64::from(model.software_cycles(dfg.node(id))))
        .sum();
    // Critical path restricted to the cut.
    let mut finish = vec![0.0f64; dfg.node_count()];
    let mut critical_path = 0.0f64;
    for (id, node) in dfg.iter_nodes() {
        if !cut.contains(id) {
            continue;
        }
        let ready = node
            .node_operands()
            .filter(|p| cut.contains(*p))
            .map(|p| finish[p.index()])
            .fold(0.0f64, f64::max);
        let done = ready + model.hardware_delay(node);
        finish[id.index()] = done;
        critical_path = critical_path.max(done);
    }
    let area: f64 = cut.iter().map(|id| model.hardware_area(dfg.node(id))).sum();
    let hardware_cycles = model.cycles_for_delay(critical_path);
    CutEvaluation {
        nodes: cut.len(),
        inputs: input_count(dfg, cut),
        outputs: output_count(dfg, cut),
        convex: is_convex(dfg, cut),
        software_cycles,
        hardware_critical_path: critical_path,
        hardware_cycles,
        area,
        merit: cut_merit(software_cycles, critical_path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    /// The example graph of Fig. 4: node 3 (`*`) feeds nodes 1 (`>>`) and 2 (`+`), which
    /// both feed node 0 (`+`). Node indices here are in def-before-use order (the
    /// opposite of the paper's numbering): 0 = `*`, 1 = `>>`, 2 = `+`, 3 = final `+`.
    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    #[test]
    fn bitset_basics() {
        let g = fig4();
        let mut cut = CutSet::for_dfg(&g);
        assert!(cut.is_empty());
        assert!(cut.insert(NodeId::new(1)));
        assert!(!cut.insert(NodeId::new(1)));
        assert!(cut.insert(NodeId::new(3)));
        assert_eq!(cut.len(), 2);
        assert!(cut.contains(NodeId::new(3)));
        assert!(!cut.contains(NodeId::new(0)));
        assert_eq!(cut.to_vec(), vec![NodeId::new(1), NodeId::new(3)]);
        assert!(cut.remove(NodeId::new(1)));
        assert!(!cut.remove(NodeId::new(1)));
        assert_eq!(cut.len(), 1);
        assert_eq!(cut.to_string(), "{%3}");
    }

    #[test]
    fn union_and_intersection() {
        let g = fig4();
        let a = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(1)]);
        let b = CutSet::from_nodes(&g, [NodeId::new(1), NodeId::new(2)]);
        let c = CutSet::from_nodes(&g, [NodeId::new(3)]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(NodeId::new(2)));
    }

    #[test]
    fn in_out_counts_match_hand_computation() {
        let g = fig4();
        // Cut = {mul, shr}: inputs are x, y (mul) — shr's other operand is an immediate;
        // outputs are mul (feeds add1 outside) and shr (feeds add0 outside).
        let cut = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(1)]);
        assert_eq!(input_count(&g, &cut), 2);
        assert_eq!(output_count(&g, &cut), 2);
        // Whole graph: inputs x, y; single output node (the final add).
        let all = CutSet::from_nodes(&g, g.node_ids());
        assert_eq!(input_count(&g, &all), 2);
        assert_eq!(output_count(&g, &all), 1);
    }

    #[test]
    fn convexity_matches_fig4_example() {
        let g = fig4();
        // {mul, final add} is non-convex: the path through shr (or add1) leaves the cut.
        let bad = CutSet::from_nodes(&g, [NodeId::new(0), NodeId::new(3)]);
        assert!(!is_convex(&g, &bad));
        // Adding both intermediate nodes restores convexity.
        let good = CutSet::from_nodes(&g, g.node_ids());
        assert!(is_convex(&g, &good));
        // Any single node is trivially convex.
        for id in g.node_ids() {
            assert!(is_convex(&g, &CutSet::from_nodes(&g, [id])));
        }
    }

    #[test]
    fn legality_excludes_memory_ops() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let v = b.load(base);
        let w = b.add(v, b.imm(1));
        b.output("o", w);
        let g = b.finish();
        let with_load = CutSet::from_nodes(&g, g.node_ids());
        assert!(!is_afu_legal(&g, &with_load));
        let only_add = CutSet::from_nodes(&g, [NodeId::new(1)]);
        assert!(is_afu_legal(&g, &only_add));
    }

    #[test]
    fn evaluation_combines_software_and_hardware_costs() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let all = CutSet::from_nodes(&g, g.node_ids());
        let eval = evaluate(&g, &all, &model);
        assert_eq!(eval.nodes, 4);
        assert_eq!(eval.inputs, 2);
        assert_eq!(eval.outputs, 1);
        assert!(eval.convex);
        // software: mul(2) + shr(1) + add(1) + add(1) = 5
        assert_eq!(eval.software_cycles, 5);
        // hardware: mul -> add1 -> add0 = 0.87 + 0.30 + 0.30 = 1.47 -> 2 cycles
        assert!((eval.hardware_critical_path - 1.47).abs() < 1e-9);
        assert_eq!(eval.hardware_cycles, 2);
        assert_eq!(eval.merit, 3.0);
        assert!(eval.area > 0.0);
    }

    #[test]
    fn empty_cut_evaluation_is_neutral() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let eval = evaluate(&g, &CutSet::for_dfg(&g), &model);
        assert_eq!(eval.merit, 0.0);
        assert_eq!(eval.inputs, 0);
        assert_eq!(eval.outputs, 0);
        assert!(eval.convex);
    }
}
