//! Fixed-capacity `u64`-word bitsets for the hot search state.
//!
//! The branch-and-bound kernel packs every per-node boolean of its incremental
//! bookkeeping — cut membership, the convexity reach frontier, per-node
//! consumer/ancestor/descendant masks and the `IN(S)` source unions — into dense
//! [`BitSet`]s, so that the per-decision feasibility checks become a handful of
//! AND-with-mask word operations and the port counts become popcounts
//! ([`count`](BitSet::count), [`count_and_not`](BitSet::count_and_not)) instead of
//! per-edge bookkeeping.
//!
//! A [`BitSet`] is deliberately *fixed-capacity*: it is sized once for the block under
//! search and never grows, so two sets of the same capacity always have the same word
//! count and the word-wise operations need no bounds juggling. (The serialisable
//! [`CutSet`](crate::cut::CutSet) remains the growable, wire-format-stable set used in
//! results; `BitSet` is the in-memory working representation of the kernel.)

/// A fixed-capacity set of `usize` indices packed into `u64` words.
///
/// All binary operations ([`intersects`](Self::intersects),
/// [`union_with`](Self::union_with), …) expect the operands to have been created with
/// the same capacity; in debug builds this is asserted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
        }
    }

    /// Number of `u64` words backing the set.
    #[must_use]
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if no bit is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if `index` is in the set.
    #[must_use]
    pub fn get(&self, index: usize) -> bool {
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Inserts `index`.
    pub fn set(&mut self, index: usize) {
        self.words[index / 64] |= 1 << (index % 64);
    }

    /// Removes `index`.
    pub fn clear(&mut self, index: usize) {
        self.words[index / 64] &= !(1 << (index % 64));
    }

    /// Removes every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Number of set bits (one `popcnt` per word).
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|self ∩ other|` without materialising the intersection.
    #[must_use]
    pub fn count_and(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` — the popcount of `self AND NOT other`. This is how the kernel
    /// counts `IN(S)`: set bits of the source union not covered by the cut.
    #[must_use]
    pub fn count_and_not(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without materialising the union.
    #[must_use]
    pub fn count_or(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if the two sets share at least one bit (a short-circuiting
    /// AND-with-mask test).
    #[must_use]
    pub fn intersects(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if `self` holds a bit that `other` does not (a short-circuiting
    /// AND-NOT-with-mask test — e.g. "does this node have a consumer outside the cut").
    #[must_use]
    pub fn intersects_complement(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & !b != 0)
    }

    /// Adds every bit of `other` to `self`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Adds every bit of `other`, journalling each overwritten word as
    /// `(word_index, previous_value)` into `spill` and returning the number of entries
    /// pushed. Popping the entries in reverse order through
    /// [`restore_word`](Self::restore_word) undoes the union exactly — this is the
    /// `O(n/64)` journalled union the incremental `IN(S)` bookkeeping is built on.
    pub fn union_with_spill(&mut self, other: &BitSet, spill: &mut Vec<(u32, u64)>) -> u32 {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut spilled = 0;
        for (index, (a, b)) in self.words.iter_mut().zip(&other.words).enumerate() {
            let merged = *a | b;
            if merged != *a {
                spill.push((index as u32, *a));
                *a = merged;
                spilled += 1;
            }
        }
        spilled
    }

    /// Restores one word previously journalled by
    /// [`union_with_spill`](Self::union_with_spill).
    pub fn restore_word(&mut self, index: u32, value: u64) {
        self.words[index as usize] = value;
    }

    /// Iterates the set bits in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            std::iter::successors((bits != 0).then_some(bits), |b| {
                let rest = b & (b - 1);
                (rest != 0).then_some(rest)
            })
            .map(move |b| w * 64 + b.trailing_zeros() as usize)
        })
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects indices into a set sized exactly for the largest one.
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let indices: Vec<usize> = iter.into_iter().collect();
        let capacity = indices.iter().map(|&i| i + 1).max().unwrap_or(0);
        let mut set = BitSet::with_capacity(capacity);
        for index in indices {
            set.set(index);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_and_counts() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.is_empty());
        assert_eq!(s.word_count(), 3);
        for i in [0, 63, 64, 129] {
            s.set(i);
            assert!(s.get(i));
        }
        assert_eq!(s.count(), 4);
        s.clear(64);
        assert!(!s.get(64));
        assert_eq!(s.count(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 129]);
        s.clear_all();
        assert!(s.is_empty());
    }

    #[test]
    fn masked_counts_and_intersections() {
        let a: BitSet = [1usize, 5, 64, 70].into_iter().collect();
        let mut b = BitSet::with_capacity(71);
        b.set(5);
        b.set(70);
        b.set(2);
        assert!(a.intersects(&b));
        assert_eq!(a.count_and(&b), 2);
        assert_eq!(a.count_and_not(&b), 2); // 1 and 64
        assert_eq!(a.count_or(&b), 5);
        assert!(a.intersects_complement(&b)); // 1 ∈ a \ b
        assert!(b.intersects_complement(&a)); // 2 ∈ b \ a
        let sub: BitSet = {
            let mut s = BitSet::with_capacity(71);
            s.set(5);
            s
        };
        assert!(!sub.intersects_complement(&a));
    }

    #[test]
    fn union_with_spill_round_trips() {
        let mut base = BitSet::with_capacity(200);
        base.set(3);
        base.set(150);
        let before = base.clone();
        let mut add = BitSet::with_capacity(200);
        add.set(3); // already present: word unchanged only if no other bit in word changes
        add.set(7);
        add.set(199);
        let mut spill = Vec::new();
        let spilled = base.union_with_spill(&add, &mut spill);
        assert_eq!(spilled as usize, spill.len());
        assert!(base.get(7) && base.get(199) && base.get(3) && base.get(150));
        // A second union with the same mask changes nothing and spills nothing.
        let again = base.union_with_spill(&add, &mut spill);
        assert_eq!(again, 0);
        for (index, value) in spill.drain(..).rev() {
            base.restore_word(index, value);
        }
        assert_eq!(base, before);
    }

    #[test]
    fn from_iterator_sizes_to_the_largest_index() {
        let s: BitSet = [9usize, 2].into_iter().collect();
        assert_eq!(s.word_count(), 1);
        assert!(s.get(9) && s.get(2) && !s.get(3));
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert!(empty.is_empty());
        assert_eq!(empty.word_count(), 0);
    }
}
