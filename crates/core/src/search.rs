//! Single-cut identification: the exact branch-and-bound search of Section 6.1.
//!
//! The algorithm explores the `2^|V|` possible cuts of a basic block with a binary
//! search tree built over a topological ordering in which every node appears *after*
//! its consumers. At each tree node it checks the register-file output-port constraint
//! and the convexity constraint; when either fails, the whole subtree can be
//! eliminated, because nodes added later in the ordering are always (transitive)
//! producers of the already-decided nodes and can therefore neither remove an external
//! consumer nor re-establish convexity. The input-port constraint cannot be used for
//! pruning (adding a producer may *reduce* the number of inputs) and is only checked when
//! a candidate is evaluated, exactly as in the paper.
//!
//! All bookkeeping — `IN(S)`, `OUT(S)`, convexity reachability, software cost, hardware
//! critical path and area — is maintained incrementally in `O(fan-in + fan-out)` per
//! step by a [`IncrementalCutState`], giving the `O(1)`-per-step behaviour (for
//! bounded-degree graphs) claimed in the paper. The tree walk itself lives in the shared
//! [`SearchKernel`](crate::kernel::SearchKernel): this module only supplies the
//! single-cut *policy* — a binary tree (include the node / leave it in software) with
//! the paper's pruning rules — and the same kernel also drives the multiple-cut search
//! and the exhaustive oracle, sequentially or with intra-block subtree parallelism.

use ise_hw::CostModel;
use ise_ir::Dfg;

use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};
use crate::kernel::{
    BlockContext, BoundCheck, IncrementalCutState, Incumbent, SearchKernel, SearchPolicy,
};

/// Counters describing one run of the identification algorithm.
///
/// `cuts_considered` is the quantity plotted against graph size in Fig. 8 of the paper:
/// the number of distinct non-empty cuts for which the feasibility checks were evaluated
/// (the pruned subtrees below failing cuts are never counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Distinct non-empty cuts whose feasibility checks were evaluated.
    pub cuts_considered: u64,
    /// Cuts that passed both the output-port and the convexity check.
    pub feasible_cuts: u64,
    /// Cuts rejected (with their subtree) by the output-port check.
    pub pruned_output: u64,
    /// Cuts rejected (with their subtree) by the convexity check.
    pub pruned_convexity: u64,
    /// Cuts rejected (with their subtree) by the optional node-count budget.
    pub pruned_node_budget: u64,
    /// Cuts rejected (with their subtree) by the frontier-aware merit bound — the new
    /// category of the word-packed kernel, still inside the `cuts_considered` identity
    /// (`considered = feasible + output + convexity + node_budget + bound`). In the
    /// opt-in incumbent-bound mode this also counts the monotone block-input floor.
    pub pruned_bound: u64,
    /// Software branches whose whole subtree the frontier bound skipped *before* any
    /// cut was attempted; not part of the `cuts_considered` identity, since no cut was
    /// counted.
    pub bound_subtree_prunes: u64,
    /// Number of times the incumbent best cut was improved.
    pub best_updates: u64,
    /// True when the optional exploration budget stopped the search early; the result is
    /// then a lower bound rather than the proven optimum.
    pub budget_exhausted: bool,
}

/// A cut returned by an identification algorithm, together with its evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdentifiedCut {
    /// The selected nodes.
    pub cut: CutSet,
    /// The cut's microarchitectural and cost evaluation.
    pub evaluation: CutEvaluation,
}

/// Result of one identification run, shared by every [`crate::engine::Identifier`].
///
/// Algorithms that return a single best cut (the exact single-cut search, the exhaustive
/// oracle) report it both in `best` and as the only element of `candidates`; algorithms
/// that enumerate several disjoint candidates per block (the multiple-cut search, the
/// Clubbing/MaxMISO/single-node baselines) report them all in `candidates`, with `best`
/// set to the maximal-merit one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchOutcome {
    /// The maximal-merit cut satisfying all constraints, if any cut with positive merit
    /// exists.
    pub best: Option<IdentifiedCut>,
    /// All candidate cuts reported by the algorithm, sorted by decreasing merit.
    /// Candidates from one invocation are pairwise disjoint.
    pub candidates: Vec<IdentifiedCut>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// An outcome holding at most one cut.
    #[must_use]
    pub fn from_best(best: Option<IdentifiedCut>, stats: SearchStats) -> Self {
        SearchOutcome {
            candidates: best.iter().cloned().collect(),
            best,
            stats,
        }
    }

    /// An outcome holding a set of disjoint candidates; `best` becomes the maximal-merit
    /// one and the candidates are sorted by decreasing merit (ties keep their original
    /// relative order, so the result is deterministic).
    #[must_use]
    pub fn from_candidates(mut candidates: Vec<IdentifiedCut>, stats: SearchStats) -> Self {
        candidates.sort_by(|a, b| {
            b.evaluation
                .merit
                .partial_cmp(&a.evaluation.merit)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        SearchOutcome {
            best: candidates.first().cloned(),
            candidates,
            stats,
        }
    }

    /// Merit of the best cut, or zero when no profitable cut was found.
    #[must_use]
    pub fn best_merit(&self) -> f64 {
        self.best.as_ref().map_or(0.0, |c| c.evaluation.merit)
    }

    /// Sum of the merits of all reported candidates.
    #[must_use]
    pub fn total_merit(&self) -> f64 {
        self.candidates.iter().map(|c| c.evaluation.merit).sum()
    }
}

/// The single-cut policy over the shared kernel: a binary decision per node.
///
/// Choice `0` tries to add the node to the cut (the 1-branch of Fig. 6, with the
/// output-port / convexity / node-budget / frontier-bound pruning); choice `1` leaves
/// it in software, first checking whether the remaining frontier can still produce a
/// winning cut at all.
///
/// `incumbent_bound` selects the bound threshold: `false` (the default) uses zero —
/// pruned subtrees provably contain only non-positive-merit cuts, so the selection,
/// `best_updates` *and* the parallel-walk byte-identity are preserved; `true` uses the
/// incumbent's score, which prunes much harder but reads visit-order-dependent state
/// and therefore forces the sequential walk (and adds the monotone block-input floor).
struct SingleCutPolicy<'a> {
    ctx: &'a BlockContext<'a>,
    incumbent_bound: bool,
}

impl SearchPolicy for SingleCutPolicy<'_> {
    type Payload = IdentifiedCut;
    type State = IncrementalCutState;

    fn depth(&self) -> usize {
        self.ctx.depth()
    }

    fn max_arity(&self) -> usize {
        2
    }

    fn initial_state(&self) -> IncrementalCutState {
        IncrementalCutState::new(self.ctx)
    }

    fn choice_count(&self, _state: &IncrementalCutState, _level: usize) -> usize {
        2
    }

    fn apply(
        &self,
        state: &mut IncrementalCutState,
        level: usize,
        choice: usize,
        stats: &mut SearchStats,
        incumbent: &mut Incumbent<IdentifiedCut>,
    ) -> bool {
        let ctx = self.ctx;
        let node = ctx.node_at(level);
        if choice == 1 {
            // 0-branch: leave `node` out of the cut — unless even the optimistic merit
            // of the remaining frontier cannot beat the threshold, in which case the
            // whole subtree is skipped before any cut is attempted. The default zero
            // threshold is decided in the integer domain (same outcome, no float work).
            let dead = if self.incumbent_bound {
                state.optimistic_without(ctx, level) <= incumbent.score()
            } else {
                state.frontier_dead_without(ctx, level)
            };
            if dead {
                stats.bound_subtree_prunes += 1;
                return false;
            }
            state.mark_outside(ctx, node);
            return true;
        }
        // 1-branch: try adding `node` to the cut (shared probe/prune/count logic).
        if ctx.is_blocked(node) {
            return false;
        }
        let bound = if self.incumbent_bound {
            BoundCheck {
                optimistic: state.optimistic_with(ctx, level),
                threshold: incumbent.score(),
                input_floor: Some(ctx.constraints.max_inputs),
            }
        } else {
            BoundCheck::frontier(state.frontier_dead_with(ctx, level))
        };
        if !state.try_add(ctx, node, bound, stats) {
            return false;
        }
        // The input-port constraint cannot prune (adding a producer may reduce IN(S)),
        // so it is only checked when the candidate is evaluated.
        if state.inputs() <= ctx.constraints.max_inputs
            && ctx.constraints.budget_ok(state.area(), state.len())
        {
            incumbent.offer(state.merit(), || state.identified(ctx));
        }
        true
    }

    fn undo(&self, state: &mut IncrementalCutState, _level: usize, _choice: usize) {
        state.undo_last(self.ctx);
    }

    fn requires_sequential(&self) -> bool {
        self.incumbent_bound
    }
}

/// The exact single-cut identification algorithm (Fig. 6 of the paper), as a
/// configured front over the shared [`SearchKernel`].
pub struct SingleCutSearch<'a> {
    ctx: BlockContext<'a>,
    kernel: SearchKernel,
    incumbent_bound: bool,
}

impl<'a> SingleCutSearch<'a> {
    /// Prepares a search over `dfg` under `constraints`, using `model` for the merit
    /// function.
    #[must_use]
    pub fn new(dfg: &'a Dfg, constraints: Constraints, model: &'a dyn CostModel) -> Self {
        SingleCutSearch {
            ctx: BlockContext::new(dfg, constraints, model),
            kernel: SearchKernel::sequential(),
            incumbent_bound: false,
        }
    }

    /// Sharpens the frontier bound's threshold from zero to the incumbent's score and
    /// enables the monotone block-input floor.
    ///
    /// The selection (and even `best_updates`) provably stays identical — a pruned
    /// subtree only holds cuts that cannot strictly beat the incumbent — but the effort
    /// counters shrink and become visit-order-dependent, so this mode forces the
    /// sequential walk and is kept out of the deterministic engine/pool paths; it is
    /// the fastest way to answer "best single cut" when reproducible effort accounting
    /// and parallelism don't matter.
    #[must_use]
    pub fn with_incumbent_bound(mut self) -> Self {
        self.incumbent_bound = true;
        self
    }

    /// Additionally forbids the given nodes from entering any cut.
    ///
    /// The iterative selection algorithm (Section 6.3) uses this to exclude nodes already
    /// absorbed by previously chosen instructions.
    #[must_use]
    pub fn with_excluded(mut self, excluded: &CutSet) -> Self {
        self.ctx.block_nodes(excluded);
        self
    }

    /// Limits the number of cuts considered; when the budget is exhausted the incumbent
    /// best cut is returned and [`SearchStats::budget_exhausted`] is set.
    ///
    /// A budget is a global sequential cap, so it disables subtree parallelism.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: u64) -> Self {
        self.kernel.exploration_budget = Some(budget);
        self
    }

    /// Splits the top `levels` decision-tree levels into parallel subtree tasks.
    ///
    /// The outcome — cuts and [`SearchStats`] alike — is byte-identical to the
    /// sequential search; only wall-clock time changes. `0` (the default) keeps the
    /// search sequential.
    #[must_use]
    pub fn with_subtree_parallelism(mut self, levels: usize) -> Self {
        self.kernel.split_levels = levels;
        self
    }

    /// Runs the search and returns the best cut found together with statistics.
    #[must_use]
    pub fn run(self) -> SearchOutcome {
        let policy = SingleCutPolicy {
            ctx: &self.ctx,
            incumbent_bound: self.incumbent_bound,
        };
        let (best, stats) = self.kernel.run(&policy);
        SearchOutcome::from_best(best, stats)
    }
}

/// Convenience wrapper: runs a [`SingleCutSearch`] with no exclusions.
#[must_use]
pub fn identify_single_cut(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
) -> SearchOutcome {
    SingleCutSearch::new(dfg, constraints, model).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    #[test]
    fn finds_the_whole_graph_when_ports_allow_it() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(2, 1), &model);
        let best = outcome.best.expect("a profitable cut exists");
        assert_eq!(best.cut.len(), 4);
        assert_eq!(best.evaluation.inputs, 2);
        assert_eq!(best.evaluation.outputs, 1);
        assert_eq!(best.evaluation.merit, 3.0);
        assert!(best.evaluation.convex);
    }

    #[test]
    fn incremental_evaluation_matches_reference_evaluation() {
        let g = fig4();
        let model = DefaultCostModel::new();
        for constraints in Constraints::paper_sweep() {
            let outcome = identify_single_cut(&g, constraints, &model);
            if let Some(best) = outcome.best {
                let reference = cut::evaluate(&g, &best.cut, &model);
                assert_eq!(best.evaluation.inputs, reference.inputs);
                assert_eq!(best.evaluation.outputs, reference.outputs);
                assert_eq!(best.evaluation.software_cycles, reference.software_cycles);
                assert!(
                    (best.evaluation.hardware_critical_path - reference.hardware_critical_path)
                        .abs()
                        < 1e-9
                );
                assert_eq!(best.evaluation.merit, reference.merit);
            }
        }
    }

    #[test]
    fn search_tree_is_pruned() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(8, 1), &model);
        let stats = outcome.stats;
        // 15 non-empty cuts exist; pruning must remove at least one of them.
        assert!(stats.cuts_considered < 15);
        assert_eq!(
            stats.cuts_considered,
            stats.feasible_cuts
                + stats.pruned_output
                + stats.pruned_convexity
                + stats.pruned_node_budget
                + stats.pruned_bound
        );
        assert!(stats.pruned_output > 0);
        assert!(!stats.budget_exhausted);
    }

    /// The opt-in incumbent-score bound keeps the selection (and `best_updates`)
    /// identical while never exploring more than the default zero-threshold bound.
    #[test]
    fn incumbent_bound_preserves_the_selection() {
        let graphs = [fig4(), {
            let mut b = DfgBuilder::new("wide");
            let x = b.input("x");
            let y = b.input("y");
            for i in 0..6 {
                let s = b.add(x, b.imm(i));
                let t = b.mul(s, y);
                b.output(format!("o{i}"), t);
            }
            b.finish()
        }];
        let model = DefaultCostModel::new();
        for g in &graphs {
            for constraints in [
                Constraints::new(2, 1),
                Constraints::new(4, 2),
                Constraints::new(8, 4),
            ] {
                let default = SingleCutSearch::new(g, constraints, &model).run();
                let bounded = SingleCutSearch::new(g, constraints, &model)
                    .with_incumbent_bound()
                    .run();
                assert_eq!(default.best, bounded.best, "{}: selection", g.name());
                assert_eq!(
                    default.stats.best_updates,
                    bounded.stats.best_updates,
                    "{}: update log",
                    g.name()
                );
                assert!(
                    bounded.stats.cuts_considered <= default.stats.cuts_considered,
                    "{}: the sharper threshold must not explore more",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn memory_nodes_never_enter_a_cut() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let idx = b.input("idx");
        let addr = b.add(base, idx);
        let v = b.load(addr);
        let w = b.mul(v, v);
        let s = b.add(w, idx);
        b.output("o", s);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(4, 4), &model);
        let best = outcome.best.expect("mul/add cluster is profitable");
        assert!(cut::is_afu_legal(&g, &best.cut));
        for id in best.cut.iter() {
            assert!(!g.node(id).opcode.is_memory());
        }
    }

    #[test]
    fn excluded_nodes_are_respected() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let all = identify_single_cut(&g, Constraints::new(4, 2), &model)
            .best
            .unwrap();
        let excluded = all.cut.clone();
        let outcome = SingleCutSearch::new(&g, Constraints::new(4, 2), &model)
            .with_excluded(&excluded)
            .run();
        assert!(outcome.best.is_none(), "all profitable nodes were excluded");
    }

    #[test]
    fn exploration_budget_terminates_early() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = SingleCutSearch::new(&g, Constraints::new(4, 2), &model)
            .with_exploration_budget(2)
            .run();
        assert!(outcome.stats.budget_exhausted);
        assert!(outcome.stats.cuts_considered <= 3);
    }

    #[test]
    fn single_logic_op_is_not_profitable() {
        let mut b = DfgBuilder::new("xor");
        let x = b.input("x");
        let y = b.input("y");
        let v = b.xor(x, y);
        b.output("o", v);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(2, 1), &model);
        // One 1-cycle instruction replaced by one 1-cycle instruction: no gain.
        assert!(outcome.best.is_none());
        assert_eq!(outcome.best_merit(), 0.0);
    }

    #[test]
    fn empty_graph_yields_no_cut() {
        let g = Dfg::new("empty");
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(2, 1), &model);
        assert!(outcome.best.is_none());
        assert_eq!(outcome.stats.cuts_considered, 0);
    }

    #[test]
    fn tighter_output_constraint_prunes_more() {
        let mut b = DfgBuilder::new("wide");
        let x = b.input("x");
        let y = b.input("y");
        let mut leaves = Vec::new();
        for i in 0..6 {
            let s = b.add(x, b.imm(i));
            let t = b.mul(s, y);
            leaves.push(t);
            b.output(format!("o{i}"), t);
        }
        let g = b.finish();
        let model = DefaultCostModel::new();
        let tight = identify_single_cut(&g, Constraints::new(8, 1), &model).stats;
        let loose = identify_single_cut(&g, Constraints::new(8, 4), &model).stats;
        assert!(tight.cuts_considered < loose.cuts_considered);
    }
}
