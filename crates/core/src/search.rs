//! Single-cut identification: the exact branch-and-bound search of Section 6.1.
//!
//! The algorithm explores the `2^|V|` possible cuts of a basic block with a recursive
//! binary search tree built over a topological ordering in which every node appears
//! *after* its consumers. At each tree node it checks the register-file output-port
//! constraint and the convexity constraint; when either fails, the whole subtree can be
//! eliminated, because nodes added later in the ordering are always (transitive)
//! producers of the already-decided nodes and can therefore neither remove an external
//! consumer nor re-establish convexity. The input-port constraint cannot be used for
//! pruning (adding a producer may *reduce* the number of inputs) and is only checked when
//! a candidate is evaluated, exactly as in the paper.
//!
//! All bookkeeping — `IN(S)`, `OUT(S)`, convexity reachability, software cost, hardware
//! critical path and area — is maintained incrementally in `O(fan-in + fan-out)` per
//! step, giving the `O(1)`-per-step behaviour (for bounded-degree graphs) claimed in the
//! paper.

use ise_hw::{cut_merit, CostModel};
use ise_ir::{topo, Dfg, NodeId, Operand};

use crate::constraints::Constraints;
use crate::cut::{CutEvaluation, CutSet};

/// Counters describing one run of the identification algorithm.
///
/// `cuts_considered` is the quantity plotted against graph size in Fig. 8 of the paper:
/// the number of distinct non-empty cuts for which the feasibility checks were evaluated
/// (the pruned subtrees below failing cuts are never counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Distinct non-empty cuts whose feasibility checks were evaluated.
    pub cuts_considered: u64,
    /// Cuts that passed both the output-port and the convexity check.
    pub feasible_cuts: u64,
    /// Cuts rejected (with their subtree) by the output-port check.
    pub pruned_output: u64,
    /// Cuts rejected (with their subtree) by the convexity check.
    pub pruned_convexity: u64,
    /// Cuts rejected (with their subtree) by the optional node-count budget.
    pub pruned_node_budget: u64,
    /// Number of times the incumbent best cut was improved.
    pub best_updates: u64,
    /// True when the optional exploration budget stopped the search early; the result is
    /// then a lower bound rather than the proven optimum.
    pub budget_exhausted: bool,
}

/// A cut returned by an identification algorithm, together with its evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdentifiedCut {
    /// The selected nodes.
    pub cut: CutSet,
    /// The cut's microarchitectural and cost evaluation.
    pub evaluation: CutEvaluation,
}

/// Result of one identification run, shared by every [`crate::engine::Identifier`].
///
/// Algorithms that return a single best cut (the exact single-cut search, the exhaustive
/// oracle) report it both in `best` and as the only element of `candidates`; algorithms
/// that enumerate several disjoint candidates per block (the multiple-cut search, the
/// Clubbing/MaxMISO/single-node baselines) report them all in `candidates`, with `best`
/// set to the maximal-merit one.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SearchOutcome {
    /// The maximal-merit cut satisfying all constraints, if any cut with positive merit
    /// exists.
    pub best: Option<IdentifiedCut>,
    /// All candidate cuts reported by the algorithm, sorted by decreasing merit.
    /// Candidates from one invocation are pairwise disjoint.
    pub candidates: Vec<IdentifiedCut>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// An outcome holding at most one cut.
    #[must_use]
    pub fn from_best(best: Option<IdentifiedCut>, stats: SearchStats) -> Self {
        SearchOutcome {
            candidates: best.iter().cloned().collect(),
            best,
            stats,
        }
    }

    /// An outcome holding a set of disjoint candidates; `best` becomes the maximal-merit
    /// one and the candidates are sorted by decreasing merit (ties keep their original
    /// relative order, so the result is deterministic).
    #[must_use]
    pub fn from_candidates(mut candidates: Vec<IdentifiedCut>, stats: SearchStats) -> Self {
        candidates.sort_by(|a, b| {
            b.evaluation
                .merit
                .partial_cmp(&a.evaluation.merit)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        SearchOutcome {
            best: candidates.first().cloned(),
            candidates,
            stats,
        }
    }

    /// Merit of the best cut, or zero when no profitable cut was found.
    #[must_use]
    pub fn best_merit(&self) -> f64 {
        self.best.as_ref().map_or(0.0, |c| c.evaluation.merit)
    }

    /// Sum of the merits of all reported candidates.
    #[must_use]
    pub fn total_merit(&self) -> f64 {
        self.candidates.iter().map(|c| c.evaluation.merit).sum()
    }
}

/// Deduplicated external value source of a node, precomputed for the incremental
/// `IN(S)` bookkeeping.
#[derive(Debug, Clone, Copy)]
enum Source {
    Node(usize),
    Input(usize),
}

/// The exact single-cut identification algorithm (Fig. 6 of the paper).
pub struct SingleCutSearch<'a> {
    dfg: &'a Dfg,
    model: &'a dyn CostModel,
    constraints: Constraints,
    /// Nodes that may never enter a cut: memory operations, collapsed AFU nodes, and any
    /// node excluded by the caller (e.g. nodes already claimed by a previous selection).
    blocked: Vec<bool>,
    /// Search order: consumers before producers.
    order: Vec<NodeId>,
    /// Deduplicated operand sources per node.
    sources: Vec<Vec<Source>>,
    is_output_source: Vec<bool>,
    software_cost: Vec<u32>,
    hardware_delay: Vec<f64>,
    area_cost: Vec<f64>,
    /// Optional limit on the number of cuts considered before giving up on optimality.
    exploration_budget: Option<u64>,

    // --- mutable search state ---
    in_cut: Vec<bool>,
    /// For nodes decided as excluded: does a downstream path reach the current cut?
    reaches_cut: Vec<bool>,
    /// For nodes in the cut: longest downstream delay path within the cut, including the
    /// node's own delay.
    longest_path: Vec<f64>,
    /// Number of cut nodes currently consuming each (outside) node.
    node_external_uses: Vec<u32>,
    /// Number of cut nodes currently reading each block input variable.
    input_uses: Vec<u32>,
    /// Nodes of the current cut, in insertion order.
    cut_stack: Vec<NodeId>,
    stats: SearchStats,
    best: Option<IdentifiedCut>,
    best_merit: f64,
}

impl<'a> SingleCutSearch<'a> {
    /// Prepares a search over `dfg` under `constraints`, using `model` for the merit
    /// function.
    #[must_use]
    pub fn new(dfg: &'a Dfg, constraints: Constraints, model: &'a dyn CostModel) -> Self {
        let n = dfg.node_count();
        let mut sources = Vec::with_capacity(n);
        let mut blocked = Vec::with_capacity(n);
        let mut is_output_source = Vec::with_capacity(n);
        let mut software_cost = Vec::with_capacity(n);
        let mut hardware_delay = Vec::with_capacity(n);
        let mut area_cost = Vec::with_capacity(n);
        for (id, node) in dfg.iter_nodes() {
            let mut node_sources: Vec<Source> = Vec::new();
            for operand in &node.operands {
                let source = match *operand {
                    Operand::Node(m) => Source::Node(m.index()),
                    Operand::Input(p) => Source::Input(p.index()),
                    Operand::Imm(_) => continue,
                };
                let duplicate = node_sources.iter().any(|s| match (s, &source) {
                    (Source::Node(a), Source::Node(b)) => a == b,
                    (Source::Input(a), Source::Input(b)) => a == b,
                    _ => false,
                });
                if !duplicate {
                    node_sources.push(source);
                }
            }
            sources.push(node_sources);
            blocked.push(node.is_forbidden_in_afu());
            is_output_source.push(dfg.is_output_source(id));
            software_cost.push(model.software_cycles(node));
            hardware_delay.push(model.hardware_delay(node));
            area_cost.push(model.hardware_area(node));
        }
        SingleCutSearch {
            dfg,
            model,
            constraints,
            blocked,
            order: topo::consumers_first(dfg),
            sources,
            is_output_source,
            software_cost,
            hardware_delay,
            area_cost,
            exploration_budget: None,
            in_cut: vec![false; n],
            reaches_cut: vec![false; n],
            longest_path: vec![0.0; n],
            node_external_uses: vec![0; n],
            input_uses: vec![0; dfg.input_count()],
            cut_stack: Vec::new(),
            stats: SearchStats::default(),
            best: None,
            best_merit: 0.0,
        }
    }

    /// Additionally forbids the given nodes from entering any cut.
    ///
    /// The iterative selection algorithm (Section 6.3) uses this to exclude nodes already
    /// absorbed by previously chosen instructions.
    #[must_use]
    pub fn with_excluded(mut self, excluded: &CutSet) -> Self {
        for id in excluded.iter() {
            if id.index() < self.blocked.len() {
                self.blocked[id.index()] = true;
            }
        }
        self
    }

    /// Limits the number of cuts considered; when the budget is exhausted the incumbent
    /// best cut is returned and [`SearchStats::budget_exhausted`] is set.
    #[must_use]
    pub fn with_exploration_budget(mut self, budget: u64) -> Self {
        self.exploration_budget = Some(budget);
        self
    }

    /// Runs the search and returns the best cut found together with statistics.
    #[must_use]
    pub fn run(mut self) -> SearchOutcome {
        if self.dfg.node_count() > 0 {
            self.explore(0, 0, 0, 0, 0.0, 0.0);
        }
        SearchOutcome::from_best(self.best, self.stats)
    }

    fn budget_left(&self) -> bool {
        self.exploration_budget
            .is_none_or(|budget| self.stats.cuts_considered < budget)
    }

    #[allow(clippy::too_many_arguments)]
    fn explore(
        &mut self,
        level: usize,
        in_count: usize,
        out_count: usize,
        software: u64,
        critical_path: f64,
        area: f64,
    ) {
        if level == self.order.len() {
            return;
        }
        if !self.budget_left() {
            self.stats.budget_exhausted = true;
            return;
        }
        let node = self.order[level];
        let index = node.index();

        // ----- 1-branch: try adding `node` to the cut -------------------------------
        if !self.blocked[index] {
            self.stats.cuts_considered += 1;
            let consumers = self.dfg.consumers(node);
            let has_external_consumer =
                self.is_output_source[index] || consumers.iter().any(|c| !self.in_cut[c.index()]);
            let new_out = out_count + usize::from(has_external_consumer);
            let convex = !consumers
                .iter()
                .any(|c| !self.in_cut[c.index()] && self.reaches_cut[c.index()]);
            let within_node_budget = self
                .constraints
                .max_nodes
                .is_none_or(|limit| self.cut_stack.len() < limit);

            if new_out > self.constraints.max_outputs {
                self.stats.pruned_output += 1;
            } else if !convex {
                self.stats.pruned_convexity += 1;
            } else if !within_node_budget {
                self.stats.pruned_node_budget += 1;
            } else {
                self.stats.feasible_cuts += 1;
                // Incremental IN(S) update: `node` stops being an external source, and
                // its own external sources start counting (once each).
                let mut new_in = in_count;
                if self.node_external_uses[index] > 0 {
                    new_in -= 1;
                }
                for source in &self.sources[index] {
                    match *source {
                        Source::Node(m) => {
                            self.node_external_uses[m] += 1;
                            if self.node_external_uses[m] == 1 {
                                new_in += 1;
                            }
                        }
                        Source::Input(p) => {
                            self.input_uses[p] += 1;
                            if self.input_uses[p] == 1 {
                                new_in += 1;
                            }
                        }
                    }
                }
                // Incremental critical path: consumers inside the cut are already final.
                let downstream = self
                    .dfg
                    .consumers(node)
                    .iter()
                    .filter(|c| self.in_cut[c.index()])
                    .map(|c| self.longest_path[c.index()])
                    .fold(0.0f64, f64::max);
                let path_through_node = downstream + self.hardware_delay[index];
                self.longest_path[index] = path_through_node;
                let new_cp = critical_path.max(path_through_node);
                let new_sw = software + u64::from(self.software_cost[index]);
                let new_area = area + self.area_cost[index];

                self.in_cut[index] = true;
                self.cut_stack.push(node);

                let merit = cut_merit(new_sw, new_cp);
                if merit > self.best_merit
                    && new_in <= self.constraints.max_inputs
                    && self.constraints.budget_ok(new_area, self.cut_stack.len())
                {
                    self.best_merit = merit;
                    self.stats.best_updates += 1;
                    self.best = Some(IdentifiedCut {
                        cut: CutSet::from_nodes(self.dfg, self.cut_stack.iter().copied()),
                        evaluation: CutEvaluation {
                            nodes: self.cut_stack.len(),
                            inputs: new_in,
                            outputs: new_out,
                            convex: true,
                            software_cycles: new_sw,
                            hardware_critical_path: new_cp,
                            hardware_cycles: self.model.cycles_for_delay(new_cp),
                            area: new_area,
                            merit,
                        },
                    });
                }

                self.explore(level + 1, new_in, new_out, new_sw, new_cp, new_area);

                // Undo.
                self.cut_stack.pop();
                self.in_cut[index] = false;
                for source in &self.sources[index] {
                    match *source {
                        Source::Node(m) => self.node_external_uses[m] -= 1,
                        Source::Input(p) => self.input_uses[p] -= 1,
                    }
                }
            }
        }

        // ----- 0-branch: leave `node` out of the cut ---------------------------------
        let reaches = self
            .dfg
            .consumers(node)
            .iter()
            .any(|c| self.in_cut[c.index()] || self.reaches_cut[c.index()]);
        let saved = self.reaches_cut[index];
        self.reaches_cut[index] = reaches;
        self.explore(
            level + 1,
            in_count,
            out_count,
            software,
            critical_path,
            area,
        );
        self.reaches_cut[index] = saved;
    }
}

/// Convenience wrapper: runs a [`SingleCutSearch`] with no exclusions.
#[must_use]
pub fn identify_single_cut(
    dfg: &Dfg,
    constraints: Constraints,
    model: &dyn CostModel,
) -> SearchOutcome {
    SingleCutSearch::new(dfg, constraints, model).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut;
    use ise_hw::DefaultCostModel;
    use ise_ir::DfgBuilder;

    fn fig4() -> Dfg {
        let mut b = DfgBuilder::new("fig4");
        let x = b.input("x");
        let y = b.input("y");
        let mul = b.mul(x, y);
        let shr = b.lshr(mul, b.imm(2));
        let add1 = b.add(mul, y);
        let add0 = b.add(shr, add1);
        b.output("out", add0);
        b.finish()
    }

    #[test]
    fn finds_the_whole_graph_when_ports_allow_it() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(2, 1), &model);
        let best = outcome.best.expect("a profitable cut exists");
        assert_eq!(best.cut.len(), 4);
        assert_eq!(best.evaluation.inputs, 2);
        assert_eq!(best.evaluation.outputs, 1);
        assert_eq!(best.evaluation.merit, 3.0);
        assert!(best.evaluation.convex);
    }

    #[test]
    fn incremental_evaluation_matches_reference_evaluation() {
        let g = fig4();
        let model = DefaultCostModel::new();
        for constraints in Constraints::paper_sweep() {
            let outcome = identify_single_cut(&g, constraints, &model);
            if let Some(best) = outcome.best {
                let reference = cut::evaluate(&g, &best.cut, &model);
                assert_eq!(best.evaluation.inputs, reference.inputs);
                assert_eq!(best.evaluation.outputs, reference.outputs);
                assert_eq!(best.evaluation.software_cycles, reference.software_cycles);
                assert!(
                    (best.evaluation.hardware_critical_path - reference.hardware_critical_path)
                        .abs()
                        < 1e-9
                );
                assert_eq!(best.evaluation.merit, reference.merit);
            }
        }
    }

    #[test]
    fn search_tree_is_pruned() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(8, 1), &model);
        let stats = outcome.stats;
        // 15 non-empty cuts exist; pruning must remove at least one of them.
        assert!(stats.cuts_considered < 15);
        assert_eq!(
            stats.cuts_considered,
            stats.feasible_cuts
                + stats.pruned_output
                + stats.pruned_convexity
                + stats.pruned_node_budget
        );
        assert!(stats.pruned_output > 0);
        assert!(!stats.budget_exhausted);
    }

    #[test]
    fn memory_nodes_never_enter_a_cut() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let idx = b.input("idx");
        let addr = b.add(base, idx);
        let v = b.load(addr);
        let w = b.mul(v, v);
        let s = b.add(w, idx);
        b.output("o", s);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(4, 4), &model);
        let best = outcome.best.expect("mul/add cluster is profitable");
        assert!(cut::is_afu_legal(&g, &best.cut));
        for id in best.cut.iter() {
            assert!(!g.node(id).opcode.is_memory());
        }
    }

    #[test]
    fn excluded_nodes_are_respected() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let all = identify_single_cut(&g, Constraints::new(4, 2), &model)
            .best
            .unwrap();
        let excluded = all.cut.clone();
        let outcome = SingleCutSearch::new(&g, Constraints::new(4, 2), &model)
            .with_excluded(&excluded)
            .run();
        assert!(outcome.best.is_none(), "all profitable nodes were excluded");
    }

    #[test]
    fn exploration_budget_terminates_early() {
        let g = fig4();
        let model = DefaultCostModel::new();
        let outcome = SingleCutSearch::new(&g, Constraints::new(4, 2), &model)
            .with_exploration_budget(2)
            .run();
        assert!(outcome.stats.budget_exhausted);
        assert!(outcome.stats.cuts_considered <= 3);
    }

    #[test]
    fn single_logic_op_is_not_profitable() {
        let mut b = DfgBuilder::new("xor");
        let x = b.input("x");
        let y = b.input("y");
        let v = b.xor(x, y);
        b.output("o", v);
        let g = b.finish();
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(2, 1), &model);
        // One 1-cycle instruction replaced by one 1-cycle instruction: no gain.
        assert!(outcome.best.is_none());
        assert_eq!(outcome.best_merit(), 0.0);
    }

    #[test]
    fn empty_graph_yields_no_cut() {
        let g = Dfg::new("empty");
        let model = DefaultCostModel::new();
        let outcome = identify_single_cut(&g, Constraints::new(2, 1), &model);
        assert!(outcome.best.is_none());
        assert_eq!(outcome.stats.cuts_considered, 0);
    }

    #[test]
    fn tighter_output_constraint_prunes_more() {
        let mut b = DfgBuilder::new("wide");
        let x = b.input("x");
        let y = b.input("y");
        let mut leaves = Vec::new();
        for i in 0..6 {
            let s = b.add(x, b.imm(i));
            let t = b.mul(s, y);
            leaves.push(t);
            b.output(format!("o{i}"), t);
        }
        let g = b.finish();
        let model = DefaultCostModel::new();
        let tight = identify_single_cut(&g, Constraints::new(8, 1), &model).stats;
        let loose = identify_single_cut(&g, Constraints::new(8, 4), &model).stats;
        assert!(tight.cuts_considered < loose.cuts_considered);
    }
}
