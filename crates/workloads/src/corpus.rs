//! Duplicate-heavy synthetic corpora for the corpus-scale identification driver.
//!
//! Real embedded codebases are full of *structurally repeated* basic blocks: unrolled
//! loop bodies, the same saturating arithmetic idiom expanded in a dozen call sites,
//! per-channel copies of a filter kernel. The compiler emits these blocks with
//! different variable names, different instruction schedules and different register
//! numbers, so they are rarely byte-identical — but they are *isomorphic*, and the
//! corpus driver's structural deduplication (`ise_core::run_corpus`) identifies each
//! shape once.
//!
//! This module generates such corpora deterministically: a small set of template
//! graphs, each re-instantiated many times with a shuffled (but still topological)
//! node insertion order and a shuffled input-port order — the kind of benign
//! renaming/rescheduling a compiler applies — plus a configurable share of unique
//! random blocks so the dedup hit-rate stays below 100% and the miss path stays
//! exercised.

use ise_ir::{Dfg, Node, NodeId, Operand, PortId, Program};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::random::{random_dfg, RandomDfgConfig};

/// Shape of a generated corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Number of programs in the corpus.
    pub programs: usize,
    /// Number of basic blocks per program.
    pub blocks_per_program: usize,
    /// Number of distinct template graphs shared across the whole corpus.
    pub templates: usize,
    /// Number of operation nodes per template (and per unique block).
    pub template_nodes: usize,
    /// How many of each program's blocks are unique random graphs instead of
    /// template instances (clamped to `blocks_per_program`).
    pub unique_per_program: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            programs: 8,
            blocks_per_program: 6,
            templates: 3,
            template_nodes: 14,
            unique_per_program: 1,
        }
    }
}

/// Fisher–Yates shuffle (the bundled `rand` shim has no `SliceRandom`).
fn shuffle<T>(rng: &mut SmallRng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// Rebuilds `dfg` with a randomly shuffled (but topological) node insertion order and
/// a randomly permuted input-port order.
///
/// The result is isomorphic to the input — same opcodes, same edges, same outputs,
/// same execution count — but generally not byte-identical to it, mimicking what a
/// compiler's scheduling and register allocation do to repeated source idioms. The
/// same `seed` always produces the same reordering.
#[must_use]
pub fn shuffled_isomorph(dfg: &Dfg, name: impl Into<String>, seed: u64) -> Dfg {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out = Dfg::new(name);
    out.set_exec_count(dfg.exec_count());

    // Permute the input ports.
    let mut port_order: Vec<PortId> = dfg.input_ids().collect();
    shuffle(&mut rng, &mut port_order);
    let mut port_map: Vec<PortId> = vec![PortId::new(0); dfg.input_count()];
    for old in &port_order {
        port_map[old.index()] = out.add_input(dfg.input(*old).name.clone());
    }

    // Schedule the nodes: repeatedly emit a uniformly random *ready* node (one whose
    // node operands have all been emitted), which samples a topological order.
    let n = dfg.node_count();
    let mut pending_deps: Vec<usize> = vec![0; n];
    let mut dependents: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for id in dfg.node_ids() {
        for operand in &dfg.node(id).operands {
            if let Operand::Node(dep) = operand {
                pending_deps[id.index()] += 1;
                dependents[dep.index()].push(id);
            }
        }
    }
    let mut ready: Vec<NodeId> = dfg
        .node_ids()
        .filter(|id| pending_deps[id.index()] == 0)
        .collect();
    let mut node_map: Vec<NodeId> = vec![NodeId::new(0); n];
    let mut emitted = 0;
    while !ready.is_empty() {
        let pick = rng.gen_range(0..ready.len());
        let id = ready.swap_remove(pick);
        let original = dfg.node(id);
        let operands = original
            .operands
            .iter()
            .map(|operand| match *operand {
                Operand::Node(dep) => Operand::Node(node_map[dep.index()]),
                Operand::Input(port) => Operand::Input(port_map[port.index()]),
                Operand::Imm(value) => Operand::Imm(value),
            })
            .collect();
        let mut node = Node::new(original.opcode, operands);
        node.name = original.name.clone();
        node_map[id.index()] = out.add_node(node);
        emitted += 1;
        for &dependent in &dependents[id.index()] {
            pending_deps[dependent.index()] -= 1;
            if pending_deps[dependent.index()] == 0 {
                ready.push(dependent);
            }
        }
    }
    debug_assert_eq!(emitted, n, "stored order is acyclic, all nodes schedule");

    for output in dfg.iter_outputs() {
        let source = match output.source {
            Operand::Node(id) => Operand::Node(node_map[id.index()]),
            Operand::Input(port) => Operand::Input(port_map[port.index()]),
            Operand::Imm(value) => Operand::Imm(value),
        };
        out.add_output(output.name.clone(), source);
    }
    out
}

/// Generates a deterministic duplicate-heavy corpus.
///
/// Every program mixes shuffled instances of the corpus-wide templates (most blocks)
/// with a few unique random blocks, so a structural deduplicator sees
/// `templates + programs * unique_per_program` distinct shapes across
/// `programs * blocks_per_program` blocks. The same `(config, seed)` always produces
/// the same corpus.
#[must_use]
pub fn duplicate_heavy(config: &CorpusConfig, seed: u64) -> Vec<Program> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC02B_5EED);
    let template_config = RandomDfgConfig {
        nodes: config.template_nodes.max(2),
        memory_fraction: 0.0,
        ..RandomDfgConfig::default()
    };
    let templates: Vec<Dfg> = (0..config.templates.max(1))
        .map(|t| random_dfg(&template_config, seed.wrapping_add(0x7E3F * t as u64)))
        .collect();

    let unique = config.unique_per_program.min(config.blocks_per_program);
    (0..config.programs)
        .map(|p| {
            let mut program = Program::new(format!("corpus_{p}"));
            for b in 0..config.blocks_per_program {
                let mut block = if b < config.blocks_per_program - unique {
                    let t = rng.gen_range(0..templates.len());
                    shuffled_isomorph(&templates[t], format!("p{p}_b{b}_t{t}"), rng.gen())
                } else {
                    let mut fresh = random_dfg(&template_config, rng.gen());
                    fresh.set_name(format!("p{p}_b{b}_unique"));
                    fresh
                };
                // Realistic profile skew: early blocks are hot.
                block.set_exec_count(1000 / (1 + b as u64));
                program.add_block(block);
            }
            program
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffled_isomorphs_are_valid_and_deterministic() {
        let template = random_dfg(&RandomDfgConfig::with_nodes(20), 11);
        for seed in 0..10 {
            let shuffled = shuffled_isomorph(&template, "s", seed);
            shuffled
                .validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(shuffled.node_count(), template.node_count());
            assert_eq!(shuffled.input_count(), template.input_count());
            assert_eq!(shuffled.output_count(), template.output_count());
            assert_eq!(shuffled.exec_count(), template.exec_count());
            assert_eq!(shuffled, shuffled_isomorph(&template, "s", seed));
        }
    }

    #[test]
    fn corpus_is_deterministic_and_duplicate_heavy() {
        let config = CorpusConfig::default();
        let corpus = duplicate_heavy(&config, 42);
        assert_eq!(corpus.len(), config.programs);
        for program in &corpus {
            assert_eq!(program.block_count(), config.blocks_per_program);
            program.validate().expect("generated corpus is well-formed");
        }
        assert_eq!(corpus, duplicate_heavy(&config, 42));
        assert_ne!(corpus, duplicate_heavy(&config, 43));
    }
}
