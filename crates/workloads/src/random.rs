//! Random dataflow-graph generation.
//!
//! Fig. 8 of the paper plots the number of cuts considered by the identification
//! algorithm against the basic-block size for blocks between 2 and roughly 100 nodes.
//! The bundled kernels provide realistic blocks up to ~35 nodes; this generator produces
//! synthetic blocks with a configurable size, operation mix and fan-out so that the
//! scaling experiment can sweep the full range, and so that the property-based tests can
//! exercise the algorithms on thousands of structurally diverse graphs.

use ise_ir::{Dfg, DfgBuilder, Opcode, Operand, Program};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the random generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomDfgConfig {
    /// Number of operation nodes to generate.
    pub nodes: usize,
    /// Number of block input variables.
    pub inputs: usize,
    /// Number of block output variables (chosen among the generated nodes).
    pub outputs: usize,
    /// Probability that a generated node is a memory operation (illegal in AFUs).
    pub memory_fraction: f64,
    /// Probability that a generated node is a multiply (expensive in both models).
    pub multiply_fraction: f64,
    /// How strongly operands prefer recently created nodes (1 = uniform over all
    /// previous values; larger values create deeper, narrower graphs).
    pub locality: usize,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            nodes: 30,
            inputs: 4,
            outputs: 2,
            memory_fraction: 0.08,
            multiply_fraction: 0.15,
            locality: 8,
        }
    }
}

impl RandomDfgConfig {
    /// Convenience constructor for a graph with `nodes` operations and default mix.
    #[must_use]
    pub fn with_nodes(nodes: usize) -> Self {
        RandomDfgConfig {
            nodes,
            ..Self::default()
        }
    }
}

/// Generates a random, valid, acyclic dataflow graph.
///
/// The same `seed` always produces the same graph, making experiments reproducible.
#[must_use]
pub fn random_dfg(config: &RandomDfgConfig, seed: u64) -> Dfg {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = DfgBuilder::new(format!("random_{}_{seed}", config.nodes));
    let inputs: Vec<Operand> = (0..config.inputs.max(1))
        .map(|i| b.input(format!("x{i}")))
        .collect();
    let mut values: Vec<Operand> = inputs.clone();

    let binary_ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Lshr,
        Opcode::Ashr,
        Opcode::Min,
        Opcode::Max,
        Opcode::Lt,
        Opcode::Eq,
    ];
    let unary_ops = [
        Opcode::Not,
        Opcode::Neg,
        Opcode::Abs,
        Opcode::SextH,
        Opcode::ZextB,
    ];

    let mut node_values: Vec<Operand> = Vec::new();
    for _ in 0..config.nodes {
        let pick = |rng: &mut SmallRng, values: &[Operand], locality: usize| -> Operand {
            let window = values.len().min(locality.max(1));
            let start = values.len() - window;
            values[rng.gen_range(start..values.len())]
        };
        let roll: f64 = rng.gen();
        // `None` marks a node that produces no value (a store) and therefore must not be
        // offered as an operand to later nodes.
        let value = if roll < config.memory_fraction {
            let addr = pick(&mut rng, &values, config.locality);
            if rng.gen_bool(0.7) {
                Some(b.load(addr))
            } else {
                let data = pick(&mut rng, &values, config.locality);
                let _ = b.store(addr, data);
                None
            }
        } else if roll < config.memory_fraction + config.multiply_fraction {
            let lhs = pick(&mut rng, &values, config.locality);
            let rhs = pick(&mut rng, &values, config.locality);
            Some(b.mul(lhs, rhs))
        } else if rng.gen_bool(0.15) {
            let cond = pick(&mut rng, &values, config.locality);
            let lhs = pick(&mut rng, &values, config.locality);
            let rhs = pick(&mut rng, &values, config.locality);
            Some(b.select(cond, lhs, rhs))
        } else if rng.gen_bool(0.2) {
            let operand = pick(&mut rng, &values, config.locality);
            let op = unary_ops[rng.gen_range(0..unary_ops.len())];
            Some(b.op(op, &[operand]))
        } else {
            let lhs = pick(&mut rng, &values, config.locality);
            let rhs = if rng.gen_bool(0.25) {
                Operand::Imm(rng.gen_range(-128..128))
            } else {
                pick(&mut rng, &values, config.locality)
            };
            let op = binary_ops[rng.gen_range(0..binary_ops.len())];
            Some(b.op(op, &[lhs, rhs]))
        };
        if let Some(value) = value {
            values.push(value);
            node_values.push(value);
        }
    }

    // Choose output values among the most recently produced ones.
    let usable: Vec<Operand> = node_values
        .iter()
        .copied()
        .filter(|v| v.as_node().is_some())
        .collect();
    let output_count = config.outputs.max(1).min(usable.len().max(1));
    for i in 0..output_count {
        if usable.is_empty() {
            break;
        }
        let index = usable.len() - 1 - (i * 3) % usable.len();
        b.output(format!("out{i}"), usable[index]);
    }
    b.finish()
}

/// Generates the block-size sweep used by the Fig. 8 experiment: one graph per requested
/// size, with the default operation mix.
#[must_use]
pub fn size_sweep(sizes: &[usize], seed: u64) -> Vec<Dfg> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &nodes)| random_dfg(&RandomDfgConfig::with_nodes(nodes), seed + i as u64))
        .collect()
}

/// Configuration of a *wide* synthetic block: operands are drawn uniformly from **all**
/// previously produced values (unbounded locality), many block inputs and outputs, and
/// almost no memory operations. The result is a shallow, bushy DAG in which large
/// convex cuts abound — the worst case for the search-tree size at a given node count,
/// and therefore the scenario where intra-block subtree parallelism matters.
#[must_use]
pub fn wide_config(nodes: usize) -> RandomDfgConfig {
    RandomDfgConfig {
        nodes,
        inputs: 8,
        outputs: 4,
        memory_fraction: 0.02,
        multiply_fraction: 0.2,
        locality: usize::MAX,
    }
}

/// Generates one wide, shallow random block of `nodes` operations (see
/// [`wide_config`]).
#[must_use]
pub fn wide_dfg(nodes: usize, seed: u64) -> Dfg {
    random_dfg(&wide_config(nodes), seed)
}

/// The `"widedag"` synthetic workload: a program with *few, large* basic blocks.
///
/// The bundled MediaBench-like kernels have many smallish blocks, so the driver's
/// per-block fan-out alone keeps every core busy on them. This workload is the opposite
/// shape — the Fig. 8 scaling axis — where block-level parallelism is useless and only
/// intra-block subtree parallelism (`DriverOptions::intra_block_levels` in `ise-core`)
/// can use more than one core per block.
#[must_use]
pub fn wide_dag_program(blocks: usize, nodes_per_block: usize, seed: u64) -> Program {
    let mut program = Program::new("widedag");
    for block_index in 0..blocks.max(1) {
        let mut dfg = wide_dfg(nodes_per_block, seed + 7919 * block_index as u64);
        // Hot blocks: high execution counts make the selection non-trivial.
        dfg.set_exec_count(10_000 / (1 + block_index as u64));
        program.add_block(dfg);
    }
    program
}

/// The default `"widedag"` instance bundled in the suite registry: two 48-node wide
/// blocks, deterministic seed.
#[must_use]
pub fn wide_dag_default() -> Program {
    wide_dag_program(2, 48, 0x81DA6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_graphs_are_valid_and_deterministic() {
        let config = RandomDfgConfig::default();
        for seed in 0..20 {
            let g = random_dfg(&config, seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(g.node_count() > 0);
            assert!(g.output_count() >= 1);
            let again = random_dfg(&config, seed);
            assert_eq!(g, again, "same seed must give the same graph");
        }
    }

    #[test]
    fn node_count_tracks_the_request() {
        for nodes in [2, 10, 40, 80] {
            let g = random_dfg(&RandomDfgConfig::with_nodes(nodes), 7);
            // Stores are also nodes, so the count matches exactly.
            assert_eq!(g.node_count(), nodes);
        }
    }

    #[test]
    fn memory_fraction_zero_gives_pure_dataflow() {
        let config = RandomDfgConfig {
            memory_fraction: 0.0,
            ..RandomDfgConfig::default()
        };
        for seed in 0..10 {
            assert!(!random_dfg(&config, seed).has_memory_ops());
        }
    }

    #[test]
    fn size_sweep_produces_one_graph_per_size() {
        let sizes = [2, 5, 20, 60];
        let graphs = size_sweep(&sizes, 3);
        assert_eq!(graphs.len(), sizes.len());
        for (g, &n) in graphs.iter().zip(&sizes) {
            assert_eq!(g.node_count(), n);
        }
    }
}
