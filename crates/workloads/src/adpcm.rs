//! ADPCM (IMA/DVI) decode and encode kernels — the paper's motivational example (Fig. 3).
//!
//! The graphs below are the dataflow of the innermost loop bodies of the MediaBench
//! `rawdaudio`/`rawcaudio` programs after if-conversion: every `if` of the C source has
//! become a `SEL` node, the `indexTable`/`stepsizeTable` lookups are `load` nodes and the
//! output sample write is a `store` node, exactly as drawn in Fig. 3 of the paper
//! (subgraphs M1/M2/M3 live inside [`decode_kernel`]).

use ise_ir::{Dfg, DfgBuilder, Program};

/// Step-size table of the IMA ADPCM coder (89 entries). Exposed so that the integration
/// tests can execute the kernels against the real tables through the IR interpreter.
pub const STEP_SIZE_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// Index-adjustment table of the IMA ADPCM coder (16 entries).
pub const INDEX_TABLE: [i32; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

/// Base address used for the step-size table in the modelled data memory.
pub const STEP_TABLE_BASE: i64 = 0x1000;
/// Base address used for the index table in the modelled data memory.
pub const INDEX_TABLE_BASE: i64 = 0x2000;

/// Profile weight of the decoder inner loop (samples decoded per invocation of the
/// benchmark), mirroring the dominance of this block in the MediaBench profile.
pub const DECODE_EXEC_COUNT: u64 = 50_000;
/// Profile weight of the encoder inner loop.
pub const ENCODE_EXEC_COUNT: u64 = 50_000;

/// The if-converted dataflow graph of the ADPCM **decoder** inner loop.
///
/// Live-in values: `delta` (the 4-bit code), `index`, `valpred`, `step` and `outp`
/// (output pointer). Live-out values: the updated `index`, `valpred`, `step` and `outp`.
#[must_use]
pub fn decode_kernel() -> Dfg {
    let mut b = DfgBuilder::new("adpcmdecode.inner");
    b.exec_count(DECODE_EXEC_COUNT);
    let delta = b.input("delta");
    let index = b.input("index");
    let valpred = b.input("valpred");
    let step = b.input("step");
    let outp = b.input("outp");

    // index += indexTable[delta]; clamp to [0, 88]
    let index_addr = b.add(b.imm(INDEX_TABLE_BASE), delta);
    let index_adj = b.load(index_addr);
    let index_new = b.add(index, index_adj);
    let index_neg = b.lt(index_new, b.imm(0));
    let index_clamped_lo = b.select(index_neg, b.imm(0), index_new);
    let index_too_big = b.gt(index_clamped_lo, b.imm(88));
    let index_final = b.select(index_too_big, b.imm(88), index_clamped_lo);

    // sign = delta & 8; magnitude = delta & 7
    let sign = b.and(delta, b.imm(8));
    let magnitude = b.and(delta, b.imm(7));

    // vpdiff = step >> 3, conditionally accumulating step, step>>1, step>>2.
    // This is the approximate 16x4-bit multiplication called M1 in Fig. 3.
    let vpdiff0 = b.ashr(step, b.imm(3));
    let bit2 = b.and(magnitude, b.imm(4));
    let step_plus = b.add(vpdiff0, step);
    let vpdiff1 = b.select(bit2, step_plus, vpdiff0);
    let bit1 = b.and(magnitude, b.imm(2));
    let half_step = b.ashr(step, b.imm(1));
    let plus_half = b.add(vpdiff1, half_step);
    let vpdiff2 = b.select(bit1, plus_half, vpdiff1);
    let bit0 = b.and(magnitude, b.imm(1));
    let quarter_step = b.ashr(step, b.imm(2));
    let plus_quarter = b.add(vpdiff2, quarter_step);
    let vpdiff = b.select(bit0, plus_quarter, vpdiff2);

    // valpred +/- vpdiff, then saturate to 16 bits (the accumulation/saturation of M2).
    let minus = b.sub(valpred, vpdiff);
    let plus = b.add(valpred, vpdiff);
    let valpred_new = b.select(sign, minus, plus);
    let too_big = b.gt(valpred_new, b.imm(32767));
    let sat_hi = b.select(too_big, b.imm(32767), valpred_new);
    let too_small = b.lt(sat_hi, b.imm(-32768));
    let valpred_sat = b.select(too_small, b.imm(-32768), sat_hi);

    // step = stepsizeTable[index] (the disconnected subgraph M3 of Fig. 3).
    let step_addr = b.add(b.imm(STEP_TABLE_BASE), index_final);
    let step_new = b.load(step_addr);

    // *outp++ = valpred
    b.store(outp, valpred_sat);
    let outp_new = b.add(outp, b.imm(1));

    b.output("index", index_final);
    b.output("valpred", valpred_sat);
    b.output("step", step_new);
    b.output("outp", outp_new);
    b.finish()
}

/// The if-converted dataflow graph of the ADPCM **encoder** inner loop.
///
/// Live-in values: the input sample `val`, `valpred`, `index`, `step` and the packed
/// output state. Live-out: `delta`, updated `valpred`, `index`, `step`.
#[must_use]
pub fn encode_kernel() -> Dfg {
    let mut b = DfgBuilder::new("adpcmencode.inner");
    b.exec_count(ENCODE_EXEC_COUNT);
    let val = b.input("val");
    let valpred = b.input("valpred");
    let index = b.input("index");
    let step = b.input("step");

    // diff = val - valpred; sign = (diff < 0) ? 8 : 0; diff = |diff|
    let diff = b.sub(val, valpred);
    let neg = b.lt(diff, b.imm(0));
    let sign = b.select(neg, b.imm(8), b.imm(0));
    let negated = b.neg(diff);
    let absdiff = b.select(neg, negated, diff);

    // delta = 0; vpdiff = step >> 3; three quantisation steps (if-converted).
    let vpdiff0 = b.ashr(step, b.imm(3));
    // step 1: if (diff >= step) { delta |= 4; diff -= step; vpdiff += step; }
    let ge1 = b.ge(absdiff, step);
    let delta1 = b.select(ge1, b.imm(4), b.imm(0));
    let diff1_sub = b.sub(absdiff, step);
    let diff1 = b.select(ge1, diff1_sub, absdiff);
    let vpdiff1_add = b.add(vpdiff0, step);
    let vpdiff1 = b.select(ge1, vpdiff1_add, vpdiff0);
    // step 2: half step
    let half = b.ashr(step, b.imm(1));
    let ge2 = b.ge(diff1, half);
    let delta2_or = b.or(delta1, b.imm(2));
    let delta2 = b.select(ge2, delta2_or, delta1);
    let diff2_sub = b.sub(diff1, half);
    let diff2 = b.select(ge2, diff2_sub, diff1);
    let vpdiff2_add = b.add(vpdiff1, half);
    let vpdiff2 = b.select(ge2, vpdiff2_add, vpdiff1);
    // step 3: quarter step
    let quarter = b.ashr(step, b.imm(2));
    let ge3 = b.ge(diff2, quarter);
    let delta3_or = b.or(delta2, b.imm(1));
    let delta3 = b.select(ge3, delta3_or, delta2);
    let vpdiff3_add = b.add(vpdiff2, quarter);
    let vpdiff = b.select(ge3, vpdiff3_add, vpdiff2);

    // valpred +/- vpdiff with saturation.
    let minus = b.sub(valpred, vpdiff);
    let plus = b.add(valpred, vpdiff);
    let valpred_new = b.select(sign, minus, plus);
    let too_big = b.gt(valpred_new, b.imm(32767));
    let sat_hi = b.select(too_big, b.imm(32767), valpred_new);
    let too_small = b.lt(sat_hi, b.imm(-32768));
    let valpred_sat = b.select(too_small, b.imm(-32768), sat_hi);

    // delta |= sign; index += indexTable[delta]; clamp; step = stepsizeTable[index]
    let delta_final = b.or(delta3, sign);
    let index_addr = b.add(b.imm(INDEX_TABLE_BASE), delta_final);
    let index_adj = b.load(index_addr);
    let index_new = b.add(index, index_adj);
    let index_neg = b.lt(index_new, b.imm(0));
    let index_lo = b.select(index_neg, b.imm(0), index_new);
    let index_hi = b.gt(index_lo, b.imm(88));
    let index_final = b.select(index_hi, b.imm(88), index_lo);
    let step_addr = b.add(b.imm(STEP_TABLE_BASE), index_final);
    let step_new = b.load(step_addr);

    b.output("delta", delta_final);
    b.output("valpred", valpred_sat);
    b.output("index", index_final);
    b.output("step", step_new);
    b.finish()
}

/// A small secondary block of the decoder (buffer/nibble management), so that the
/// application has more than one profiled basic block.
#[must_use]
pub fn decode_outer_block() -> Dfg {
    let mut b = DfgBuilder::new("adpcmdecode.unpack");
    b.exec_count(DECODE_EXEC_COUNT / 2);
    let inbuf = b.input("inbuf");
    let bufferstep = b.input("bufferstep");
    let inp = b.input("inp");
    let loaded = b.load(inp);
    let low_nibble = b.and(loaded, b.imm(0xf));
    let high_nibble_shift = b.lshr(loaded, b.imm(4));
    let high_nibble = b.and(high_nibble_shift, b.imm(0xf));
    let delta = b.select(bufferstep, low_nibble, high_nibble);
    let inp_next = b.add(inp, b.imm(1));
    let inp_new = b.select(bufferstep, inp, inp_next);
    let toggled = b.xor(bufferstep, b.imm(1));
    let buffer_new = b.select(bufferstep, inbuf, loaded);
    b.output("delta", delta);
    b.output("inp", inp_new);
    b.output("bufferstep", toggled);
    b.output("inbuf", buffer_new);
    b.finish()
}

/// The `adpcmdecode` application: unpacking block plus the decoder inner loop.
#[must_use]
pub fn decode_program() -> Program {
    let mut p = Program::new("adpcmdecode");
    p.add_block(decode_outer_block());
    p.add_block(decode_kernel());
    p
}

/// The `adpcmencode` application.
#[must_use]
pub fn encode_program() -> Program {
    let mut p = Program::new("adpcmencode");
    p.add_block(encode_kernel());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use std::collections::BTreeMap;

    /// Reference C-like implementation of one decoder step, used to validate the graph.
    fn reference_decode(delta: i32, index: i32, valpred: i32, step: i32) -> (i32, i32, i32) {
        let mut index = index + INDEX_TABLE[(delta & 0xf) as usize];
        index = index.clamp(0, 88);
        let sign = delta & 8;
        let magnitude = delta & 7;
        let mut vpdiff = step >> 3;
        if magnitude & 4 != 0 {
            vpdiff += step;
        }
        if magnitude & 2 != 0 {
            vpdiff += step >> 1;
        }
        if magnitude & 1 != 0 {
            vpdiff += step >> 2;
        }
        let mut valpred = if sign != 0 {
            valpred - vpdiff
        } else {
            valpred + vpdiff
        };
        valpred = valpred.clamp(-32768, 32767);
        let step = STEP_SIZE_TABLE[index as usize];
        (index, valpred, step)
    }

    fn evaluator_with_tables() -> Evaluator {
        let mut evaluator = Evaluator::new();
        evaluator
            .memory
            .load_table(STEP_TABLE_BASE as i32, &STEP_SIZE_TABLE);
        evaluator
            .memory
            .load_table(INDEX_TABLE_BASE as i32, &INDEX_TABLE);
        evaluator
    }

    #[test]
    fn decode_kernel_matches_the_reference_implementation() {
        let g = decode_kernel();
        g.validate().expect("valid graph");
        let mut state = (0i32, 0i32, 7i32); // (index, valpred, step)
        for delta in [0, 1, 3, 7, 8, 12, 15, 5, 9, 2] {
            let mut evaluator = evaluator_with_tables();
            let inputs: BTreeMap<String, i32> = [
                ("delta".to_string(), delta),
                ("index".to_string(), state.0),
                ("valpred".to_string(), state.1),
                ("step".to_string(), state.2),
                ("outp".to_string(), 0x500),
            ]
            .into();
            let out = evaluator
                .eval_block(&g, &inputs)
                .expect("evaluation")
                .outputs;
            let expected = reference_decode(delta, state.0, state.1, state.2);
            assert_eq!(out["index"], expected.0, "delta={delta}");
            assert_eq!(out["valpred"], expected.1, "delta={delta}");
            assert_eq!(out["step"], expected.2, "delta={delta}");
            assert_eq!(evaluator.memory.read(0x500), expected.1);
            state = expected;
        }
    }

    #[test]
    fn decode_kernel_has_the_fig3_shape() {
        let g = decode_kernel();
        // Fig. 3 shows eight SEL nodes, two table loads and one store in the hot block.
        assert_eq!(g.count_opcode(ise_ir::Opcode::Select), 8);
        assert_eq!(g.count_opcode(ise_ir::Opcode::Load), 2);
        assert_eq!(g.count_opcode(ise_ir::Opcode::Store), 1);
        assert_eq!(g.output_count(), 4);
        assert!(
            g.node_count() >= 25,
            "the block is large after if-conversion"
        );
        assert!(g.dead_nodes().is_empty());
    }

    #[test]
    fn encode_kernel_is_well_formed_and_executable() {
        let g = encode_kernel();
        g.validate().expect("valid graph");
        let mut evaluator = evaluator_with_tables();
        let inputs: BTreeMap<String, i32> = [
            ("val".to_string(), 1200),
            ("valpred".to_string(), 0),
            ("index".to_string(), 0),
            ("step".to_string(), 7),
        ]
        .into();
        let out = evaluator
            .eval_block(&g, &inputs)
            .expect("evaluation")
            .outputs;
        // The encoder must quantise a large positive difference to the maximum magnitude.
        assert_eq!(out["delta"] & 0x8, 0, "positive difference has no sign bit");
        assert!(out["delta"] & 0x7 > 0);
        assert!(out["valpred"] > 0);
        assert!(out["index"] > 0);
    }

    #[test]
    fn programs_are_valid_and_profiled() {
        let decode = decode_program();
        assert!(decode.validate().is_ok());
        assert_eq!(decode.block_count(), 2);
        assert!(decode.dynamic_operations() > 0);
        let encode = encode_program();
        assert!(encode.validate().is_ok());
        assert_eq!(encode.name(), "adpcmencode");
    }
}
