//! DSP-style kernels: EPIC/FIR filtering, JPEG 1-D IDCT and a Viterbi butterfly.

use ise_ir::{Dfg, DfgBuilder, Operand, Program};

/// Profile weight of the FIR inner loop.
pub const FIR_EXEC_COUNT: u64 = 60_000;
/// Profile weight of the IDCT column pass.
pub const IDCT_EXEC_COUNT: u64 = 12_000;
/// Profile weight of the Viterbi butterfly.
pub const VITERBI_EXEC_COUNT: u64 = 30_000;

/// A 4-tap unrolled FIR filter inner loop, the shape of EPIC's `internal_filter` and of
/// countless other convolution kernels: interleaved loads, multiplies and an accumulation
/// chain, closed by a rounding shift.
#[must_use]
pub fn fir_kernel() -> Dfg {
    let mut b = DfgBuilder::new("epic.fir4");
    b.exec_count(FIR_EXEC_COUNT);
    let sample_ptr = b.input("sample_ptr");
    let coeff_ptr = b.input("coeff_ptr");
    let acc_in = b.input("acc");

    let mut acc = acc_in;
    for tap in 0..4 {
        let sample_addr = b.add(sample_ptr, b.imm(tap));
        let sample = b.load(sample_addr);
        let coeff_addr = b.add(coeff_ptr, b.imm(tap));
        let coeff = b.load(coeff_addr);
        let product = b.mul(sample, coeff);
        acc = b.add(acc, product);
    }
    let rounded = b.add(acc, b.imm(1 << 13));
    let scaled = b.ashr(rounded, b.imm(14));

    b.output("acc", acc);
    b.output("result", scaled);
    b.finish()
}

/// The even/odd butterfly of a fixed-point 1-D inverse DCT column pass (the structure of
/// the JPEG `jpeg_idct_islow` kernel): constant multiplications, additions, subtractions
/// and descaling shifts on four inputs, producing four outputs.
#[must_use]
pub fn idct_kernel() -> Dfg {
    let mut b = DfgBuilder::new("jpeg.idct_col");
    b.exec_count(IDCT_EXEC_COUNT);
    let x0 = b.input("x0");
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let x3 = b.input("x3");

    // Even part.
    let z2 = b.mul(x2, b.imm(4433)); // FIX(0.541196100) scaled
    let z3 = b.mul(x3, b.imm(10703)); // FIX(1.306562965) scaled
    let tmp2 = b.sub(z2, z3);
    let tmp3 = b.add(z2, z3);
    let x0_scaled = b.shl(x0, b.imm(13));
    let x1_scaled = b.shl(x1, b.imm(13));
    let tmp0 = b.add(x0_scaled, x1_scaled);
    let tmp1 = b.sub(x0_scaled, x1_scaled);

    let y0_raw = b.add(tmp0, tmp3);
    let y3_raw = b.sub(tmp0, tmp3);
    let y1_raw = b.add(tmp1, tmp2);
    let y2_raw = b.sub(tmp1, tmp2);

    let descale = |b: &mut DfgBuilder, v: Operand| {
        let rounded = b.add(v, b.imm(1 << 10));
        b.ashr(rounded, b.imm(11))
    };
    let y0 = descale(&mut b, y0_raw);
    let y1 = descale(&mut b, y1_raw);
    let y2 = descale(&mut b, y2_raw);
    let y3 = descale(&mut b, y3_raw);

    b.output("y0", y0);
    b.output("y1", y1);
    b.output("y2", y2);
    b.output("y3", y3);
    b.finish()
}

/// An add-compare-select Viterbi butterfly over two states: the canonical pattern that
/// benefits from a multi-output special instruction (new metric and decision bit per
/// state).
#[must_use]
pub fn viterbi_kernel() -> Dfg {
    let mut b = DfgBuilder::new("viterbi.acs");
    b.exec_count(VITERBI_EXEC_COUNT);
    let metric0 = b.input("metric0");
    let metric1 = b.input("metric1");
    let branch00 = b.input("branch00");
    let branch10 = b.input("branch10");
    let branch01 = b.input("branch01");
    let branch11 = b.input("branch11");

    // State 0 update.
    let path00 = b.add(metric0, branch00);
    let path10 = b.add(metric1, branch10);
    let better0 = b.lt(path00, path10);
    let new_metric0 = b.select(better0, path00, path10);
    // State 1 update.
    let path01 = b.add(metric0, branch01);
    let path11 = b.add(metric1, branch11);
    let better1 = b.lt(path01, path11);
    let new_metric1 = b.select(better1, path01, path11);
    // Pack the two decision bits.
    let decision1_shifted = b.shl(better1, b.imm(1));
    let decisions = b.or(better0, decision1_shifted);

    b.output("metric0", new_metric0);
    b.output("metric1", new_metric1);
    b.output("decisions", decisions);
    b.finish()
}

/// The `epic`-like filtering application.
#[must_use]
pub fn epic_program() -> Program {
    let mut p = Program::new("epic");
    p.add_block(fir_kernel());
    p.add_block(idct_kernel());
    p
}

/// The JPEG-like transform application.
#[must_use]
pub fn jpeg_program() -> Program {
    let mut p = Program::new("jpeg");
    p.add_block(idct_kernel());
    p
}

/// The Viterbi decoder application (used by the SIMD-style disconnected-graph studies).
#[must_use]
pub fn viterbi_program() -> Program {
    let mut p = Program::new("viterbi");
    p.add_block(viterbi_kernel());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use std::collections::BTreeMap;

    fn eval_with_memory(
        dfg: &Dfg,
        memory: &[(i32, &[i32])],
        inputs: &[(&str, i32)],
    ) -> BTreeMap<String, i32> {
        let mut evaluator = Evaluator::new();
        for (base, values) in memory {
            evaluator.memory.load_table(*base, values);
        }
        let bindings: BTreeMap<String, i32> =
            inputs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        evaluator.eval_block(dfg, &bindings).unwrap().outputs
    }

    #[test]
    fn fir_accumulates_four_taps() {
        let g = fir_kernel();
        g.validate().expect("valid graph");
        let out = eval_with_memory(
            &g,
            &[(100, &[1, 2, 3, 4]), (200, &[10, 20, 30, 40])],
            &[("sample_ptr", 100), ("coeff_ptr", 200), ("acc", 5)],
        );
        let expected_acc = 5 + 10 + 2 * 20 + 3 * 30 + 4 * 40;
        assert_eq!(out["acc"], expected_acc);
        assert_eq!(out["result"], (expected_acc + (1 << 13)) >> 14);
        assert_eq!(g.count_opcode(ise_ir::Opcode::Load), 8);
    }

    #[test]
    fn idct_butterfly_is_linear_and_symmetric() {
        let g = idct_kernel();
        g.validate().expect("valid graph");
        // With x2 = x3 = 0 the outputs reduce to scaled sums/differences of x0, x1.
        let out = eval_with_memory(&g, &[], &[("x0", 8), ("x1", 4), ("x2", 0), ("x3", 0)]);
        assert_eq!(out["y0"], out["y1"] + 2 * ((4 << 13) >> 11));
        assert_eq!(out["y0"], ((12 << 13) + (1 << 10)) >> 11);
        assert_eq!(out["y3"], out["y0"]);
        assert_eq!(out["y2"], out["y1"]);
        assert_eq!(g.output_count(), 4);
    }

    #[test]
    fn viterbi_selects_the_smaller_path_metric() {
        let g = viterbi_kernel();
        g.validate().expect("valid graph");
        let out = eval_with_memory(
            &g,
            &[],
            &[
                ("metric0", 10),
                ("metric1", 20),
                ("branch00", 5),
                ("branch10", 1),
                ("branch01", 0),
                ("branch11", 100),
            ],
        );
        assert_eq!(out["metric0"], 15);
        assert_eq!(out["metric1"], 10);
        // Both states chose their first incoming path, so both decision bits are set.
        assert_eq!(out["decisions"], 0b11);
    }

    #[test]
    fn programs_are_valid() {
        assert!(epic_program().validate().is_ok());
        assert!(jpeg_program().validate().is_ok());
        assert!(viterbi_program().validate().is_ok());
    }
}
