//! # ise-workloads — embedded kernels expressed as dataflow graphs
//!
//! The paper evaluates its identification algorithms on MediaBench applications compiled
//! to MachSUIF and preprocessed with if-conversion. Neither MediaBench's C sources nor
//! MachSUIF are reproduced here; instead this crate provides hand-written dataflow graphs
//! of the same hot kernels (ADPCM decode/encode, GSM arithmetic, G.721/G.726
//! quantisation, an EPIC-style FIR filter, a JPEG 1-D IDCT pass, DES, CRC-32, SHA-1 and a
//! Viterbi butterfly), in their post-if-conversion form (selector nodes instead of
//! branches) and with realistic profile weights. The identification and selection
//! algorithms only look at the structure of these graphs — operation mix, fan-in/fan-out,
//! memory accesses, live-in/live-out counts — so reproducing that structure preserves the
//! qualitative behaviour the paper reports (see DESIGN.md for the substitution argument).
//!
//! The crate also contains a parameterised [`random`] DAG generator used by the Fig. 8
//! scaling experiment and by the property-based tests.
//!
//! # Example
//!
//! ```
//! use ise_workloads::suite;
//!
//! let programs = suite::mediabench_like();
//! assert!(programs.iter().any(|p| p.name() == "adpcmdecode"));
//! for program in &programs {
//!     program.validate().expect("all bundled kernels are well-formed");
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adpcm;
pub mod corpus;
pub mod crypto;
pub mod dsp;
pub mod g721;
pub mod gsm;
pub mod random;
pub mod suite;
