//! Cryptographic and checksum kernels: DES round, CRC-32 and SHA-1 step.
//!
//! These kernels stress the identification algorithms with wide, shallow graphs of cheap
//! bit-level operations (where very large cuts fit into one cycle of hardware) and with
//! table lookups that fragment the legal search space.

use ise_ir::{Dfg, DfgBuilder, Operand, Program};

/// Profile weight of the DES round block.
pub const DES_EXEC_COUNT: u64 = 16_000;
/// Profile weight of the CRC-32 inner loop.
pub const CRC_EXEC_COUNT: u64 = 80_000;
/// Profile weight of the SHA-1 round block.
pub const SHA_EXEC_COUNT: u64 = 20_000;

/// Base address of the modelled DES S-box table.
pub const SBOX_TABLE_BASE: i64 = 0x3000;

/// One Feistel round of DES: expansion (modelled by shifts/masks), key mixing, two S-box
/// lookups and the final permutation/XOR with the left half.
#[must_use]
pub fn des_round_kernel() -> Dfg {
    let mut b = DfgBuilder::new("des.round");
    b.exec_count(DES_EXEC_COUNT);
    let left = b.input("left");
    let right = b.input("right");
    let subkey = b.input("subkey");

    // Expansion E: duplicate edge bits via rotate-like shift/or pairs.
    let shifted_up = b.shl(right, b.imm(1));
    let shifted_down = b.lshr(right, b.imm(31));
    let rotated = b.or(shifted_up, shifted_down);
    let expanded = b.xor(rotated, subkey);

    // Two 6-bit S-box lookups.
    let chunk0 = b.and(expanded, b.imm(0x3f));
    let sbox0_addr = b.add(b.imm(SBOX_TABLE_BASE), chunk0);
    let sbox0 = b.load(sbox0_addr);
    let chunk1_shift = b.lshr(expanded, b.imm(6));
    let chunk1 = b.and(chunk1_shift, b.imm(0x3f));
    let sbox1_addr = b.add(b.imm(SBOX_TABLE_BASE + 64), chunk1);
    let sbox1 = b.load(sbox1_addr);

    // P permutation modelled as a shift/or merge, then XOR with the left half.
    let sbox1_placed = b.shl(sbox1, b.imm(4));
    let merged = b.or(sbox0, sbox1_placed);
    let spread = b.shl(merged, b.imm(8));
    let permuted = b.or(merged, spread);
    let new_right = b.xor(left, permuted);

    b.output("left", right);
    b.output("right", new_right);
    b.finish()
}

/// Four unrolled bit-steps of the table-less CRC-32: `crc = (crc >> 1) ^ (POLY & -(crc & 1))`.
#[must_use]
pub fn crc32_kernel() -> Dfg {
    let mut b = DfgBuilder::new("crc32.bits");
    b.exec_count(CRC_EXEC_COUNT);
    let crc_in = b.input("crc");
    const POLY: i64 = 0xEDB8_8320u32 as i64;

    let mut crc = crc_in;
    for _ in 0..4 {
        let bit = b.and(crc, b.imm(1));
        let mask = b.neg(bit);
        let poly_masked = b.and(mask, b.imm(POLY));
        let shifted = b.lshr(crc, b.imm(1));
        crc = b.xor(shifted, poly_masked);
    }
    b.output("crc", crc);
    b.finish()
}

/// One SHA-1 compression round (round function `F = (b & c) | (~b & d)`), including the
/// 5-bit rotation of `a` and the working-variable rotation.
#[must_use]
pub fn sha1_round_kernel() -> Dfg {
    let mut b = DfgBuilder::new("sha1.round");
    b.exec_count(SHA_EXEC_COUNT);
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");
    let w = b.input("w");

    let rotl = |builder: &mut DfgBuilder, value: Operand, amount: i64| {
        let up = builder.shl(value, builder.imm(amount));
        let down = builder.lshr(value, builder.imm(32 - amount));
        builder.or(up, down)
    };

    // F = (b & c) | (~b & d)
    let bc = b.and(bb, c);
    let not_b = b.not(bb);
    let nbd = b.and(not_b, d);
    let f = b.or(bc, nbd);

    let a5 = rotl(&mut b, a, 5);
    let sum1 = b.add(a5, f);
    let sum2 = b.add(sum1, e);
    let sum3 = b.add(sum2, w);
    let new_a = b.add(sum3, b.imm(0x5A82_7999));
    let new_c = rotl(&mut b, bb, 30);

    b.output("a", new_a);
    b.output("b", a);
    b.output("c", new_c);
    b.output("d", c);
    b.output("e", d);
    b.finish()
}

/// The DES-like application.
#[must_use]
pub fn des_program() -> Program {
    let mut p = Program::new("des");
    p.add_block(des_round_kernel());
    p
}

/// The CRC-32 application.
#[must_use]
pub fn crc_program() -> Program {
    let mut p = Program::new("crc32");
    p.add_block(crc32_kernel());
    p
}

/// The SHA-1 application.
#[must_use]
pub fn sha_program() -> Program {
    let mut p = Program::new("sha1");
    p.add_block(sha1_round_kernel());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use std::collections::BTreeMap;

    fn eval(dfg: &Dfg, inputs: &[(&str, i32)]) -> BTreeMap<String, i32> {
        let mut evaluator = Evaluator::new();
        let bindings: BTreeMap<String, i32> =
            inputs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        evaluator.eval_block(dfg, &bindings).unwrap().outputs
    }

    #[test]
    fn crc32_matches_the_bitwise_reference() {
        let g = crc32_kernel();
        g.validate().expect("valid graph");
        let reference = |mut crc: u32| {
            for _ in 0..4 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
            crc
        };
        for value in [0u32, 1, 0xdead_beef, 0xffff_ffff, 12345] {
            let out = eval(&g, &[("crc", value as i32)]);
            assert_eq!(out["crc"] as u32, reference(value), "crc input {value:#x}");
        }
    }

    #[test]
    fn sha1_round_rotates_working_variables() {
        let g = sha1_round_kernel();
        g.validate().expect("valid graph");
        let out = eval(
            &g,
            &[("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5), ("w", 6)],
        );
        // b/d/e outputs are pure rotations of the inputs.
        assert_eq!(out["b"], 1);
        assert_eq!(out["d"], 3);
        assert_eq!(out["e"], 4);
        // c = rotl(b, 30)
        assert_eq!(out["c"] as u32, 2u32.rotate_left(30));
        // a = rotl(1,5) + F(2,3,4) + 5 + 6 + K, with F = (2&3)|(~2&4) = 2|4 = 6
        let expected = 32i32
            .wrapping_add(6)
            .wrapping_add(5)
            .wrapping_add(6)
            .wrapping_add(0x5A82_7999u32 as i32);
        assert_eq!(out["a"], expected);
    }

    #[test]
    fn des_round_swaps_halves_and_uses_the_sbox() {
        let g = des_round_kernel();
        g.validate().expect("valid graph");
        let mut evaluator = Evaluator::new();
        let sbox: Vec<i32> = (0..128).map(|i| (i * 7 + 3) % 16).collect();
        evaluator.memory.load_table(SBOX_TABLE_BASE as i32, &sbox);
        let bindings: BTreeMap<String, i32> = [
            ("left".to_string(), 0x1234),
            ("right".to_string(), 0x0f0f),
            ("subkey".to_string(), 0x5a5a),
        ]
        .into();
        let out = evaluator.eval_block(&g, &bindings).unwrap().outputs;
        assert_eq!(
            out["left"], 0x0f0f,
            "the right half becomes the new left half"
        );
        assert_ne!(out["right"], 0x1234, "the new right half is mixed");
        assert_eq!(g.count_opcode(ise_ir::Opcode::Load), 2);
    }

    #[test]
    fn programs_are_valid() {
        assert!(des_program().validate().is_ok());
        assert!(crc_program().validate().is_ok());
        assert!(sha_program().validate().is_ok());
    }
}
