//! G.721/G.726 ADPCM (CCITT) kernels.
//!
//! The MediaBench `g721` coder spends most of its time in `fmult` (floating-point-like
//! multiplication on a custom 16-bit format built from shifts, masks and adds), `quan`
//! (a comparison ladder that if-converts into a chain of selects) and the predictor
//! update `update`. The graphs below reproduce their dataflow.

use ise_ir::{Dfg, DfgBuilder, Program};

/// Profile weight of the `fmult` block (called 8 times per sample).
pub const FMULT_EXEC_COUNT: u64 = 64_000;
/// Profile weight of the `quan` block.
pub const QUAN_EXEC_COUNT: u64 = 8_000;
/// Profile weight of the predictor update block.
pub const UPDATE_EXEC_COUNT: u64 = 8_000;

/// The `fmult` kernel: multiply a quantised magnitude by a predictor coefficient in the
/// custom mantissa/exponent format of G.726.
///
/// ```c
/// fmult(an, srn):
///   anmag  = (an > 0) ? an : (-an & 0x1FFF);
///   anexp  = quan(anmag) - 6;            // modelled here as a priority encode chain
///   anmant = (anmag == 0) ? 32 : (anexp >= 0 ? anmag >> anexp : anmag << -anexp);
///   wanexp = anexp + ((srn >> 6) & 0xF) - 13;
///   wanmant = (anmant * (srn & 077) + 0x30) >> 4;
///   retval = (wanexp >= 0) ? (wanmant << wanexp) & 0x7FFF : wanmant >> -wanexp;
///   return (((an ^ srn) < 0) ? -retval : retval);
/// ```
#[must_use]
pub fn fmult_kernel() -> Dfg {
    let mut b = DfgBuilder::new("g721.fmult");
    b.exec_count(FMULT_EXEC_COUNT);
    let an = b.input("an");
    let srn = b.input("srn");
    let anexp = b.input("anexp");

    // anmag = (an > 0) ? an >> 2 : (-an >> 2) & 0x1FFF
    let positive = b.gt(an, b.imm(0));
    let shifted_pos = b.ashr(an, b.imm(2));
    let negated = b.neg(an);
    let shifted_neg = b.ashr(negated, b.imm(2));
    let masked_neg = b.and(shifted_neg, b.imm(0x1fff));
    let anmag = b.select(positive, shifted_pos, masked_neg);

    // anmant = (anmag == 0) ? 32 : (anexp >= 0 ? anmag >> anexp : anmag << -anexp)
    let is_zero = b.eq(anmag, b.imm(0));
    let exp_nonneg = b.ge(anexp, b.imm(0));
    let shr = b.lshr(anmag, anexp);
    let neg_exp = b.neg(anexp);
    let shl = b.shl(anmag, neg_exp);
    let mant_shifted = b.select(exp_nonneg, shr, shl);
    let anmant = b.select(is_zero, b.imm(32), mant_shifted);

    // wanexp = anexp + ((srn >> 6) & 0xF) - 13
    let srn_exp_raw = b.ashr(srn, b.imm(6));
    let srn_exp = b.and(srn_exp_raw, b.imm(0xf));
    let exp_sum = b.add(anexp, srn_exp);
    let wanexp = b.sub(exp_sum, b.imm(13));

    // wanmant = (anmant * (srn & 0x3F) + 0x30) >> 4
    let srn_mant = b.and(srn, b.imm(0x3f));
    let product = b.mul(anmant, srn_mant);
    let rounded = b.add(product, b.imm(0x30));
    let wanmant = b.lshr(rounded, b.imm(4));

    // retval = wanexp >= 0 ? (wanmant << wanexp) & 0x7FFF : wanmant >> -wanexp
    let wexp_nonneg = b.ge(wanexp, b.imm(0));
    let shifted_up = b.shl(wanmant, wanexp);
    let masked_up = b.and(shifted_up, b.imm(0x7fff));
    let neg_wexp = b.neg(wanexp);
    let shifted_down = b.lshr(wanmant, neg_wexp);
    let retval = b.select(wexp_nonneg, masked_up, shifted_down);

    // sign correction
    let mixed = b.xor(an, srn);
    let negative = b.lt(mixed, b.imm(0));
    let negated_ret = b.neg(retval);
    let result = b.select(negative, negated_ret, retval);

    b.output("fmult", result);
    b.finish()
}

/// The `quan` kernel after if-conversion: a 7-entry comparison ladder turned into a chain
/// of compare/select pairs (a priority encoder on magnitude).
#[must_use]
pub fn quan_kernel() -> Dfg {
    let mut b = DfgBuilder::new("g721.quan");
    b.exec_count(QUAN_EXEC_COUNT);
    let value = b.input("value");
    // Thresholds of the 7-level quantiser of g721's `quan(..., power2, 15)`.
    let thresholds: [i64; 7] = [1, 2, 4, 8, 16, 32, 64];
    let mut level = b.imm(0);
    for (i, threshold) in thresholds.iter().enumerate() {
        let ge = b.ge(value, b.imm(*threshold));
        level = b.select(ge, b.imm(i as i64 + 1), level);
    }
    b.output("quan", level);
    b.finish()
}

/// One step of the predictor-coefficient update (`update`): leak the coefficient, add the
/// sign-dependent increment and clamp it into the stability range.
#[must_use]
pub fn update_kernel() -> Dfg {
    let mut b = DfgBuilder::new("g721.update");
    b.exec_count(UPDATE_EXEC_COUNT);
    let a1 = b.input("a1");
    let pk0 = b.input("pk0");
    let pk1 = b.input("pk1");
    let a2 = b.input("a2");

    // a1 -= a1 >> 8 (leakage)
    let leak = b.ashr(a1, b.imm(8));
    let leaked = b.sub(a1, leak);
    // increment = (pk0 ^ pk1) ? -192 : 192
    let agree = b.xor(pk0, pk1);
    let inc = b.select(agree, b.imm(-192), b.imm(192));
    let updated = b.add(leaked, inc);
    // clamp |a1| <= 15360 - a2-dependent bound
    let bound = b.sub(b.imm(15360), a2);
    let neg_bound = b.neg(bound);
    let too_big = b.gt(updated, bound);
    let clipped_hi = b.select(too_big, bound, updated);
    let too_small = b.lt(clipped_hi, neg_bound);
    let a1_new = b.select(too_small, neg_bound, clipped_hi);

    b.output("a1", a1_new);
    b.finish()
}

/// The `g721` application used in the Fig. 11 comparison.
#[must_use]
pub fn program() -> Program {
    let mut p = Program::new("g721");
    p.add_block(fmult_kernel());
    p.add_block(quan_kernel());
    p.add_block(update_kernel());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use std::collections::BTreeMap;

    fn eval(dfg: &Dfg, inputs: &[(&str, i32)]) -> BTreeMap<String, i32> {
        let mut evaluator = Evaluator::new();
        let bindings: BTreeMap<String, i32> =
            inputs.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        evaluator.eval_block(dfg, &bindings).unwrap().outputs
    }

    #[test]
    fn quan_is_a_priority_encoder() {
        let g = quan_kernel();
        g.validate().expect("valid graph");
        assert_eq!(eval(&g, &[("value", 0)])["quan"], 0);
        assert_eq!(eval(&g, &[("value", 1)])["quan"], 1);
        assert_eq!(eval(&g, &[("value", 3)])["quan"], 2);
        assert_eq!(eval(&g, &[("value", 17)])["quan"], 5);
        assert_eq!(eval(&g, &[("value", 1000)])["quan"], 7);
    }

    #[test]
    fn fmult_sign_follows_operand_signs() {
        let g = fmult_kernel();
        g.validate().expect("valid graph");
        let pos = eval(&g, &[("an", 4096), ("srn", 0x1c5), ("anexp", 4)])["fmult"];
        let neg = eval(&g, &[("an", -4096), ("srn", 0x1c5), ("anexp", 4)])["fmult"];
        assert!(pos > 0);
        assert!(neg < 0);
        assert_eq!(pos, -neg);
        let zero = eval(&g, &[("an", 0), ("srn", 0x1c5), ("anexp", 0)])["fmult"];
        assert!(zero >= 0);
    }

    #[test]
    fn update_clamps_into_the_stability_region() {
        let g = update_kernel();
        g.validate().expect("valid graph");
        let out = eval(&g, &[("a1", 20000), ("pk0", 0), ("pk1", 0), ("a2", 1000)]);
        assert!(out["a1"] <= 15360 - 1000);
        let out = eval(&g, &[("a1", -20000), ("pk0", 1), ("pk1", 0), ("a2", 1000)]);
        assert!(out["a1"] >= -(15360 - 1000));
    }

    #[test]
    fn program_contains_all_three_kernels() {
        let p = program();
        assert!(p.validate().is_ok());
        assert_eq!(p.block_count(), 3);
        assert_eq!(p.block(0).name(), "g721.fmult");
    }
}
