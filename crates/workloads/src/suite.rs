//! The bundled benchmark suite and its registry.

use ise_ir::interp::Evaluator;
use ise_ir::Program;

use crate::{adpcm, crypto, dsp, g721, gsm};

/// The three applications used for the paper's Fig. 11 comparison (adpcmdecode plus two
/// further MediaBench-style codecs).
#[must_use]
pub fn fig11_benchmarks() -> Vec<Program> {
    vec![adpcm::decode_program(), gsm::program(), g721::program()]
}

/// The full bundled suite: every MediaBench-like application shipped with this crate.
#[must_use]
pub fn mediabench_like() -> Vec<Program> {
    vec![
        adpcm::decode_program(),
        adpcm::encode_program(),
        gsm::program(),
        g721::program(),
        dsp::epic_program(),
        dsp::jpeg_program(),
        dsp::viterbi_program(),
        crypto::des_program(),
        crypto::crc_program(),
        crypto::sha_program(),
    ]
}

/// The bundled synthetic workloads: deterministic stress shapes that complement the
/// kernel-derived programs. Currently the `"widedag"` program — few, large, wide basic
/// blocks, the shape on which block-level parallelism cannot help and intra-block
/// subtree parallelism is the only scaling axis.
///
/// Kept out of [`mediabench_like`] so the paper-figure experiments keep sweeping
/// exactly the kernel-derived suite.
#[must_use]
pub fn synthetic() -> Vec<Program> {
    vec![crate::random::wide_dag_default()]
}

/// Looks up a bundled application by name (e.g. `"adpcmdecode"`, `"gsm"`, `"widedag"`).
#[must_use]
pub fn by_name(name: &str) -> Option<Program> {
    mediabench_like()
        .into_iter()
        .chain(synthetic())
        .find(|p| p.name() == name)
}

/// Names of all bundled applications (kernel-derived plus synthetic).
#[must_use]
pub fn names() -> Vec<String> {
    mediabench_like()
        .iter()
        .chain(synthetic().iter())
        .map(|p| p.name().to_string())
        .collect()
}

/// Creates an [`Evaluator`] whose data memory is pre-loaded with the lookup tables used
/// by the bundled kernels (ADPCM step/index tables, the DES S-box model).
#[must_use]
pub fn evaluator_with_tables() -> Evaluator {
    let mut evaluator = Evaluator::new();
    evaluator
        .memory
        .load_table(adpcm::STEP_TABLE_BASE as i32, &adpcm::STEP_SIZE_TABLE);
    evaluator
        .memory
        .load_table(adpcm::INDEX_TABLE_BASE as i32, &adpcm::INDEX_TABLE);
    let sbox: Vec<i32> = (0..128).map(|i| (i * 13 + 5) % 16).collect();
    evaluator
        .memory
        .load_table(crypto::SBOX_TABLE_BASE as i32, &sbox);
    evaluator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_bundled_programs_are_valid() {
        let programs = mediabench_like();
        assert_eq!(programs.len(), 10);
        for program in &programs {
            program
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", program.name()));
            assert!(program.block_count() >= 1);
            assert!(program.dynamic_operations() > 0);
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let names = names();
        for name in &names {
            assert!(by_name(name).is_some(), "{name} must resolve");
        }
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn widedag_is_bundled_valid_and_wide() {
        let program = by_name("widedag").expect("synthetic workload resolves");
        program.validate().expect("widedag is structurally valid");
        assert!(names().contains(&"widedag".to_string()));
        // Few, large blocks: the shape block-level fan-out cannot parallelise.
        assert!(program.block_count() <= 4);
        for block in program.blocks() {
            assert!(block.node_count() >= 32, "widedag blocks are large");
        }
        // The synthetic program does not leak into the paper-figure suite.
        assert!(mediabench_like().iter().all(|p| p.name() != "widedag"));
        // Deterministic: two instantiations are identical.
        assert_eq!(
            crate::random::wide_dag_default(),
            crate::random::wide_dag_default()
        );
    }

    #[test]
    fn fig11_benchmarks_are_the_published_trio() {
        let trio = fig11_benchmarks();
        let names: Vec<&str> = trio.iter().map(Program::name).collect();
        assert_eq!(names, vec!["adpcmdecode", "gsm", "g721"]);
    }

    #[test]
    fn evaluator_tables_are_loaded() {
        let evaluator = evaluator_with_tables();
        assert_eq!(
            evaluator.memory.read(crate::adpcm::STEP_TABLE_BASE as i32),
            7
        );
        assert_eq!(
            evaluator
                .memory
                .read(crate::adpcm::STEP_TABLE_BASE as i32 + 88),
            32767
        );
    }
}
