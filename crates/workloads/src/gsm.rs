//! GSM 06.10 full-rate codec kernels.
//!
//! The GSM coder is dominated by saturated 16-bit arithmetic helpers (`GSM_ADD`,
//! `GSM_MULT_R`) and by the short-term analysis filtering / autocorrelation loops that
//! are built from them. The graphs below reproduce the if-converted dataflow of those
//! inner loops.

use ise_ir::{Dfg, DfgBuilder, Program};

/// Profile weight of the short-term filtering loop.
pub const FILTER_EXEC_COUNT: u64 = 40_000;
/// Profile weight of the autocorrelation loop.
pub const AUTOCORR_EXEC_COUNT: u64 = 20_000;
/// Profile weight of the quantisation/coding block.
pub const QUANT_EXEC_COUNT: u64 = 8_000;

/// Saturated add followed by a rounded saturated multiply — the body of
/// `Short_term_analysis_filtering` for one reflection coefficient.
///
/// ```c
/// di   = GSM_ADD(d, GSM_MULT_R(rp, u));   // with 16-bit saturation
/// ui   = GSM_ADD(u, GSM_MULT_R(rp, d));
/// ```
#[must_use]
pub fn short_term_filter_kernel() -> Dfg {
    let mut b = DfgBuilder::new("gsm.short_term_filter");
    b.exec_count(FILTER_EXEC_COUNT);
    let d = b.input("d");
    let u = b.input("u");
    let rp = b.input("rp");

    // GSM_MULT_R(rp, u) = (rp * u + 16384) >> 15, saturated to 16 bits.
    let prod1 = b.mul(rp, u);
    let rounded1 = b.add(prod1, b.imm(16384));
    let shifted1 = b.ashr(rounded1, b.imm(15));
    let hi1 = b.gt(shifted1, b.imm(32767));
    let sat1a = b.select(hi1, b.imm(32767), shifted1);
    let lo1 = b.lt(sat1a, b.imm(-32768));
    let mult_r1 = b.select(lo1, b.imm(-32768), sat1a);
    // di = GSM_ADD(d, mult_r1)
    let sum1 = b.add(d, mult_r1);
    let hi2 = b.gt(sum1, b.imm(32767));
    let sat2a = b.select(hi2, b.imm(32767), sum1);
    let lo2 = b.lt(sat2a, b.imm(-32768));
    let di = b.select(lo2, b.imm(-32768), sat2a);

    // GSM_MULT_R(rp, d)
    let prod2 = b.mul(rp, d);
    let rounded2 = b.add(prod2, b.imm(16384));
    let shifted2 = b.ashr(rounded2, b.imm(15));
    let hi3 = b.gt(shifted2, b.imm(32767));
    let sat3a = b.select(hi3, b.imm(32767), shifted2);
    let lo3 = b.lt(sat3a, b.imm(-32768));
    let mult_r2 = b.select(lo3, b.imm(-32768), sat3a);
    // ui = GSM_ADD(u, mult_r2)
    let sum2 = b.add(u, mult_r2);
    let hi4 = b.gt(sum2, b.imm(32767));
    let sat4a = b.select(hi4, b.imm(32767), sum2);
    let lo4 = b.lt(sat4a, b.imm(-32768));
    let ui = b.select(lo4, b.imm(-32768), sat4a);

    b.output("di", di);
    b.output("ui", ui);
    b.finish()
}

/// Four steps of the `Autocorrelation` inner loop: load two samples, multiply, shift and
/// accumulate — a classic MAC-heavy block with memory accesses interleaved.
#[must_use]
pub fn autocorrelation_kernel() -> Dfg {
    let mut b = DfgBuilder::new("gsm.autocorrelation");
    b.exec_count(AUTOCORR_EXEC_COUNT);
    let sp = b.input("sp");
    let mut acc0 = b.input("acc0");
    let mut acc1 = b.input("acc1");
    let mut acc2 = b.input("acc2");

    for k in 0..2 {
        let base = b.add(sp, b.imm(k));
        let s0 = b.load(base);
        let lag1_addr = b.add(base, b.imm(1));
        let s1 = b.load(lag1_addr);
        let lag2_addr = b.add(base, b.imm(2));
        let s2 = b.load(lag2_addr);
        let p0 = b.mul(s0, s0);
        let p0s = b.ashr(p0, b.imm(1));
        acc0 = b.add(acc0, p0s);
        let p1 = b.mul(s0, s1);
        let p1s = b.ashr(p1, b.imm(1));
        acc1 = b.add(acc1, p1s);
        let p2 = b.mul(s0, s2);
        let p2s = b.ashr(p2, b.imm(1));
        acc2 = b.add(acc2, p2s);
    }

    b.output("acc0", acc0);
    b.output("acc1", acc1);
    b.output("acc2", acc2);
    b.finish()
}

/// The LAR (log-area-ratio) quantisation block: scale, add bias, clamp to the coding
/// range — a chain of multiplies, adds and if-converted clamps.
#[must_use]
pub fn lar_quantisation_kernel() -> Dfg {
    let mut b = DfgBuilder::new("gsm.lar_quantisation");
    b.exec_count(QUANT_EXEC_COUNT);
    let lar = b.input("lar");
    let a = b.input("a");
    let bias = b.input("bias");
    let minimum = b.input("min");
    let maximum = b.input("max");

    let scaled = b.mul(a, lar);
    let shifted = b.ashr(scaled, b.imm(9));
    let biased = b.add(shifted, bias);
    let plus_quarter = b.add(biased, b.imm(256));
    let quantised = b.ashr(plus_quarter, b.imm(9));
    let below = b.lt(quantised, minimum);
    let clamped_lo = b.select(below, minimum, quantised);
    let above = b.gt(clamped_lo, maximum);
    let clamped = b.select(above, maximum, clamped_lo);
    let delta = b.sub(clamped, minimum);

    b.output("larc", delta);
    b.finish()
}

/// The `gsm` application used in the Fig. 11 comparison.
#[must_use]
pub fn program() -> Program {
    let mut p = Program::new("gsm");
    p.add_block(short_term_filter_kernel());
    p.add_block(autocorrelation_kernel());
    p.add_block(lar_quantisation_kernel());
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_ir::interp::Evaluator;
    use std::collections::BTreeMap;

    fn gsm_mult_r(a: i32, b: i32) -> i32 {
        (((a * b) + 16384) >> 15).clamp(-32768, 32767)
    }

    fn gsm_add(a: i32, b: i32) -> i32 {
        (a + b).clamp(-32768, 32767)
    }

    #[test]
    fn short_term_filter_matches_reference_arithmetic() {
        let g = short_term_filter_kernel();
        g.validate().expect("valid graph");
        for (d, u, rp) in [
            (100, -200, 15000),
            (32767, 32767, 32767),
            (-30000, 1, -32768),
        ] {
            let mut evaluator = Evaluator::new();
            let inputs: BTreeMap<String, i32> = [
                ("d".to_string(), d),
                ("u".to_string(), u),
                ("rp".to_string(), rp),
            ]
            .into();
            let out = evaluator.eval_block(&g, &inputs).unwrap().outputs;
            assert_eq!(
                out["di"],
                gsm_add(d, gsm_mult_r(rp, u)),
                "d={d} u={u} rp={rp}"
            );
            assert_eq!(
                out["ui"],
                gsm_add(u, gsm_mult_r(rp, d)),
                "d={d} u={u} rp={rp}"
            );
        }
    }

    #[test]
    fn autocorrelation_accumulates_lagged_products() {
        let g = autocorrelation_kernel();
        g.validate().expect("valid graph");
        let mut evaluator = Evaluator::new();
        evaluator.memory.load_table(100, &[3, 5, 7, 11]);
        let inputs: BTreeMap<String, i32> = [
            ("sp".to_string(), 100),
            ("acc0".to_string(), 0),
            ("acc1".to_string(), 0),
            ("acc2".to_string(), 0),
        ]
        .into();
        let out = evaluator.eval_block(&g, &inputs).unwrap().outputs;
        // k=0: s=(3,5,7); k=1: s=(5,7,11)
        assert_eq!(out["acc0"], (3 * 3) / 2 + (5 * 5) / 2);
        assert_eq!(out["acc1"], (3 * 5) / 2 + (5 * 7) / 2);
        assert_eq!(out["acc2"], (3 * 7) / 2 + (5 * 11) / 2);
    }

    #[test]
    fn lar_quantisation_clamps_into_range() {
        let g = lar_quantisation_kernel();
        g.validate().expect("valid graph");
        let mut evaluator = Evaluator::new();
        let inputs: BTreeMap<String, i32> = [
            ("lar".to_string(), 5000),
            ("a".to_string(), 20480),
            ("bias".to_string(), 2048),
            ("min".to_string(), -32),
            ("max".to_string(), 31),
        ]
        .into();
        let out = evaluator.eval_block(&g, &inputs).unwrap().outputs;
        assert!(out["larc"] >= 0);
        assert!(out["larc"] <= 63);
    }

    #[test]
    fn program_has_three_profiled_blocks() {
        let p = program();
        assert!(p.validate().is_ok());
        assert_eq!(p.block_count(), 3);
        assert!(p.block(0).exec_count() > p.block(2).exec_count());
    }
}
