//! Graph and program statistics used by the experiment harness.

use std::collections::BTreeMap;

use crate::dfg::Dfg;
use crate::opcode::Opcode;
use crate::program::Program;
use crate::topo;

/// Summary statistics of one basic-block dataflow graph.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DfgStats {
    /// Name of the basic block.
    pub name: String,
    /// Number of operation nodes `|V|`.
    pub nodes: usize,
    /// Number of block input variables.
    pub inputs: usize,
    /// Number of block output variables.
    pub outputs: usize,
    /// Number of memory operations (which can never be part of an AFU).
    pub memory_ops: usize,
    /// Length of the longest dependency chain.
    pub depth: usize,
    /// Profiled execution count.
    pub exec_count: u64,
    /// Histogram of opcodes.
    pub opcode_histogram: BTreeMap<String, usize>,
}

/// Computes summary statistics for one graph.
#[must_use]
pub fn dfg_stats(dfg: &Dfg) -> DfgStats {
    let mut histogram: BTreeMap<String, usize> = BTreeMap::new();
    let mut memory_ops = 0;
    for (_, node) in dfg.iter_nodes() {
        *histogram.entry(node.opcode.to_string()).or_insert(0) += 1;
        if node.opcode.is_memory() {
            memory_ops += 1;
        }
    }
    DfgStats {
        name: dfg.name().to_string(),
        nodes: dfg.node_count(),
        inputs: dfg.input_count(),
        outputs: dfg.output_count(),
        memory_ops,
        depth: if dfg.node_count() == 0 {
            0
        } else {
            topo::depth(dfg)
        },
        exec_count: dfg.exec_count(),
        opcode_histogram: histogram,
    }
}

/// Summary statistics of a whole program.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ProgramStats {
    /// Name of the application.
    pub name: String,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Total static operation count.
    pub total_nodes: usize,
    /// Total dynamic operation count (static count weighted by execution frequency).
    pub dynamic_operations: u64,
    /// Largest basic block size, in nodes.
    pub largest_block: usize,
    /// Per-block statistics.
    pub per_block: Vec<DfgStats>,
}

/// Computes summary statistics for a program.
#[must_use]
pub fn program_stats(program: &Program) -> ProgramStats {
    let per_block: Vec<DfgStats> = program.blocks().iter().map(dfg_stats).collect();
    ProgramStats {
        name: program.name().to_string(),
        blocks: program.block_count(),
        total_nodes: program.total_nodes(),
        dynamic_operations: program.dynamic_operations(),
        largest_block: per_block.iter().map(|s| s.nodes).max().unwrap_or(0),
        per_block,
    }
}

/// Fraction of nodes that may legally be part of an AFU cut (i.e. not memory or already
/// collapsed AFU nodes).
#[must_use]
pub fn afu_eligible_fraction(dfg: &Dfg) -> f64 {
    if dfg.node_count() == 0 {
        return 0.0;
    }
    let eligible = dfg
        .iter_nodes()
        .filter(|(_, n)| !n.opcode.is_forbidden_in_afu())
        .count();
    eligible as f64 / dfg.node_count() as f64
}

/// Opcode mix of a graph as fractions summing to one (empty graph yields an empty map).
#[must_use]
pub fn opcode_mix(dfg: &Dfg) -> BTreeMap<Opcode, f64> {
    let mut mix = BTreeMap::new();
    let total = dfg.node_count();
    if total == 0 {
        return mix;
    }
    for (_, node) in dfg.iter_nodes() {
        *mix.entry(node.opcode).or_insert(0.0) += 1.0;
    }
    for value in mix.values_mut() {
        *value /= total as f64;
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn sample() -> Dfg {
        let mut b = DfgBuilder::new("s");
        b.exec_count(77);
        let base = b.input("base");
        let x = b.input("x");
        let v = b.load(base);
        let m = b.mul(v, x);
        let a = b.add(m, b.imm(1));
        b.output("out", a);
        b.finish()
    }

    #[test]
    fn dfg_stats_are_consistent() {
        let stats = dfg_stats(&sample());
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.inputs, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.memory_ops, 1);
        assert_eq!(stats.depth, 3);
        assert_eq!(stats.exec_count, 77);
        assert_eq!(stats.opcode_histogram["mul"], 1);
    }

    #[test]
    fn program_stats_aggregate_blocks() {
        let mut p = Program::new("app");
        p.add_block(sample());
        p.add_block(sample());
        let stats = program_stats(&p);
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.total_nodes, 6);
        assert_eq!(stats.largest_block, 3);
        assert_eq!(stats.dynamic_operations, 2 * 77 * 3);
    }

    #[test]
    fn eligibility_and_mix() {
        let g = sample();
        let fraction = afu_eligible_fraction(&g);
        assert!((fraction - 2.0 / 3.0).abs() < 1e-9);
        let mix = opcode_mix(&g);
        assert!((mix[&Opcode::Load] - 1.0 / 3.0).abs() < 1e-9);
        assert!((mix.values().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_statistics() {
        let g = Dfg::new("empty");
        let stats = dfg_stats(&g);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.depth, 0);
        assert_eq!(afu_eligible_fraction(&g), 0.0);
        assert!(opcode_mix(&g).is_empty());
    }
}
