//! Fluent construction of dataflow graphs.

use crate::dfg::{Dfg, NodeId, PortId};
use crate::node::{Node, Operand};
use crate::opcode::Opcode;

/// Fluent builder for [`Dfg`] basic blocks.
///
/// The builder is the main entry point used by the workload crate to express embedded
/// kernels as dataflow graphs. All helper methods return [`Operand`] values so that the
/// results can be fed directly into further operations.
///
/// # Example
///
/// ```
/// use ise_ir::{DfgBuilder, Opcode};
///
/// // Saturating accumulate: clamp(acc + x, -32768, 32767)
/// let mut b = DfgBuilder::new("sat_acc");
/// let acc = b.input("acc");
/// let x = b.input("x");
/// let sum = b.add(acc, x);
/// let clamped_hi = b.min(sum, b.imm(32767));
/// let clamped = b.max(clamped_hi, b.imm(-32768));
/// b.output("acc", clamped);
/// let dfg = b.finish();
/// assert_eq!(dfg.node_count(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DfgBuilder {
    dfg: Dfg,
}

impl DfgBuilder {
    /// Creates a builder for a basic block with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            dfg: Dfg::new(name),
        }
    }

    /// Sets the profiled execution count of the block being built.
    pub fn exec_count(&mut self, count: u64) -> &mut Self {
        self.dfg.set_exec_count(count);
        self
    }

    /// Declares a block input variable.
    pub fn input(&mut self, name: impl Into<String>) -> Operand {
        Operand::Input(self.dfg.add_input(name))
    }

    /// Returns an immediate operand.
    #[must_use]
    pub fn imm(&self, value: i64) -> Operand {
        Operand::Imm(value)
    }

    /// Adds a generic operation node.
    ///
    /// # Panics
    ///
    /// Panics if an operand references a node that has not been created yet.
    pub fn op(&mut self, opcode: Opcode, operands: &[Operand]) -> Operand {
        let id = self.dfg.add_node(Node::new(opcode, operands.to_vec()));
        Operand::Node(id)
    }

    /// Adds a named operation node.
    pub fn named_op(
        &mut self,
        opcode: Opcode,
        operands: &[Operand],
        name: impl Into<String>,
    ) -> Operand {
        let id = self
            .dfg
            .add_node(Node::named(opcode, operands.to_vec(), name));
        Operand::Node(id)
    }

    /// Declares a block output variable fed by `value`.
    pub fn output(&mut self, name: impl Into<String>, value: Operand) -> &mut Self {
        self.dfg.add_output(name, value);
        self
    }

    /// Finalises the builder and returns the constructed graph.
    #[must_use]
    pub fn finish(self) -> Dfg {
        self.dfg
    }

    /// Returns the identifier of the most recently created node.
    #[must_use]
    pub fn last_node(&self) -> Option<NodeId> {
        match self.dfg.node_count() {
            0 => None,
            n => Some(NodeId::new(n - 1)),
        }
    }

    /// Returns the identifier of the most recently declared input.
    #[must_use]
    pub fn last_input(&self) -> Option<PortId> {
        match self.dfg.input_count() {
            0 => None,
            n => Some(PortId::new(n - 1)),
        }
    }

    // --- arithmetic -----------------------------------------------------------------

    /// `a + b`
    pub fn add(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Add, &[a, b])
    }

    /// `a - b`
    pub fn sub(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Sub, &[a, b])
    }

    /// `a * b` (low 32 bits)
    pub fn mul(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Mul, &[a, b])
    }

    /// High half of the 64-bit product `a * b`.
    pub fn mulhi(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::MulHi, &[a, b])
    }

    /// `a * b + c`
    pub fn mac(&mut self, a: Operand, b: Operand, c: Operand) -> Operand {
        self.op(Opcode::Mac, &[a, b, c])
    }

    /// `a / b` (signed)
    pub fn div(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Div, &[a, b])
    }

    /// `a % b` (signed)
    pub fn rem(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Rem, &[a, b])
    }

    /// `-a`
    pub fn neg(&mut self, a: Operand) -> Operand {
        self.op(Opcode::Neg, &[a])
    }

    /// `|a|`
    pub fn abs(&mut self, a: Operand) -> Operand {
        self.op(Opcode::Abs, &[a])
    }

    /// `min(a, b)` (signed)
    pub fn min(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Min, &[a, b])
    }

    /// `max(a, b)` (signed)
    pub fn max(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Max, &[a, b])
    }

    // --- logic and shifts -----------------------------------------------------------

    /// `a & b`
    pub fn and(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::And, &[a, b])
    }

    /// `a | b`
    pub fn or(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Or, &[a, b])
    }

    /// `a ^ b`
    pub fn xor(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Xor, &[a, b])
    }

    /// `!a` (bitwise)
    pub fn not(&mut self, a: Operand) -> Operand {
        self.op(Opcode::Not, &[a])
    }

    /// `a << b`
    pub fn shl(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Shl, &[a, b])
    }

    /// `a >> b` (logical)
    pub fn lshr(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Lshr, &[a, b])
    }

    /// `a >> b` (arithmetic)
    pub fn ashr(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Ashr, &[a, b])
    }

    // --- comparisons and selection ----------------------------------------------------

    /// `a == b`
    pub fn eq(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Eq, &[a, b])
    }

    /// `a != b`
    pub fn ne(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Ne, &[a, b])
    }

    /// `a < b` (signed)
    pub fn lt(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Lt, &[a, b])
    }

    /// `a <= b` (signed)
    pub fn le(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Le, &[a, b])
    }

    /// `a > b` (signed)
    pub fn gt(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Gt, &[a, b])
    }

    /// `a >= b` (signed)
    pub fn ge(&mut self, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Ge, &[a, b])
    }

    /// `cond != 0 ? a : b` — the `SEL` node of the paper's Fig. 3.
    pub fn select(&mut self, cond: Operand, a: Operand, b: Operand) -> Operand {
        self.op(Opcode::Select, &[cond, a, b])
    }

    // --- width manipulation -----------------------------------------------------------

    /// Sign-extend the low 8 bits.
    pub fn sext_b(&mut self, a: Operand) -> Operand {
        self.op(Opcode::SextB, &[a])
    }

    /// Sign-extend the low 16 bits.
    pub fn sext_h(&mut self, a: Operand) -> Operand {
        self.op(Opcode::SextH, &[a])
    }

    /// Zero-extend the low 8 bits.
    pub fn zext_b(&mut self, a: Operand) -> Operand {
        self.op(Opcode::ZextB, &[a])
    }

    /// Zero-extend the low 16 bits.
    pub fn zext_h(&mut self, a: Operand) -> Operand {
        self.op(Opcode::ZextH, &[a])
    }

    /// Truncate to the low 8 bits.
    pub fn trunc_b(&mut self, a: Operand) -> Operand {
        self.op(Opcode::TruncB, &[a])
    }

    /// Truncate to the low 16 bits.
    pub fn trunc_h(&mut self, a: Operand) -> Operand {
        self.op(Opcode::TruncH, &[a])
    }

    // --- data movement and memory -------------------------------------------------------

    /// Register-to-register copy.
    pub fn copy(&mut self, a: Operand) -> Operand {
        self.op(Opcode::Copy, &[a])
    }

    /// Materialise a constant as a node (rarely needed; prefer [`DfgBuilder::imm`]).
    pub fn constant(&mut self, value: i64) -> Operand {
        self.op(Opcode::Const, &[Operand::Imm(value)])
    }

    /// Memory load from `addr`.
    pub fn load(&mut self, addr: Operand) -> Operand {
        self.op(Opcode::Load, &[addr])
    }

    /// Memory store of `value` to `addr`.
    pub fn store(&mut self, addr: Operand, value: Operand) -> Operand {
        self.op(Opcode::Store, &[addr, value])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_valid_graphs() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let d = b.sub(x, y);
        let m = b.mul(s, d);
        let clipped = b.min(m, b.imm(255));
        b.output("r", clipped);
        b.exec_count(42);
        let g = b.finish();
        assert!(g.validate().is_ok());
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.exec_count(), 42);
    }

    #[test]
    fn const_node_has_imm_operand() {
        let mut b = DfgBuilder::new("c");
        let c = b.constant(88);
        b.output("o", c);
        let g = b.finish();
        assert_eq!(g.node(NodeId::new(0)).opcode, Opcode::Const);
        assert_eq!(g.node(NodeId::new(0)).operands[0], Operand::Imm(88));
    }

    #[test]
    fn last_node_and_input_track_construction() {
        let mut b = DfgBuilder::new("t");
        assert!(b.last_node().is_none());
        assert!(b.last_input().is_none());
        let x = b.input("x");
        let _ = b.not(x);
        assert_eq!(b.last_input(), Some(PortId::new(0)));
        assert_eq!(b.last_node(), Some(NodeId::new(0)));
    }

    #[test]
    fn memory_helpers_emit_memory_ops() {
        let mut b = DfgBuilder::new("mem");
        let base = b.input("base");
        let addr = b.add(base, b.imm(4));
        let v = b.load(addr);
        let v2 = b.shl(v, b.imm(1));
        b.store(addr, v2);
        let g = b.finish();
        assert!(g.has_memory_ops());
        assert_eq!(g.count_opcode(Opcode::Load), 1);
        assert_eq!(g.count_opcode(Opcode::Store), 1);
    }

    #[test]
    fn all_helper_methods_produce_expected_opcodes() {
        let mut b = DfgBuilder::new("ops");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let checks = [
            (b.add(x, y), Opcode::Add),
            (b.sub(x, y), Opcode::Sub),
            (b.mul(x, y), Opcode::Mul),
            (b.mulhi(x, y), Opcode::MulHi),
            (b.mac(x, y, z), Opcode::Mac),
            (b.div(x, y), Opcode::Div),
            (b.rem(x, y), Opcode::Rem),
            (b.neg(x), Opcode::Neg),
            (b.abs(x), Opcode::Abs),
            (b.min(x, y), Opcode::Min),
            (b.max(x, y), Opcode::Max),
            (b.and(x, y), Opcode::And),
            (b.or(x, y), Opcode::Or),
            (b.xor(x, y), Opcode::Xor),
            (b.not(x), Opcode::Not),
            (b.shl(x, y), Opcode::Shl),
            (b.lshr(x, y), Opcode::Lshr),
            (b.ashr(x, y), Opcode::Ashr),
            (b.eq(x, y), Opcode::Eq),
            (b.ne(x, y), Opcode::Ne),
            (b.lt(x, y), Opcode::Lt),
            (b.le(x, y), Opcode::Le),
            (b.gt(x, y), Opcode::Gt),
            (b.ge(x, y), Opcode::Ge),
            (b.select(x, y, z), Opcode::Select),
            (b.sext_b(x), Opcode::SextB),
            (b.sext_h(x), Opcode::SextH),
            (b.zext_b(x), Opcode::ZextB),
            (b.zext_h(x), Opcode::ZextH),
            (b.trunc_b(x), Opcode::TruncB),
            (b.trunc_h(x), Opcode::TruncH),
            (b.copy(x), Opcode::Copy),
        ];
        let g = b.finish();
        for (operand, opcode) in checks {
            let id = operand.as_node().expect("helpers return node operands");
            assert_eq!(g.node(id).opcode, opcode);
        }
        assert!(g.validate().is_ok());
    }
}
