//! Dataflow nodes and operands.

use std::fmt;

use crate::dfg::{NodeId, PortId};
use crate::opcode::Opcode;

/// A use of a value by an operation node.
///
/// Operands are the edges `E ∪ E⁺` of the paper's graph `G⁺`: they either reference
/// another operation node (`V`), a basic-block input variable (`V⁺`), or an immediate
/// constant that is encoded in the instruction word and therefore never consumes a
/// register-file read port.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Operand {
    /// The result of another operation node in the same basic block.
    Node(NodeId),
    /// A basic-block input variable (a value produced outside the block and read from
    /// the register file).
    Input(PortId),
    /// An immediate constant. Immediates do not contribute to `IN(S)`.
    Imm(i64),
}

impl Operand {
    /// Returns the referenced node, if the operand is a node result.
    #[must_use]
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            Operand::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Returns the referenced input variable, if any.
    #[must_use]
    pub fn as_input(self) -> Option<PortId> {
        match self {
            Operand::Input(p) => Some(p),
            _ => None,
        }
    }

    /// Returns the immediate value, if the operand is an immediate.
    #[must_use]
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Imm(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` if the operand can consume a register-file read port when its
    /// producer lies outside a cut (i.e. it is not an immediate).
    #[must_use]
    pub fn is_port_consuming(self) -> bool {
        !matches!(self, Operand::Imm(_))
    }
}

impl From<NodeId> for Operand {
    fn from(n: NodeId) -> Self {
        Operand::Node(n)
    }
}

impl From<PortId> for Operand {
    fn from(p: PortId) -> Self {
        Operand::Input(p)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Node(n) => write!(f, "%{}", n.index()),
            Operand::Input(p) => write!(f, "in{}", p.index()),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// An operation node of the dataflow graph (an element of `V`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Node {
    /// The operation performed by the node.
    pub opcode: Opcode,
    /// The value operands, in positional order.
    pub operands: Vec<Operand>,
    /// Optional symbolic name, used for debugging and Graphviz output.
    pub name: Option<String>,
}

impl Node {
    /// Creates a node with the given opcode and operands.
    #[must_use]
    pub fn new(opcode: Opcode, operands: Vec<Operand>) -> Self {
        Node {
            opcode,
            operands,
            name: None,
        }
    }

    /// Creates a named node.
    #[must_use]
    pub fn named(opcode: Opcode, operands: Vec<Operand>, name: impl Into<String>) -> Self {
        Node {
            opcode,
            operands,
            name: Some(name.into()),
        }
    }

    /// Iterates over the operands that reference other operation nodes.
    pub fn node_operands(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.operands.iter().filter_map(|o| o.as_node())
    }

    /// Iterates over the operands that reference block input variables.
    pub fn input_operands(&self) -> impl Iterator<Item = PortId> + '_ {
        self.operands.iter().filter_map(|o| o.as_input())
    }

    /// Returns `true` if this node may not be included in an AFU cut.
    #[must_use]
    pub fn is_forbidden_in_afu(&self) -> bool {
        self.opcode.is_forbidden_in_afu()
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        for (i, operand) in self.operands.iter().enumerate() {
            if i == 0 {
                write!(f, " {operand}")?;
            } else {
                write!(f, ", {operand}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_accessors() {
        let n = Operand::Node(NodeId::new(3));
        let i = Operand::Input(PortId::new(1));
        let c = Operand::Imm(-7);
        assert_eq!(n.as_node(), Some(NodeId::new(3)));
        assert_eq!(n.as_input(), None);
        assert_eq!(i.as_input(), Some(PortId::new(1)));
        assert_eq!(c.as_imm(), Some(-7));
        assert!(n.is_port_consuming());
        assert!(i.is_port_consuming());
        assert!(!c.is_port_consuming());
    }

    #[test]
    fn node_operand_iterators() {
        let node = Node::new(
            Opcode::Select,
            vec![
                Operand::Input(PortId::new(0)),
                Operand::Node(NodeId::new(4)),
                Operand::Imm(0),
            ],
        );
        assert_eq!(
            node.node_operands().collect::<Vec<_>>(),
            vec![NodeId::new(4)]
        );
        assert_eq!(
            node.input_operands().collect::<Vec<_>>(),
            vec![PortId::new(0)]
        );
    }

    #[test]
    fn display_is_readable() {
        let node = Node::new(
            Opcode::Add,
            vec![Operand::Input(PortId::new(0)), Operand::Imm(4)],
        );
        assert_eq!(node.to_string(), "add in0, #4");
    }
}
