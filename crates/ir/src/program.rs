//! Whole-application containers: profiled basic blocks and AFU specifications.

use crate::dfg::Dfg;

/// Specification of an application-specific functional unit extracted from a cut.
///
/// The `graph` field is a self-contained dataflow graph whose input variables correspond
/// positionally to the operands of the [`crate::Opcode::Afu`] nodes that invoke it, and
/// whose output variables correspond to the AFU's result ports.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AfuSpec {
    /// Identifier referenced by [`crate::Opcode::Afu`] nodes.
    pub id: u16,
    /// Human-readable name of the special instruction.
    pub name: String,
    /// The collapsed subgraph implemented by the functional unit.
    pub graph: Dfg,
}

impl AfuSpec {
    /// Number of register-file read ports used by the AFU.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.graph.input_count()
    }

    /// Number of register-file write ports used by the AFU.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.graph.output_count()
    }
}

/// A profiled application: a collection of basic blocks (each a [`Dfg`] with an execution
/// count) plus the library of AFUs selected so far.
///
/// This is the object on which the *selection* algorithms of the paper (Problem 2)
/// operate: they pick up to `Ninstr` cuts across all blocks, weighting each cut's merit
/// by its block's execution count.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Program {
    name: String,
    blocks: Vec<Dfg>,
    afus: Vec<AfuSpec>,
}

impl Program {
    /// Creates an empty program.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            blocks: Vec::new(),
            afus: Vec::new(),
        }
    }

    /// Name of the application.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a basic block and returns its index.
    pub fn add_block(&mut self, block: Dfg) -> usize {
        self.blocks.push(block);
        self.blocks.len() - 1
    }

    /// The program's basic blocks.
    #[must_use]
    pub fn blocks(&self) -> &[Dfg] {
        &self.blocks
    }

    /// Mutable access to the program's basic blocks (used by transformation passes).
    pub fn blocks_mut(&mut self) -> &mut [Dfg] {
        &mut self.blocks
    }

    /// Returns the block at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn block(&self, index: usize) -> &Dfg {
        &self.blocks[index]
    }

    /// Number of basic blocks.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Registers an AFU specification, assigning it the next free identifier.
    pub fn add_afu(&mut self, name: impl Into<String>, graph: Dfg) -> u16 {
        let id = u16::try_from(self.afus.len()).expect("fewer than 65536 AFUs");
        self.afus.push(AfuSpec {
            id,
            name: name.into(),
            graph,
        });
        id
    }

    /// The AFU library selected so far.
    #[must_use]
    pub fn afus(&self) -> &[AfuSpec] {
        &self.afus
    }

    /// Total number of operation nodes across all blocks.
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.blocks.iter().map(Dfg::node_count).sum()
    }

    /// Sum of `exec_count * node_count` over all blocks: a rough proxy for the dynamic
    /// operation count of the application.
    #[must_use]
    pub fn dynamic_operations(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| b.exec_count() * b.node_count() as u64)
            .sum()
    }

    /// Validates every basic block.
    ///
    /// # Errors
    ///
    /// Propagates the first [`crate::IrError`] found.
    pub fn validate(&self) -> Result<(), crate::IrError> {
        for block in &self.blocks {
            block.validate()?;
        }
        for afu in &self.afus {
            afu.graph.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn simple_block(name: &str, count: u64) -> Dfg {
        let mut b = DfgBuilder::new(name);
        let x = b.input("x");
        let y = b.add(x, b.imm(1));
        b.output("y", y);
        b.exec_count(count);
        b.finish()
    }

    #[test]
    fn program_accounting() {
        let mut p = Program::new("app");
        p.add_block(simple_block("bb0", 10));
        p.add_block(simple_block("bb1", 5));
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.total_nodes(), 2);
        assert_eq!(p.dynamic_operations(), 15);
        assert!(p.validate().is_ok());
        assert_eq!(p.name(), "app");
        assert_eq!(p.block(1).name(), "bb1");
    }

    #[test]
    fn afu_registration_assigns_sequential_ids() {
        let mut p = Program::new("app");
        let id0 = p.add_afu("afu_a", simple_block("a", 1));
        let id1 = p.add_afu("afu_b", simple_block("b", 1));
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        assert_eq!(p.afus()[1].name, "afu_b");
        assert_eq!(p.afus()[0].input_count(), 1);
        assert_eq!(p.afus()[0].output_count(), 1);
    }
}
