//! Error types of the IR crate.

use std::error::Error;
use std::fmt;

use crate::dfg::{NodeId, PortId};
use crate::opcode::Opcode;

/// Structural error reported by [`crate::Dfg::validate`] and by the reference
/// interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// A node has a number of operands inconsistent with its opcode.
    ArityMismatch {
        /// Name of the offending basic block.
        block: String,
        /// Offending node.
        node: NodeId,
        /// The node's opcode.
        opcode: Opcode,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        found: usize,
    },
    /// An operand references a node defined later in the block (the graph would be
    /// cyclic or not in def-before-use order).
    ForwardReference {
        /// Name of the offending basic block.
        block: String,
        /// Offending node.
        node: NodeId,
        /// The referenced (later) node.
        operand: NodeId,
    },
    /// An operand references a node that produces no value (a store).
    UseOfVoidValue {
        /// Name of the offending basic block.
        block: String,
        /// Offending node.
        node: NodeId,
        /// The referenced void-producing node.
        operand: NodeId,
    },
    /// An operand references an input variable that was never declared.
    UnknownInput {
        /// Name of the offending basic block.
        block: String,
        /// Offending node.
        node: NodeId,
        /// The undeclared input port.
        port: PortId,
    },
    /// An output variable references a non-existent value.
    UnknownOutputSource {
        /// Name of the offending basic block.
        block: String,
        /// Name of the offending output variable.
        output: String,
    },
    /// The interpreter was asked to read an input variable for which no value was bound.
    MissingInputValue {
        /// Name of the offending basic block.
        block: String,
        /// Name of the unbound input variable.
        input: String,
    },
    /// The interpreter executed a division or remainder by zero.
    DivisionByZero {
        /// Name of the offending basic block.
        block: String,
        /// Offending node.
        node: NodeId,
    },
    /// The interpreter encountered an AFU node for which no specification was supplied.
    UnknownAfu {
        /// Name of the offending basic block.
        block: String,
        /// Identifier of the missing AFU specification.
        afu: u16,
    },
    /// The interpreter encountered an opaque operation (call, address computation, …)
    /// whose semantics the IR does not model.
    CannotInterpret {
        /// Name of the offending basic block.
        block: String,
        /// Offending node.
        node: NodeId,
        /// The uninterpretable opcode.
        opcode: Opcode,
    },
    /// The graph contains a dependency cycle, so no topological ordering exists.
    ///
    /// Graphs built through [`crate::Dfg::add_node`] are acyclic by construction; this
    /// is only reachable for graphs assembled from untrusted serialised data.
    Cyclic {
        /// Name of the offending basic block.
        block: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ArityMismatch {
                block,
                node,
                opcode,
                expected,
                found,
            } => write!(
                f,
                "node {node} in block `{block}`: opcode {opcode} expects {expected} operands, found {found}"
            ),
            IrError::ForwardReference { block, node, operand } => write!(
                f,
                "node {node} in block `{block}` references later node {operand}"
            ),
            IrError::UseOfVoidValue { block, node, operand } => write!(
                f,
                "node {node} in block `{block}` uses the result of {operand}, which produces no value"
            ),
            IrError::UnknownInput { block, node, port } => write!(
                f,
                "node {node} in block `{block}` reads undeclared input {port}"
            ),
            IrError::UnknownOutputSource { block, output } => write!(
                f,
                "output `{output}` of block `{block}` references a non-existent value"
            ),
            IrError::MissingInputValue { block, input } => write!(
                f,
                "no value bound for input `{input}` of block `{block}`"
            ),
            IrError::DivisionByZero { block, node } => {
                write!(f, "division by zero at node {node} in block `{block}`")
            }
            IrError::UnknownAfu { block, afu } => {
                write!(f, "block `{block}` uses AFU {afu} but no specification was provided")
            }
            IrError::CannotInterpret { block, node, opcode } => write!(
                f,
                "node {node} in block `{block}` has opaque opcode {opcode}, which cannot be interpreted"
            ),
            IrError::Cyclic { block } => {
                write!(f, "block `{block}` contains a dependency cycle")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_context() {
        let e = IrError::ArityMismatch {
            block: "bb0".into(),
            node: NodeId::new(3),
            opcode: Opcode::Add,
            expected: 2,
            found: 1,
        };
        let text = e.to_string();
        assert!(text.contains("bb0"));
        assert!(text.contains("add"));
        assert!(text.contains('2'));

        let e = IrError::DivisionByZero {
            block: "bb1".into(),
            node: NodeId::new(0),
        };
        assert!(e.to_string().contains("division by zero"));
    }
}
