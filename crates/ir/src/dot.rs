//! Graphviz export of dataflow graphs.
//!
//! The export mirrors the visual conventions of the paper's Fig. 3: operation nodes are
//! ellipses labelled by their mnemonic, input/output variables are boxes, and an optional
//! highlighted node set (a candidate cut `S`) is drawn with a filled background so that
//! chosen instruction-set extensions can be inspected visually.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::dfg::{Dfg, NodeId};
use crate::node::Operand;

/// Options controlling [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Nodes drawn with a filled background (typically a candidate cut).
    pub highlight: BTreeSet<NodeId>,
    /// Label printed in the graph header.
    pub title: Option<String>,
    /// When true, immediates are shown as separate small nodes instead of being inlined
    /// in the operation label.
    pub expand_immediates: bool,
}

impl DotOptions {
    /// Creates default options.
    #[must_use]
    pub fn new() -> Self {
        DotOptions::default()
    }

    /// Highlights the given nodes.
    #[must_use]
    pub fn highlight(mut self, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        self.highlight = nodes.into_iter().collect();
        self
    }

    /// Sets the graph title.
    #[must_use]
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }
}

/// Renders the graph in Graphviz `dot` syntax.
#[must_use]
pub fn to_dot(dfg: &Dfg, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\"];");
    if let Some(title) = &options.title {
        let _ = writeln!(out, "  label=\"{title}\";");
        let _ = writeln!(out, "  labelloc=t;");
    }
    for (id, var) in dfg.iter_inputs() {
        let _ = writeln!(
            out,
            "  in{} [shape=box, style=dashed, label=\"{}\"];",
            id.index(),
            var.name
        );
    }
    for (id, node) in dfg.iter_nodes() {
        let mut label = node.opcode.to_string();
        if !options.expand_immediates {
            for operand in &node.operands {
                if let Operand::Imm(v) = operand {
                    let _ = write!(label, " {v}");
                }
            }
        }
        if let Some(name) = &node.name {
            let _ = write!(label, "\\n{name}");
        }
        let style = if options.highlight.contains(&id) {
            ", style=filled, fillcolor=lightblue"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} [shape=ellipse, label=\"{label}\"{style}];",
            id.index()
        );
    }
    for (id, node) in dfg.iter_nodes() {
        for (slot, operand) in node.operands.iter().enumerate() {
            match operand {
                Operand::Node(src) => {
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{slot}\"];",
                        src.index(),
                        id.index()
                    );
                }
                Operand::Input(src) => {
                    let _ = writeln!(
                        out,
                        "  in{} -> n{} [label=\"{slot}\"];",
                        src.index(),
                        id.index()
                    );
                }
                Operand::Imm(v) => {
                    if options.expand_immediates {
                        let imm_name = format!("imm_{}_{}", id.index(), slot);
                        let _ = writeln!(out, "  {imm_name} [shape=plaintext, label=\"{v}\"];");
                        let _ =
                            writeln!(out, "  {imm_name} -> n{} [label=\"{slot}\"];", id.index());
                    }
                }
            }
        }
    }
    for (i, output) in dfg.iter_outputs().enumerate() {
        let _ = writeln!(
            out,
            "  out{i} [shape=box, style=dashed, label=\"{}\"];",
            output.name
        );
        match output.source {
            Operand::Node(n) => {
                let _ = writeln!(out, "  n{} -> out{i};", n.index());
            }
            Operand::Input(p) => {
                let _ = writeln!(out, "  in{} -> out{i};", p.index());
            }
            Operand::Imm(v) => {
                let _ = writeln!(out, "  imm_out{i} [shape=plaintext, label=\"{v}\"];");
                let _ = writeln!(out, "  imm_out{i} -> out{i};");
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn sample() -> Dfg {
        let mut b = DfgBuilder::new("sample");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.add(x, y);
        let t = b.shl(s, b.imm(3));
        b.output("out", t);
        b.finish()
    }

    #[test]
    fn dot_contains_nodes_edges_and_ports() {
        let g = sample();
        let dot = to_dot(&g, &DotOptions::new().title("example"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"example\""));
        assert!(dot.contains("in0 [shape=box"));
        assert!(dot.contains("n0 [shape=ellipse, label=\"add\""));
        assert!(dot.contains("n1 [shape=ellipse, label=\"shl 3\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> out0;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn highlighting_marks_cut_nodes() {
        let g = sample();
        let dot = to_dot(&g, &DotOptions::new().highlight([NodeId::new(1)]));
        assert!(dot.contains("n1 [shape=ellipse, label=\"shl 3\", style=filled"));
        assert!(!dot.contains("n0 [shape=ellipse, label=\"add\", style=filled"));
    }

    #[test]
    fn expanded_immediates_get_their_own_nodes() {
        let g = sample();
        let mut options = DotOptions::new();
        options.expand_immediates = true;
        let dot = to_dot(&g, &options);
        assert!(dot.contains("imm_1_1 [shape=plaintext, label=\"3\"]"));
    }
}
