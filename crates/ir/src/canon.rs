//! Canonical (isomorphism-invariant) structural certificates and node ordering.
//!
//! The search kernel walks nodes in a consumers-first topological order. For
//! corpus-scale memoization we want two structurally isomorphic blocks — same
//! opcodes, same edge structure, different node numbering — to walk *the same*
//! search tree, so that one enumeration can answer both exactly. That requires
//! the walk order to be a structural invariant of the graph rather than an
//! artifact of node insertion order.
//!
//! This module computes per-node and per-input-port **certificates** by
//! Weisfeiler–Lehman-style refinement over the labelled graph (opcode,
//! AFU-forbidden flag, output-source flag, immediate values, positional edge
//! structure, both upstream and downstream), then derives a consumers-first
//! topological order that breaks ties by certificate. Certificates are
//! isomorphism-invariant by construction; node indices enter only as a final
//! tie-break between certificate-equal candidates, so the order is invariant
//! whenever refinement separates the nodes (the overwhelmingly common case for
//! opcode-labelled DAGs). Consumers that need a *guarantee* rather than a
//! likelihood compare full canonical serializations byte-for-byte — see
//! `ise-core`'s `structural` module — so a tie-break that falls back to indices
//! can only reduce sharing, never correctness.
//!
//! All hashing is hand-rolled (xor/multiply mixing with a splitmix64
//! finalizer): the values feed a committed canonical order, so they must be
//! stable across toolchain versions, which the standard library hasher does not
//! promise.

use crate::dfg::{Dfg, NodeId};
use crate::node::Operand;

/// Structural certificates for every operation node and input port of a [`Dfg`].
///
/// Two isomorphic graphs assign equal certificates to corresponding nodes and
/// ports. The converse does not hold in general (hash collisions, or
/// WL-indistinguishable non-isomorphic structures), which is why exactness
/// arguments must be grounded in byte comparison of canonical serializations,
/// not in certificate equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificates {
    /// Certificate of each operation node, indexed by node index.
    pub nodes: Vec<u64>,
    /// Certificate of each block input port, indexed by port index.
    pub ports: Vec<u64>,
    /// Number of refinement rounds until the partition stabilized.
    pub rounds: u32,
}

const NODE_SEED: u64 = 0x5152_5eed_0000_0001;
const PORT_SEED: u64 = 0x5152_5eed_0000_0002;
const IMM_TAG: u64 = 0x5152_5eed_0000_0003;
const INPUT_TAG: u64 = 0x5152_5eed_0000_0004;
const NODE_TAG: u64 = 0x5152_5eed_0000_0005;

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v.wrapping_mul(0x2545_f491_4f6c_dd1d))
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h = mix(h, u64::from(*b));
    }
    h
}

/// Folds a multiset of hashes order-independently: sort, then mix in sequence.
fn fold_multiset(seed: u64, values: &mut Vec<u64>) -> u64 {
    values.sort_unstable();
    let mut h = seed;
    for &v in values.iter() {
        h = mix(h, v);
    }
    values.clear();
    h
}

/// Counts distinct values in a slice (allocates a scratch copy).
fn distinct(values: &[u64]) -> usize {
    let mut copy = values.to_vec();
    copy.sort_unstable();
    copy.dedup();
    copy.len()
}

/// Computes isomorphism-invariant certificates for all nodes and input ports.
///
/// The initial node label covers everything the search kernel reads locally:
/// opcode (including AFU id/output fields, via the stable `Debug` rendering),
/// the AFU-forbidden flag, the output-source flag, and the positional operand
/// skeleton with immediate values. Refinement then propagates neighbour
/// certificates both downstream (operand edges, positional) and upstream
/// (consumer edges, as a multiset of `(consumer certificate, operand slot)`
/// pairs) until the induced partition of nodes and ports stops splitting.
#[must_use]
pub fn certificates(dfg: &Dfg) -> Certificates {
    let n = dfg.node_count();
    let p = dfg.input_count();

    // Uses of each node and each port: (consumer node index, operand slot).
    let mut node_uses: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    let mut port_uses: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
    for (id, node) in dfg.iter_nodes() {
        for (slot, operand) in node.operands.iter().enumerate() {
            match *operand {
                Operand::Node(m) => node_uses[m.index()].push((id.index(), slot)),
                Operand::Input(port) => port_uses[port.index()].push((id.index(), slot)),
                Operand::Imm(_) => {}
            }
        }
    }

    // Initial labels: local structure only.
    let mut nodes: Vec<u64> = Vec::with_capacity(n);
    for (id, node) in dfg.iter_nodes() {
        let mut h = mix(NODE_SEED, hash_str(&format!("{:?}", node.opcode)));
        h = mix(h, u64::from(node.is_forbidden_in_afu()));
        h = mix(h, u64::from(dfg.is_output_source(id)));
        for operand in &node.operands {
            h = match *operand {
                Operand::Node(_) => mix(h, NODE_TAG),
                Operand::Input(_) => mix(h, INPUT_TAG),
                Operand::Imm(v) => mix(mix(h, IMM_TAG), v as u64),
            };
        }
        nodes.push(h);
    }
    let mut ports: Vec<u64> = vec![PORT_SEED; p];

    let mut classes = distinct(&nodes) + distinct(&ports);
    let mut rounds = 0u32;
    let max_rounds = (n + p + 1) as u32;
    let mut scratch: Vec<u64> = Vec::new();

    while rounds < max_rounds {
        rounds += 1;
        // Ports first: a port's identity is the multiset of its uses.
        let new_ports: Vec<u64> = (0..p)
            .map(|i| {
                for &(consumer, slot) in &port_uses[i] {
                    scratch.push(mix(nodes[consumer], slot as u64));
                }
                fold_multiset(PORT_SEED, &mut scratch)
            })
            .collect();
        let new_nodes: Vec<u64> = dfg
            .iter_nodes()
            .map(|(id, node)| {
                let mut h = mix(NODE_SEED, nodes[id.index()]);
                for operand in &node.operands {
                    h = match *operand {
                        Operand::Node(m) => mix(h, nodes[m.index()]),
                        Operand::Input(port) => mix(h, new_ports[port.index()]),
                        Operand::Imm(v) => mix(mix(h, IMM_TAG), v as u64),
                    };
                }
                for &(consumer, slot) in &node_uses[id.index()] {
                    scratch.push(mix(nodes[consumer], slot as u64));
                }
                mix(h, fold_multiset(NODE_SEED, &mut scratch))
            })
            .collect();
        let new_classes = distinct(&new_nodes) + distinct(&new_ports);
        nodes = new_nodes;
        ports = new_ports;
        if new_classes <= classes {
            break;
        }
        classes = new_classes;
    }

    Certificates {
        nodes,
        ports,
        rounds,
    }
}

/// Returns a consumers-first topological order with certificate tie-breaks.
///
/// Like [`crate::topo::consumers_first`], every node appears before all of its
/// producers; unlike it, the choice among simultaneously ready nodes is made by
/// smallest `(certificate, index)` rather than by insertion order, so the order
/// is a structural invariant whenever the certificates separate the candidates.
///
/// # Panics
///
/// Panics if the graph is cyclic, which cannot happen for graphs built through
/// [`Dfg::add_node`]. Callers holding untrusted serialised graphs should run
/// [`Dfg::validate`] first, as the engine drivers do.
#[must_use]
pub fn canonical_consumers_first(dfg: &Dfg) -> Vec<NodeId> {
    canonical_consumers_first_with(dfg, &certificates(dfg))
}

/// [`canonical_consumers_first`] with precomputed certificates.
///
/// # Panics
///
/// Panics if the graph is cyclic (see [`canonical_consumers_first`]).
#[must_use]
pub fn canonical_consumers_first_with(dfg: &Dfg, certs: &Certificates) -> Vec<NodeId> {
    let n = dfg.node_count();
    assert_eq!(certs.nodes.len(), n, "certificates do not match graph");
    // Kahn on the reversed graph: a node is ready once all its consumers are
    // placed. Blocks are small, so a linear scan per step is fine.
    let mut remaining_consumers: Vec<usize> = (0..n)
        .map(|i| dfg.consumers(NodeId::new(i)).len())
        .collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_consumers[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while !ready.is_empty() {
        let mut best = 0;
        for (slot, &candidate) in ready.iter().enumerate().skip(1) {
            let b = ready[best];
            if (certs.nodes[candidate], candidate) < (certs.nodes[b], b) {
                best = slot;
            }
        }
        let chosen = ready.swap_remove(best);
        order.push(NodeId::new(chosen));
        for operand in &dfg.node(NodeId::new(chosen)).operands {
            if let Operand::Node(m) = *operand {
                let slot = &mut remaining_consumers[m.index()];
                *slot -= 1;
                if *slot == 0 {
                    ready.push(m.index());
                }
            }
        }
    }
    assert_eq!(order.len(), n, "cyclic graph in canonical ordering");
    order
}

/// Returns a canonical numbering of the input ports.
///
/// Ports are ordered by `(certificate, index)`; the result maps canonical port
/// position to original port index.
#[must_use]
pub fn canonical_port_order(certs: &Certificates) -> Vec<usize> {
    let mut order: Vec<usize> = (0..certs.ports.len()).collect();
    order.sort_by_key(|&i| (certs.ports[i], i));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::opcode::Opcode;
    use crate::topo::is_consumers_first;

    fn mac() -> Dfg {
        // out = ((a * b) >> 2) + (a * b + c)   — shares the multiply.
        let mut b = DfgBuilder::new("mac");
        let a = b.input("a");
        let bb = b.input("b");
        let c = b.input("c");
        let mul = b.op(Opcode::Mul, &[a, bb]);
        let two = b.imm(2);
        let shr = b.op(Opcode::Lshr, &[mul, two]);
        let add1 = b.op(Opcode::Add, &[mul, c]);
        let sum = b.op(Opcode::Add, &[shr, add1]);
        b.output("out", sum);
        b.finish()
    }

    #[test]
    fn canonical_order_is_consumers_first() {
        let dfg = mac();
        let order = canonical_consumers_first(&dfg);
        assert!(is_consumers_first(&dfg, &order));
        assert_eq!(order.len(), dfg.node_count());
    }

    #[test]
    fn certificates_separate_distinct_structures() {
        let dfg = mac();
        let certs = certificates(&dfg);
        // All four nodes play structurally different roles here.
        assert_eq!(distinct(&certs.nodes), 4);
        // `a` and `b` feed the same multiply symmetrically but `a`/`b` both feed
        // only the multiply while `c` feeds the add: at least two port classes.
        assert!(distinct(&certs.ports) >= 2);
    }

    #[test]
    fn certificates_are_insertion_order_invariant() {
        // Same graph built with sibling subtrees in swapped insertion order.
        let build = |swap: bool| {
            let mut b = DfgBuilder::new("pair");
            let x = b.input("x");
            let y = b.input("y");
            let one = b.imm(1);
            let seven = b.imm(7);
            let (first, second) = if swap {
                let s = b.op(Opcode::Shl, &[y, one]);
                let a = b.op(Opcode::Add, &[x, seven]);
                (a, s)
            } else {
                let a = b.op(Opcode::Add, &[x, seven]);
                let s = b.op(Opcode::Shl, &[y, one]);
                (a, s)
            };
            let out = b.op(Opcode::Xor, &[first, second]);
            b.output("out", out);
            b.finish()
        };
        let g0 = build(false);
        let g1 = build(true);
        let c0 = certificates(&g0);
        let c1 = certificates(&g1);
        let mut s0 = c0.nodes.clone();
        let mut s1 = c1.nodes.clone();
        s0.sort_unstable();
        s1.sort_unstable();
        assert_eq!(s0, s1, "node certificate multisets must match");
        // The canonical orders must pick corresponding nodes at every position.
        let o0 = canonical_consumers_first_with(&g0, &c0);
        let o1 = canonical_consumers_first_with(&g1, &c1);
        let k0: Vec<u64> = o0.iter().map(|id| c0.nodes[id.index()]).collect();
        let k1: Vec<u64> = o1.iter().map(|id| c1.nodes[id.index()]).collect();
        assert_eq!(k0, k1);
    }

    #[test]
    fn immediates_distinguish_nodes() {
        let build = |imm: i64| {
            let mut b = DfgBuilder::new("imm");
            let x = b.input("x");
            let k = b.imm(imm);
            let y = b.op(Opcode::Add, &[x, k]);
            b.output("out", y);
            b.finish()
        };
        let c7 = certificates(&build(7));
        let c8 = certificates(&build(8));
        assert_ne!(c7.nodes, c8.nodes);
    }
}
