//! The per-basic-block dataflow graph `G⁺`.

use std::fmt;

use crate::error::IrError;
use crate::node::{Node, Operand};
use crate::opcode::Opcode;

/// Index of an operation node (`V`) within a [`Dfg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index fits in u32"))
    }

    /// Raw index of the node within its graph.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Index of a block input variable (an element of `V⁺`) within a [`Dfg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct PortId(u32);

impl PortId {
    /// Creates a port identifier from a raw index.
    #[must_use]
    pub fn new(index: usize) -> Self {
        PortId(u32::try_from(index).expect("port index fits in u32"))
    }

    /// Raw index of the input variable within its graph.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

/// A block input variable: a value produced outside the basic block and read from the
/// register file by the operations that use it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct InputVar {
    /// Symbolic name of the variable.
    pub name: String,
}

/// A block output variable: a value produced inside the basic block that is live after
/// it (used by other basic blocks) and therefore written back to the register file.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct OutputVar {
    /// Symbolic name of the variable.
    pub name: String,
    /// The value written to the output variable.
    pub source: Operand,
}

/// The dataflow graph `G⁺(V ∪ V⁺, E ∪ E⁺)` of one basic block.
///
/// Operation nodes (`V`) are stored in insertion order and referenced by [`NodeId`];
/// input variables (`V⁺`) by [`PortId`]. Because operands may only reference already
/// inserted nodes, the node vector is always in a producers-before-consumers
/// (def-before-use) order and the graph is acyclic by construction.
///
/// The graph also records the basic block's profiled execution count, which the
/// selection algorithms use to weight per-execution cycle savings (Section 7).
///
/// # Wire format
///
/// The serde implementations are hand-written: only the primary data (`name`,
/// `nodes`, `inputs`, `outputs`, `exec_count`) crosses a process boundary. The
/// derived use-lists are recomputed on deserialisation, so a graph read from
/// untrusted JSON can never carry stale or inconsistent consumer data — every
/// entry point gets the invariant for free instead of having to remember to
/// rebuild it.
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<InputVar>,
    outputs: Vec<OutputVar>,
    /// consumers[i] lists the operation nodes that use node i as an operand.
    consumers: Vec<Vec<NodeId>>,
    /// input_consumers[p] lists the operation nodes that read input variable p.
    input_consumers: Vec<Vec<NodeId>>,
    exec_count: u64,
}

impl serde::Serialize for Dfg {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("name".to_string(), serde::Serialize::to_value(&self.name)),
            ("nodes".to_string(), serde::Serialize::to_value(&self.nodes)),
            (
                "inputs".to_string(),
                serde::Serialize::to_value(&self.inputs),
            ),
            (
                "outputs".to_string(),
                serde::Serialize::to_value(&self.outputs),
            ),
            (
                "exec_count".to_string(),
                serde::Serialize::to_value(&self.exec_count),
            ),
        ])
    }
}

impl<'de> serde::Deserialize<'de> for Dfg {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = serde::expect_object(value, "Dfg")?;
        let mut dfg = Dfg {
            name: serde::expect_field(fields, "name", "Dfg")?,
            nodes: serde::expect_field(fields, "nodes", "Dfg")?,
            inputs: serde::expect_field(fields, "inputs", "Dfg")?,
            outputs: serde::expect_field(fields, "outputs", "Dfg")?,
            consumers: Vec::new(),
            input_consumers: Vec::new(),
            exec_count: serde::expect_field(fields, "exec_count", "Dfg")?,
        };
        // Out-of-range operand references (possible in hostile payloads) are
        // skipped here and reported precisely by `validate`.
        dfg.rebuild_uses();
        Ok(dfg)
    }
}

impl Dfg {
    /// Creates an empty graph with the given name and an execution count of one.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            consumers: Vec::new(),
            input_consumers: Vec::new(),
            exec_count: 1,
        }
    }

    /// Name of the basic block.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Profiled execution count of the basic block.
    #[must_use]
    pub fn exec_count(&self) -> u64 {
        self.exec_count
    }

    /// Sets the profiled execution count of the basic block.
    pub fn set_exec_count(&mut self, count: u64) {
        self.exec_count = count;
    }

    /// Renames the basic block.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of operation nodes `|V|`.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of block input variables.
    #[must_use]
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of block output variables.
    #[must_use]
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the node with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the input variable with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier does not belong to this graph.
    #[must_use]
    pub fn input(&self, id: PortId) -> &InputVar {
        &self.inputs[id.index()]
    }

    /// Iterates over `(NodeId, &Node)` pairs in insertion (def-before-use) order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// Iterates over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + 'static {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over all input variable identifiers.
    pub fn input_ids(&self) -> impl Iterator<Item = PortId> + 'static {
        (0..self.inputs.len()).map(PortId::new)
    }

    /// Iterates over the block input variables.
    pub fn iter_inputs(&self) -> impl Iterator<Item = (PortId, &InputVar)> + '_ {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, v)| (PortId::new(i), v))
    }

    /// Iterates over the block output variables.
    pub fn iter_outputs(&self) -> impl Iterator<Item = &OutputVar> + '_ {
        self.outputs.iter()
    }

    /// Operation nodes that consume the result of `id`.
    #[must_use]
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.consumers[id.index()]
    }

    /// Operation nodes that read input variable `id`.
    #[must_use]
    pub fn input_consumers(&self, id: PortId) -> &[NodeId] {
        &self.input_consumers[id.index()]
    }

    /// Returns `true` if the result of `id` is written to a block output variable.
    #[must_use]
    pub fn is_output_source(&self, id: NodeId) -> bool {
        self.outputs.iter().any(|o| o.source == Operand::Node(id))
    }

    /// Adds a block input variable and returns its identifier.
    pub fn add_input(&mut self, name: impl Into<String>) -> PortId {
        let id = PortId::new(self.inputs.len());
        self.inputs.push(InputVar { name: name.into() });
        self.input_consumers.push(Vec::new());
        id
    }

    /// Adds an operation node and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if an operand references a node or input variable that does not exist yet
    /// (the graph is built in def-before-use order and must stay acyclic). Trusted
    /// hand-built construction sites (the builder, the workload crate) rely on this;
    /// code inserting nodes derived from *external* text — the LLVM front-end in
    /// particular — must use [`Dfg::try_add_node`] so malformed input surfaces as an
    /// error instead of a panic.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        match self.try_add_node(node) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds an operation node, reporting invalid operands as an error.
    ///
    /// The dataflow graph maintains two intertwined invariants that all of `topo`
    /// depends on: node identifiers are dense indices in insertion order, and every
    /// operand references a *previously inserted* node (def-before-use), which makes
    /// the graph acyclic by construction and the insertion order a valid
    /// producers-first topological order. A front-end lowering SSA instructions in
    /// program order preserves both automatically for *valid* SSA (a definition
    /// dominates its uses, and φ-nodes — the only legal intra-block forward
    /// references — are lowered to block inputs, never to nodes); malformed input is
    /// caught here and reported as [`IrError::ForwardReference`] /
    /// [`IrError::UnknownInput`] without panicking.
    ///
    /// # Errors
    ///
    /// Returns an error if an operand references a node or input variable that does
    /// not exist yet. The graph is left unchanged on failure.
    pub fn try_add_node(&mut self, node: Node) -> Result<NodeId, IrError> {
        let id = NodeId::new(self.nodes.len());
        for operand in &node.operands {
            match *operand {
                Operand::Node(n) => {
                    if n.index() >= self.nodes.len() {
                        return Err(IrError::ForwardReference {
                            block: self.name.clone(),
                            node: id,
                            operand: n,
                        });
                    }
                }
                Operand::Input(p) => {
                    if p.index() >= self.inputs.len() {
                        return Err(IrError::UnknownInput {
                            block: self.name.clone(),
                            node: id,
                            port: p,
                        });
                    }
                }
                Operand::Imm(_) => {}
            }
        }
        for operand in &node.operands {
            match *operand {
                Operand::Node(n) => self.consumers[n.index()].push(id),
                Operand::Input(p) => self.input_consumers[p.index()].push(id),
                Operand::Imm(_) => {}
            }
        }
        self.nodes.push(node);
        self.consumers.push(Vec::new());
        Ok(id)
    }

    /// Declares a block output variable fed by `source`.
    pub fn add_output(&mut self, name: impl Into<String>, source: Operand) {
        self.outputs.push(OutputVar {
            name: name.into(),
            source,
        });
    }

    /// Replaces the node stored at `id` and recomputes the use lists.
    ///
    /// This is intended for transformation passes; identification algorithms never
    /// mutate graphs.
    pub fn replace_node(&mut self, id: NodeId, node: Node) {
        self.nodes[id.index()] = node;
        self.rebuild_uses();
    }

    /// Rebuilds the consumer lists after a bulk mutation performed by a pass (or
    /// after deserialisation, which never trusts wire-carried use-lists).
    ///
    /// Operands referencing non-existent nodes or inputs — possible only in a
    /// graph assembled from hostile serialised data — are skipped here; they are
    /// reported precisely by [`Dfg::validate`].
    pub fn rebuild_uses(&mut self) {
        for list in &mut self.consumers {
            list.clear();
        }
        for list in &mut self.input_consumers {
            list.clear();
        }
        self.consumers.resize(self.nodes.len(), Vec::new());
        self.input_consumers.resize(self.inputs.len(), Vec::new());
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId::new(i);
            for operand in &node.operands {
                match *operand {
                    Operand::Node(n) => {
                        if let Some(list) = self.consumers.get_mut(n.index()) {
                            list.push(id);
                        }
                    }
                    Operand::Input(p) => {
                        if let Some(list) = self.input_consumers.get_mut(p.index()) {
                            list.push(id);
                        }
                    }
                    Operand::Imm(_) => {}
                }
            }
        }
    }

    /// Checks the structural invariants of the graph.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] when an operand references a later node (which would make
    /// the graph cyclic), when an operand references a non-existent node or input, when
    /// a node's operand count does not match its opcode arity, or when an output
    /// variable references a missing value.
    pub fn validate(&self) -> Result<(), IrError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(arity) = node.opcode.arity() {
                if node.operands.len() != arity {
                    return Err(IrError::ArityMismatch {
                        block: self.name.clone(),
                        node: NodeId::new(i),
                        opcode: node.opcode,
                        expected: arity,
                        found: node.operands.len(),
                    });
                }
            }
            for operand in &node.operands {
                match *operand {
                    Operand::Node(n) => {
                        if n.index() >= i {
                            return Err(IrError::ForwardReference {
                                block: self.name.clone(),
                                node: NodeId::new(i),
                                operand: n,
                            });
                        }
                        let producer = &self.nodes[n.index()];
                        if !producer.opcode.has_result() {
                            return Err(IrError::UseOfVoidValue {
                                block: self.name.clone(),
                                node: NodeId::new(i),
                                operand: n,
                            });
                        }
                    }
                    Operand::Input(p) => {
                        if p.index() >= self.inputs.len() {
                            return Err(IrError::UnknownInput {
                                block: self.name.clone(),
                                node: NodeId::new(i),
                                port: p,
                            });
                        }
                    }
                    Operand::Imm(_) => {}
                }
            }
        }
        for output in &self.outputs {
            match output.source {
                Operand::Node(n) if n.index() >= self.nodes.len() => {
                    return Err(IrError::UnknownOutputSource {
                        block: self.name.clone(),
                        output: output.name.clone(),
                    });
                }
                Operand::Input(p) if p.index() >= self.inputs.len() => {
                    return Err(IrError::UnknownOutputSource {
                        block: self.name.clone(),
                        output: output.name.clone(),
                    });
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Returns the nodes whose result is used by no operation node and no output.
    ///
    /// These are the candidates removed by dead-code elimination (side-effecting nodes
    /// are never reported).
    #[must_use]
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&id| {
                !self.node(id).opcode.has_side_effect()
                    && self.consumers(id).is_empty()
                    && !self.is_output_source(id)
            })
            .collect()
    }

    /// Number of operation nodes with a given opcode, useful for workload statistics.
    #[must_use]
    pub fn count_opcode(&self, opcode: Opcode) -> usize {
        self.nodes.iter().filter(|n| n.opcode == opcode).count()
    }

    /// Returns `true` if the graph contains any memory operation.
    #[must_use]
    pub fn has_memory_ops(&self) -> bool {
        self.nodes.iter().any(|n| n.opcode.is_memory())
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "block {} (x{}):", self.name, self.exec_count)?;
        for (id, input) in self.iter_inputs() {
            writeln!(f, "  {id} = input {}", input.name)?;
        }
        for (id, node) in self.iter_nodes() {
            writeln!(f, "  {id} = {node}")?;
        }
        for output in self.iter_outputs() {
            writeln!(f, "  output {} = {}", output.name, output.source)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dfg {
        // out = (a + b) * (a - b)
        let mut g = Dfg::new("diamond");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let sum = g.add_node(Node::new(Opcode::Add, vec![a.into(), b.into()]));
        let diff = g.add_node(Node::new(Opcode::Sub, vec![a.into(), b.into()]));
        let prod = g.add_node(Node::new(Opcode::Mul, vec![sum.into(), diff.into()]));
        g.add_output("out", prod.into());
        g
    }

    #[test]
    fn construction_and_queries() {
        let g = diamond();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.input_count(), 2);
        assert_eq!(g.output_count(), 1);
        assert!(g.validate().is_ok());
        let prod = NodeId::new(2);
        assert!(g.is_output_source(prod));
        assert_eq!(g.consumers(NodeId::new(0)), &[prod]);
        assert_eq!(g.consumers(NodeId::new(1)), &[prod]);
        assert!(g.consumers(prod).is_empty());
        assert_eq!(g.input_consumers(PortId::new(0)).len(), 2);
    }

    #[test]
    fn validate_rejects_bad_arity() {
        let mut g = Dfg::new("bad");
        let a = g.add_input("a");
        // Manually build a malformed node: Add with one operand.
        let id = g.add_node(Node::new(Opcode::Abs, vec![a.into()]));
        g.nodes[id.index()].operands.clear();
        assert!(matches!(g.validate(), Err(IrError::ArityMismatch { .. })));
    }

    #[test]
    fn dead_node_detection() {
        let mut g = diamond();
        let a = PortId::new(0);
        let dead = g.add_node(Node::new(Opcode::Not, vec![a.into()]));
        assert_eq!(g.dead_nodes(), vec![dead]);
    }

    #[test]
    fn exec_count_roundtrip() {
        let mut g = diamond();
        assert_eq!(g.exec_count(), 1);
        g.set_exec_count(1000);
        assert_eq!(g.exec_count(), 1000);
    }

    #[test]
    fn display_lists_all_entities() {
        let text = diamond().to_string();
        assert!(text.contains("block diamond"));
        assert!(text.contains("in0 = input a"));
        assert!(text.contains("%2 = mul %0, %1"));
        assert!(text.contains("output out = %2"));
    }

    #[test]
    fn rebuild_uses_after_replace() {
        let mut g = diamond();
        // Rewrite the multiply into an add of the same operands.
        let prod = NodeId::new(2);
        let node = Node::new(
            Opcode::Add,
            vec![NodeId::new(0).into(), NodeId::new(1).into()],
        );
        g.replace_node(prod, node);
        assert_eq!(g.node(prod).opcode, Opcode::Add);
        assert_eq!(g.consumers(NodeId::new(0)), &[prod]);
    }

    #[test]
    #[should_panic(expected = "references later node")]
    fn forward_reference_panics_on_insert() {
        let mut g = Dfg::new("forward");
        let _ = g.add_node(Node::new(Opcode::Not, vec![Operand::Node(NodeId::new(5))]));
    }

    #[test]
    fn try_add_node_reports_errors_and_leaves_graph_unchanged() {
        let mut g = diamond();
        let before = g.node_count();
        // A forward node reference fails without mutating the graph — even when a
        // valid operand precedes the bad one (no partially recorded use lists).
        let err = g
            .try_add_node(Node::new(
                Opcode::Add,
                vec![NodeId::new(0).into(), Operand::Node(NodeId::new(9))],
            ))
            .unwrap_err();
        assert!(matches!(err, IrError::ForwardReference { .. }));
        assert_eq!(g.node_count(), before);
        assert_eq!(g.consumers(NodeId::new(0)), &[NodeId::new(2)]);
        // Same for an undeclared input port.
        let err = g
            .try_add_node(Node::new(Opcode::Not, vec![Operand::Input(PortId::new(7))]))
            .unwrap_err();
        assert!(matches!(err, IrError::UnknownInput { .. }));
        assert_eq!(g.node_count(), before);
        assert!(g.validate().is_ok());
    }
}
