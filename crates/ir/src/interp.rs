//! Reference interpreter for dataflow graphs.
//!
//! The interpreter gives the IR an executable semantics so that the test suite can check
//! that transformation passes (if-conversion, constant folding, …) and cut collapsing
//! (replacing a convex subgraph by a single AFU instruction) preserve program behaviour.
//! All arithmetic is performed on 32-bit two's-complement values, matching the embedded
//! processors targeted by the paper.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::dfg::Dfg;
use crate::error::IrError;
use crate::node::Operand;
use crate::opcode::Opcode;
use crate::program::AfuSpec;

/// A word-addressed data memory used by `load`/`store` nodes.
///
/// Addresses and values are 32-bit integers; unwritten locations read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Memory {
    cells: HashMap<i32, i32>,
}

impl Memory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Memory::default()
    }

    /// Reads the word at `addr` (0 if never written).
    #[must_use]
    pub fn read(&self, addr: i32) -> i32 {
        self.cells.get(&addr).copied().unwrap_or(0)
    }

    /// Writes `value` at `addr`.
    pub fn write(&mut self, addr: i32, value: i32) {
        self.cells.insert(addr, value);
    }

    /// Number of written locations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no location has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Initialises a contiguous table starting at `base`, one word per element.
    ///
    /// This is how the workload crate materialises the `stepsizeTable`/`indexTable`
    /// lookup tables of the ADPCM kernels.
    pub fn load_table(&mut self, base: i32, values: &[i32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(base + i as i32, v);
        }
    }
}

/// Result of evaluating one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockResult {
    /// Values of the block output variables, keyed by output name.
    pub outputs: BTreeMap<String, i32>,
    /// Values of every operation node, indexed by node position (stores yield 0).
    pub node_values: Vec<i32>,
}

/// Evaluator holding the machine state (data memory and AFU library).
#[derive(Debug, Clone, Default)]
pub struct Evaluator {
    /// Data memory shared across block evaluations.
    pub memory: Memory,
    afus: Vec<AfuSpec>,
    /// AFU specifications already structurally validated, so a block that invokes
    /// the same AFU many times (or is evaluated in a loop) validates each
    /// specification once instead of once per invocation.
    validated_afus: HashSet<u16>,
}

impl Evaluator {
    /// Creates an evaluator with an empty memory and no AFU library.
    #[must_use]
    pub fn new() -> Self {
        Evaluator::default()
    }

    /// Creates an evaluator with the given AFU library (needed to execute graphs that
    /// contain collapsed [`Opcode::Afu`] nodes).
    #[must_use]
    pub fn with_afus(afus: Vec<AfuSpec>) -> Self {
        Evaluator {
            memory: Memory::new(),
            afus,
            validated_afus: HashSet::new(),
        }
    }

    /// Evaluates one basic block with the given input bindings.
    ///
    /// The block is structurally validated first, so a malformed graph (bad arity,
    /// dangling or forward operand references) is reported as an error instead of
    /// causing an out-of-bounds panic mid-evaluation.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph fails [`Dfg::validate`], if an input variable is
    /// unbound, on division by zero, or when an AFU node references an unknown
    /// specification.
    pub fn eval_block(
        &mut self,
        dfg: &Dfg,
        inputs: &BTreeMap<String, i32>,
    ) -> Result<BlockResult, IrError> {
        dfg.validate()?;
        self.eval_block_prevalidated(dfg, inputs)
    }

    /// [`Evaluator::eval_block`] without the upfront structural validation, for
    /// graphs this evaluator has already validated (AFU specification re-entry).
    fn eval_block_prevalidated(
        &mut self,
        dfg: &Dfg,
        inputs: &BTreeMap<String, i32>,
    ) -> Result<BlockResult, IrError> {
        let mut input_values = Vec::with_capacity(dfg.input_count());
        for (_, var) in dfg.iter_inputs() {
            let value =
                inputs
                    .get(&var.name)
                    .copied()
                    .ok_or_else(|| IrError::MissingInputValue {
                        block: dfg.name().to_string(),
                        input: var.name.clone(),
                    })?;
            input_values.push(value);
        }
        let node_values = self.eval_nodes(dfg, &input_values)?;
        let mut outputs = BTreeMap::new();
        for output in dfg.iter_outputs() {
            let value = match output.source {
                Operand::Node(n) => node_values[n.index()],
                Operand::Input(p) => input_values[p.index()],
                Operand::Imm(v) => v as i32,
            };
            outputs.insert(output.name.clone(), value);
        }
        Ok(BlockResult {
            outputs,
            node_values,
        })
    }

    fn eval_nodes(&mut self, dfg: &Dfg, input_values: &[i32]) -> Result<Vec<i32>, IrError> {
        let mut values = vec![0i32; dfg.node_count()];
        for (id, node) in dfg.iter_nodes() {
            let operand = |k: usize| -> i32 {
                match node.operands[k] {
                    Operand::Node(n) => values[n.index()],
                    Operand::Input(p) => input_values[p.index()],
                    Operand::Imm(v) => v as i32,
                }
            };
            let value = match node.opcode {
                Opcode::Add => operand(0).wrapping_add(operand(1)),
                Opcode::Sub => operand(0).wrapping_sub(operand(1)),
                Opcode::Mul => operand(0).wrapping_mul(operand(1)),
                Opcode::MulHi => ((i64::from(operand(0)) * i64::from(operand(1))) >> 32) as i32,
                Opcode::Mac => operand(0).wrapping_mul(operand(1)).wrapping_add(operand(2)),
                Opcode::Div => {
                    let d = operand(1);
                    if d == 0 {
                        return Err(IrError::DivisionByZero {
                            block: dfg.name().to_string(),
                            node: id,
                        });
                    }
                    operand(0).wrapping_div(d)
                }
                Opcode::Rem => {
                    let d = operand(1);
                    if d == 0 {
                        return Err(IrError::DivisionByZero {
                            block: dfg.name().to_string(),
                            node: id,
                        });
                    }
                    operand(0).wrapping_rem(d)
                }
                Opcode::Neg => operand(0).wrapping_neg(),
                Opcode::Abs => operand(0).wrapping_abs(),
                Opcode::Min => operand(0).min(operand(1)),
                Opcode::Max => operand(0).max(operand(1)),
                Opcode::And => operand(0) & operand(1),
                Opcode::Or => operand(0) | operand(1),
                Opcode::Xor => operand(0) ^ operand(1),
                Opcode::Not => !operand(0),
                Opcode::Shl => operand(0).wrapping_shl(operand(1) as u32 & 31),
                Opcode::Lshr => ((operand(0) as u32).wrapping_shr(operand(1) as u32 & 31)) as i32,
                Opcode::Ashr => operand(0).wrapping_shr(operand(1) as u32 & 31),
                Opcode::Eq => i32::from(operand(0) == operand(1)),
                Opcode::Ne => i32::from(operand(0) != operand(1)),
                Opcode::Lt => i32::from(operand(0) < operand(1)),
                Opcode::Le => i32::from(operand(0) <= operand(1)),
                Opcode::Gt => i32::from(operand(0) > operand(1)),
                Opcode::Ge => i32::from(operand(0) >= operand(1)),
                Opcode::Ltu => i32::from((operand(0) as u32) < operand(1) as u32),
                Opcode::Geu => i32::from(operand(0) as u32 >= operand(1) as u32),
                Opcode::Select => {
                    if operand(0) != 0 {
                        operand(1)
                    } else {
                        operand(2)
                    }
                }
                Opcode::SextB => operand(0) as i8 as i32,
                Opcode::SextH => operand(0) as i16 as i32,
                Opcode::ZextB => i32::from(operand(0) as u8),
                Opcode::ZextH => i32::from(operand(0) as u16),
                Opcode::TruncB => operand(0) & 0xff,
                Opcode::TruncH => operand(0) & 0xffff,
                Opcode::Copy => operand(0),
                Opcode::Const => operand(0),
                Opcode::Load => self.memory.read(operand(0)),
                Opcode::Store => {
                    let addr = operand(0);
                    let value = operand(1);
                    self.memory.write(addr, value);
                    0
                }
                Opcode::Afu { id: afu_id, out } => {
                    let operands: Vec<i32> = (0..node.operands.len()).map(operand).collect();
                    self.eval_afu(dfg, afu_id, out, &operands)?
                }
                Opcode::Opaque(_) => {
                    return Err(IrError::CannotInterpret {
                        block: dfg.name().to_string(),
                        node: id,
                        opcode: node.opcode,
                    });
                }
            };
            values[id.index()] = value;
        }
        Ok(values)
    }

    fn eval_afu(
        &mut self,
        caller: &Dfg,
        afu_id: u16,
        out: u16,
        operands: &[i32],
    ) -> Result<i32, IrError> {
        let spec = self
            .afus
            .iter()
            .find(|s| s.id == afu_id)
            .cloned()
            .ok_or_else(|| IrError::UnknownAfu {
                block: caller.name().to_string(),
                afu: afu_id,
            })?;
        if !self.validated_afus.contains(&afu_id) {
            spec.graph.validate()?;
            self.validated_afus.insert(afu_id);
        }
        let mut bindings = BTreeMap::new();
        for ((_, var), value) in spec.graph.iter_inputs().zip(operands) {
            bindings.insert(var.name.clone(), *value);
        }
        let result = self.eval_block_prevalidated(&spec.graph, &bindings)?;
        let output = spec
            .graph
            .iter_outputs()
            .nth(out as usize)
            .map(|o| o.name.clone())
            .ok_or(IrError::UnknownAfu {
                block: caller.name().to_string(),
                afu: afu_id,
            })?;
        Ok(result.outputs[&output])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn eval(dfg: &Dfg, bindings: &[(&str, i32)]) -> BTreeMap<String, i32> {
        let mut evaluator = Evaluator::new();
        let inputs: BTreeMap<String, i32> =
            bindings.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        evaluator
            .eval_block(dfg, &inputs)
            .expect("evaluation")
            .outputs
    }

    #[test]
    fn arithmetic_and_selection() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let sum = b.add(x, y);
        let cond = b.gt(sum, b.imm(10));
        let clipped = b.select(cond, b.imm(10), sum);
        b.output("r", clipped);
        let g = b.finish();
        assert_eq!(eval(&g, &[("x", 3), ("y", 4)])["r"], 7);
        assert_eq!(eval(&g, &[("x", 30), ("y", 4)])["r"], 10);
    }

    #[test]
    fn shifts_and_subword() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let a = b.ashr(x, b.imm(4));
        let l = b.lshr(x, b.imm(4));
        let sb = b.sext_b(x);
        let zb = b.zext_b(x);
        b.output("ashr", a);
        b.output("lshr", l);
        b.output("sext", sb);
        b.output("zext", zb);
        let g = b.finish();
        let out = eval(&g, &[("x", -16)]);
        assert_eq!(out["ashr"], -1);
        assert_eq!(out["lshr"], 0x0fff_ffff);
        assert_eq!(out["sext"], -16);
        assert_eq!(out["zext"], 0xf0);
    }

    #[test]
    fn division_by_zero_is_reported() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let d = b.div(x, b.imm(0));
        b.output("r", d);
        let g = b.finish();
        let mut evaluator = Evaluator::new();
        let inputs: BTreeMap<String, i32> = [("x".to_string(), 5)].into();
        assert!(matches!(
            evaluator.eval_block(&g, &inputs),
            Err(IrError::DivisionByZero { .. })
        ));
    }

    #[test]
    fn missing_input_is_reported() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        b.output("r", x);
        let g = b.finish();
        let mut evaluator = Evaluator::new();
        assert!(matches!(
            evaluator.eval_block(&g, &BTreeMap::new()),
            Err(IrError::MissingInputValue { .. })
        ));
    }

    #[test]
    fn memory_roundtrip_through_load_store() {
        let mut b = DfgBuilder::new("t");
        let base = b.input("base");
        let x = b.input("x");
        let doubled = b.shl(x, b.imm(1));
        b.store(base, doubled);
        let reloaded = b.load(base);
        let plus_one = b.add(reloaded, b.imm(1));
        b.output("r", plus_one);
        let g = b.finish();
        let mut evaluator = Evaluator::new();
        let inputs: BTreeMap<String, i32> =
            [("base".to_string(), 100), ("x".to_string(), 21)].into();
        let result = evaluator.eval_block(&g, &inputs).unwrap();
        assert_eq!(result.outputs["r"], 43);
        assert_eq!(evaluator.memory.read(100), 42);
    }

    #[test]
    fn table_lookup_via_memory() {
        let mut b = DfgBuilder::new("t");
        let base = b.input("base");
        let idx = b.input("idx");
        let addr = b.add(base, idx);
        let v = b.load(addr);
        b.output("r", v);
        let g = b.finish();
        let mut evaluator = Evaluator::new();
        evaluator.memory.load_table(200, &[7, 8, 9, 10]);
        let inputs: BTreeMap<String, i32> =
            [("base".to_string(), 200), ("idx".to_string(), 2)].into();
        assert_eq!(evaluator.eval_block(&g, &inputs).unwrap().outputs["r"], 9);
    }

    #[test]
    fn afu_nodes_execute_their_specification() {
        use crate::node::Node;
        use crate::program::AfuSpec;

        // AFU 7 computes (a + b, a - b).
        let mut b = DfgBuilder::new("afu7");
        let a = b.input("a");
        let bb = b.input("b");
        let s = b.add(a, bb);
        let d = b.sub(a, bb);
        b.output("sum", s);
        b.output("diff", d);
        let spec = AfuSpec {
            id: 7,
            name: "sumdiff".into(),
            graph: b.finish(),
        };

        let mut g = Dfg::new("caller");
        let x = g.add_input("x");
        let y = g.add_input("y");
        let sum = g.add_node(Node::new(
            Opcode::Afu { id: 7, out: 0 },
            vec![x.into(), y.into()],
        ));
        let diff = g.add_node(Node::new(
            Opcode::Afu { id: 7, out: 1 },
            vec![x.into(), y.into()],
        ));
        let prod = g.add_node(Node::new(Opcode::Mul, vec![sum.into(), diff.into()]));
        g.add_output("r", prod.into());

        let mut evaluator = Evaluator::with_afus(vec![spec]);
        let inputs: BTreeMap<String, i32> = [("x".to_string(), 9), ("y".to_string(), 4)].into();
        assert_eq!(evaluator.eval_block(&g, &inputs).unwrap().outputs["r"], 65);
    }

    #[test]
    fn unknown_afu_is_reported() {
        use crate::node::Node;
        let mut g = Dfg::new("caller");
        let x = g.add_input("x");
        let n = g.add_node(Node::new(Opcode::Afu { id: 9, out: 0 }, vec![x.into()]));
        g.add_output("r", n.into());
        let mut evaluator = Evaluator::new();
        let inputs: BTreeMap<String, i32> = [("x".to_string(), 1)].into();
        assert!(matches!(
            evaluator.eval_block(&g, &inputs),
            Err(IrError::UnknownAfu { .. })
        ));
    }
}
